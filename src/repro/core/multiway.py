"""Entity identification across more than two databases.

The paper opens with "taking two (or more) independently developed
databases" but develops the machinery for the two-relation case.  The
generalisation is direct *because of how the technique works*: a match
requires **identical, fully non-NULL extended-key values**, and equality
is transitive — so the multiway matching relation is an equivalence, and
entities are simply the groups of tuples (across all sources) sharing a
complete extended-key value.  No pairwise fix-ups or cluster repair are
needed, unlike similarity-based matchers whose pairwise decisions do not
compose.

:class:`MultiwayIdentifier` therefore:

1. extends every source with ILFD-derived extended-key values,
2. groups all tuples by complete extended-key value — groups spanning ≥2
   sources are the matched entity clusters,
3. verifies the generalised uniqueness constraint: within one source, no
   two tuples share a complete extended-key value (each real-world
   entity is modelled at most once per relation, Section 3.1),
4. integrates: one row per entity over the union of the source schemas.

Pairwise projections of the clusters coincide with
:class:`~repro.core.identifier.EntityIdentifier` on each source pair
(property-tested).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.errors import CoreError, SoundnessError
from repro.core.extended_key import ExtendedKey
from repro.core.matching_table import KeyValues, key_values
from repro.ilfd.derivation import DerivationEngine, DerivationPolicy
from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.relational.attribute import Attribute
from repro.relational.nulls import NULL, is_null
from repro.relational.relation import Relation
from repro.relational.row import Row
from repro.relational.schema import Schema


@dataclass(frozen=True)
class EntityCluster:
    """One matched entity: tuples from ≥2 sources sharing K_Ext values."""

    key: Tuple[Any, ...]
    members: Tuple[Tuple[str, Row], ...]

    @property
    def sources(self) -> Tuple[str, ...]:
        """The source names contributing a tuple, in member order."""
        return tuple(source for source, _ in self.members)

    def member_of(self, source: str) -> Optional[Row]:
        """This cluster's tuple from *source*, if any."""
        for name, row in self.members:
            if name == source:
                return row
        return None

    def __len__(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class MultiwaySoundnessReport:
    """Per-source uniqueness violations."""

    violations: Mapping[str, Tuple[Tuple[Any, ...], ...]]

    @property
    def is_sound(self) -> bool:
        """True iff no source has two tuples sharing complete K_Ext values."""
        return not any(self.violations.values())

    def raise_if_unsound(self) -> None:
        """Raise :class:`SoundnessError` when the check failed."""
        if not self.is_sound:
            raise SoundnessError(
                f"duplicate complete extended-key values within sources: "
                f"{dict(self.violations)!r}"
            )


class MultiwayIdentifier:
    """Identify entities across any number of (unified) sources.

    Parameters
    ----------
    sources:
        Mapping of source name → relation (all in the unified namespace).
        At least two sources are required.
    extended_key / ilfds / policy:
        As for :class:`~repro.core.identifier.EntityIdentifier`.
    """

    def __init__(
        self,
        sources: Mapping[str, Relation],
        extended_key: ExtendedKey | Sequence[str],
        *,
        ilfds: ILFDSet | Iterable[ILFD] = (),
        policy: DerivationPolicy = DerivationPolicy.FIRST_MATCH,
    ) -> None:
        if len(sources) < 2:
            raise CoreError("multiway identification needs at least two sources")
        if not isinstance(extended_key, ExtendedKey):
            extended_key = ExtendedKey(list(extended_key))
        self._sources: Dict[str, Relation] = dict(sources)
        self._key = extended_key
        self._ilfds = ilfds if isinstance(ilfds, ILFDSet) else ILFDSet(ilfds)
        self._engine = DerivationEngine(self._ilfds, policy=policy)
        self._extended: Optional[Dict[str, Relation]] = None
        self._groups: Optional[Dict[Tuple[Any, ...], List[Tuple[str, Row]]]] = None

    # ------------------------------------------------------------------
    @property
    def extended_key(self) -> ExtendedKey:
        """The extended key in use."""
        return self._key

    @property
    def source_names(self) -> Tuple[str, ...]:
        """The source names, in declaration order."""
        return tuple(self._sources)

    def extended(self) -> Dict[str, Relation]:
        """Every source extended with derived K_Ext values."""
        if self._extended is None:
            targets = list(self._key.attributes)
            self._extended = {
                name: self._engine.extend_relation(relation, targets)
                for name, relation in self._sources.items()
            }
        return self._extended

    def _grouped(self) -> Dict[Tuple[Any, ...], List[Tuple[str, Row]]]:
        if self._groups is None:
            key_attrs = list(self._key.attributes)
            groups: Dict[Tuple[Any, ...], List[Tuple[str, Row]]] = defaultdict(list)
            for name, relation in self.extended().items():
                for row in relation:
                    values = row.values_for(key_attrs)
                    if any(is_null(v) for v in values):
                        continue
                    groups[values].append((name, row))
            self._groups = groups
        return self._groups

    # ------------------------------------------------------------------
    def clusters(self) -> List[EntityCluster]:
        """Matched entities: groups spanning at least two sources."""
        out: List[EntityCluster] = []
        for values, members in sorted(self._grouped().items(), key=lambda kv: str(kv[0])):
            if len({name for name, _ in members}) >= 2:
                out.append(EntityCluster(values, tuple(members)))
        return out

    def verify(self) -> MultiwaySoundnessReport:
        """The generalised uniqueness constraint, per source."""
        violations: Dict[str, List[Tuple[Any, ...]]] = {
            name: [] for name in self._sources
        }
        for values, members in self._grouped().items():
            per_source: Dict[str, int] = defaultdict(int)
            for name, _ in members:
                per_source[name] += 1
            for name, count in per_source.items():
                if count > 1:
                    violations[name].append(values)
        return MultiwaySoundnessReport(
            {name: tuple(v) for name, v in violations.items()}
        )

    def pairwise_pairs(self, first: str, second: str) -> FrozenSet[Tuple[KeyValues, KeyValues]]:
        """The (first, second) matches, in EntityIdentifier's pair format."""
        for name in (first, second):
            if name not in self._sources:
                raise CoreError(f"unknown source {name!r}")
        first_keys = self._source_key_attrs(first)
        second_keys = self._source_key_attrs(second)
        pairs = set()
        for cluster in self.clusters():
            lefts = [row for name, row in cluster.members if name == first]
            rights = [row for name, row in cluster.members if name == second]
            for left in lefts:
                for right in rights:
                    pairs.add(
                        (
                            key_values(left, first_keys),
                            key_values(right, second_keys),
                        )
                    )
        return frozenset(pairs)

    def _source_key_attrs(self, name: str) -> Tuple[str, ...]:
        schema = self._sources[name].schema
        key = schema.primary_key
        return tuple(n for n in schema.names if n in key)

    # ------------------------------------------------------------------
    def integrate(self, *, source_column: str = "sources") -> Relation:
        """One row per real-world entity, over the union of the schemas.

        Matched clusters coalesce attribute-wise (first non-NULL value in
        source order wins — run conflict diagnostics first if the sources
        may disagree); unmatched tuples survive NULL-padded.  The
        *source_column* records provenance (comma-joined source names),
        which also keeps coincidentally identical unmatched tuples from
        different sources apart.
        """
        ordered: List[str] = []
        for relation in self.extended().values():
            for attr in relation.schema.names:
                if attr not in ordered:
                    ordered.append(attr)
        if source_column in ordered:
            raise CoreError(
                f"source column {source_column!r} collides with a source attribute"
            )
        schema = Schema([Attribute(a) for a in ordered + [source_column]])

        rows: List[Row] = []
        clustered: set = set()
        for cluster in self.clusters():
            values: Dict[str, Any] = {attr: NULL for attr in ordered}
            for _, row in cluster.members:
                clustered.add(row)
                for attr in row:
                    if is_null(values[attr]):
                        values[attr] = row[attr]
            values[source_column] = ",".join(cluster.sources)
            rows.append(Row(values))
        for name, relation in self.extended().items():
            for row in relation:
                if row in clustered:
                    continue
                values = {attr: NULL for attr in ordered}
                for attr in row:
                    values[attr] = row[attr]
                values[source_column] = name
                rows.append(Row(values))

        out = Relation(schema, (), name="T_multi", enforce_keys=False)
        deduped: Dict[Row, None] = {}
        for row in rows:
            deduped.setdefault(row)
        out._rows = tuple(deduped)
        out._row_set = frozenset(deduped)
        return out

"""Exceptions for the entity-identification core."""


class CoreError(Exception):
    """Base class for core entity-identification errors."""


class ExtendedKeyError(CoreError):
    """The extended key is malformed or incompatible with the sources."""


class SoundnessError(CoreError):
    """The uniqueness constraint is violated.

    "No tuple in either relation can be matched to more than one tuple in
    the other relation" (Section 3.2) — the prototype reports this as
    "The extended key causes unsound matching result."
    """


class ConsistencyError(CoreError):
    """The consistency constraint is violated.

    "No tuple pair can appear in both the matching and negative matching
    tables" (Section 3.2).
    """

"""Matching and negative matching tables (Section 3.2).

"Those pairs evaluating to 'true' or 'false' can be represented in a
matching table and a negative matching table, respectively.  Because each
tuple has a unique identifier in its relation, a matching (negative
matching) table entry consists of the key values of the pair of tuples."

Both tables enforce the paper's constraints on construction:

- **uniqueness** (matching table only): no tuple of either relation is
  matched to more than one tuple of the other — violations are collected
  and surfaced through :meth:`MatchingTable.uniqueness_violations`;
- **consistency** (between the two tables): checked by
  :func:`check_consistency` / the identifier.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import ConsistencyError, SoundnessError
from repro.relational.attribute import Attribute
from repro.relational.relation import Relation
from repro.relational.row import Row
from repro.relational.schema import Schema

KeyValues = Tuple[Tuple[str, Any], ...]
"""A tuple key rendered as ((attribute, value), ...), sorted by attribute."""


def key_values(row: Row, key_attributes: Iterable[str]) -> KeyValues:
    """Render a row's key as a canonical, hashable KeyValues."""
    return tuple((attr, row[attr]) for attr in sorted(key_attributes))


class MatchEntry:
    """One matched pair: the two rows plus their identifying key values."""

    __slots__ = ("r_row", "s_row", "r_key", "s_key")

    def __init__(self, r_row: Row, s_row: Row, r_key: KeyValues, s_key: KeyValues) -> None:
        self.r_row = r_row
        self.s_row = s_row
        self.r_key = r_key
        self.s_key = s_key

    @property
    def pair(self) -> Tuple[KeyValues, KeyValues]:
        """The (R key, S key) pair identifying this entry."""
        return (self.r_key, self.s_key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchEntry):
            return NotImplemented
        return self.pair == other.pair

    def __hash__(self) -> int:
        return hash(self.pair)

    def __repr__(self) -> str:
        r = ", ".join(f"{a}={v!r}" for a, v in self.r_key)
        s = ", ".join(f"{a}={v!r}" for a, v in self.s_key)
        return f"MatchEntry(R[{r}] ↔ S[{s}])"


class _PairTable:
    """Shared machinery of the matching and negative matching tables."""

    kind = "pair"

    def __init__(
        self,
        entries: Iterable[MatchEntry] = (),
        *,
        r_key_attributes: Sequence[str] = (),
        s_key_attributes: Sequence[str] = (),
    ) -> None:
        self._entries: List[MatchEntry] = []
        self._pairs: set = set()
        self.r_key_attributes: Tuple[str, ...] = tuple(r_key_attributes)
        self.s_key_attributes: Tuple[str, ...] = tuple(s_key_attributes)
        for entry in entries:
            self.add(entry)

    def add(self, entry: MatchEntry) -> None:
        """Append an entry (duplicate pairs are ignored)."""
        if entry.pair in self._pairs:
            return
        self._pairs.add(entry.pair)
        self._entries.append(entry)

    def __iter__(self) -> Iterator[MatchEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pair: object) -> bool:
        return pair in self._pairs

    def contains_pair(self, r_key: KeyValues, s_key: KeyValues) -> bool:
        """True iff the (R key, S key) pair is recorded."""
        return (r_key, s_key) in self._pairs

    def pairs(self) -> FrozenSet[Tuple[KeyValues, KeyValues]]:
        """All recorded pairs as a frozenset."""
        return frozenset(self._pairs)

    def r_keys(self) -> List[KeyValues]:
        """R-side keys, in entry order (with repetitions)."""
        return [entry.r_key for entry in self._entries]

    def s_keys(self) -> List[KeyValues]:
        """S-side keys, in entry order (with repetitions)."""
        return [entry.s_key for entry in self._entries]

    def to_relation(self, *, name: str = "") -> Relation:
        """Render as a relation with ``R.attr`` / ``S.attr`` columns.

        Column layout follows the paper's Tables 3 and 7: the R key
        attributes then the S key attributes, each prefixed by its
        relation.
        """
        r_attrs = list(self.r_key_attributes)
        s_attrs = list(self.s_key_attributes)
        columns = [f"R.{a}" for a in r_attrs] + [f"S.{a}" for a in s_attrs]
        schema = Schema([Attribute(c) for c in columns])
        rows = []
        for entry in self._entries:
            values: Dict[str, Any] = {}
            for attr in r_attrs:
                values[f"R.{attr}"] = entry.r_row[attr]
            for attr in s_attrs:
                values[f"S.{attr}"] = entry.s_row[attr]
            rows.append(values)
        relation = Relation(schema, (), name=name or self.kind, enforce_keys=False)
        seen: Dict[Row, None] = {}
        for raw in rows:
            seen.setdefault(Row(raw))
        relation._rows = tuple(seen)
        relation._row_set = frozenset(seen)
        return relation

    def __repr__(self) -> str:
        return f"<{type(self).__name__} with {len(self)} entries>"


class MatchingTable(_PairTable):
    """The conceptual matching table MT_RS."""

    kind = "matching table"

    def uniqueness_violations(self) -> Dict[str, List[KeyValues]]:
        """Keys matched to more than one counterpart, per side.

        Returns ``{"R": [...], "S": [...]}`` with the offending key values
        (the prototype compares ``bagof`` vs ``setof`` cardinalities; this
        is the same check with the witnesses kept).
        """
        r_counts = Counter(self.r_keys())
        s_counts = Counter(self.s_keys())
        return {
            "R": [key for key, count in r_counts.items() if count > 1],
            "S": [key for key, count in s_counts.items() if count > 1],
        }

    def is_sound(self) -> bool:
        """True iff the uniqueness constraint holds."""
        violations = self.uniqueness_violations()
        return not violations["R"] and not violations["S"]

    def verify(self) -> None:
        """Raise :class:`SoundnessError` on a uniqueness violation."""
        violations = self.uniqueness_violations()
        if violations["R"] or violations["S"]:
            raise SoundnessError(
                "uniqueness constraint violated: "
                f"R keys matched to multiple S tuples: {violations['R']}; "
                f"S keys matched to multiple R tuples: {violations['S']}"
            )

    def partner_of_r(self, r_key: KeyValues) -> Optional[MatchEntry]:
        """The entry matching the given R key, if any (first occurrence)."""
        for entry in self._entries:
            if entry.r_key == r_key:
                return entry
        return None

    def partner_of_s(self, s_key: KeyValues) -> Optional[MatchEntry]:
        """The entry matching the given S key, if any (first occurrence)."""
        for entry in self._entries:
            if entry.s_key == s_key:
                return entry
        return None


class NegativeMatchingTable(_PairTable):
    """The conceptual negative matching table NMT_RS.

    The paper notes the full NMT is usually much larger than the MT (at
    most min(|R|,|S|) matches versus up to |R|·|S| non-matches) and its
    prototype never materialises it wholly; this class supports both the
    small explicit tables of the worked examples (Table 4) and lazy use.
    """

    kind = "negative matching table"


def build_matching_table(
    extended_r: Relation,
    extended_s: Relation,
    key_attributes: Sequence[str],
    r_key_attributes: Sequence[str],
    s_key_attributes: Sequence[str],
) -> MatchingTable:
    """Join two extended relations over identical non-NULL K_Ext values.

    The shared core of the pipeline and the Section-4.2 algebraic path:
    hash-join on the extended-key attributes with ``non_null_eq``
    semantics (a NULL on either side never matches).
    """
    from repro.relational.nulls import is_null

    key_attrs = list(key_attributes)
    table = MatchingTable(
        r_key_attributes=r_key_attributes,
        s_key_attributes=s_key_attributes,
    )
    # Key projections are hoisted out of the probe loop: each row's key is
    # rendered exactly once per relation, not once per emitted pair.
    index: Dict[Tuple[Any, ...], List[Tuple[Row, KeyValues]]] = defaultdict(list)
    for s_row in extended_s:
        values = s_row.values_for(key_attrs)
        if any(is_null(v) for v in values):
            continue
        index[values].append((s_row, key_values(s_row, s_key_attributes)))
    for r_row in extended_r:
        values = r_row.values_for(key_attrs)
        if any(is_null(v) for v in values):
            continue
        bucket = index.get(values)
        if not bucket:
            continue
        r_key = key_values(r_row, r_key_attributes)
        for s_row, s_key in bucket:  # non_null_eq on all of K_Ext
            table.add(MatchEntry(r_row, s_row, r_key, s_key))
    return table


def check_consistency(
    matching: MatchingTable, negative: NegativeMatchingTable
) -> None:
    """Enforce the consistency constraint between the two tables.

    Raises :class:`ConsistencyError` when some pair appears in both.
    """
    overlap = matching.pairs() & negative.pairs()
    if overlap:
        raise ConsistencyError(
            f"{len(overlap)} pair(s) appear in both the matching and the "
            f"negative matching tables, e.g. {next(iter(overlap))!r}"
        )

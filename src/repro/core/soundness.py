"""Soundness verification (the prototype's ``verify`` command).

The prototype checks, after every ``setup_extkey``, "that no tuple from a
source relation is matched with more than one tuple from another relation
in the new matching table" by comparing ``bagof`` and ``setof``
cardinalities of the matched keys, and prints either

    ``Message: The extended key is verified.``

or

    ``Message: The extended key causes unsound matching result.``

:func:`verify_soundness` performs the same check (keeping the offending
keys as witnesses) and :class:`SoundnessReport` carries the verdict,
including the prototype's message strings so the Section-6 bench can
compare output verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.errors import SoundnessError
from repro.core.matching_table import KeyValues, MatchingTable

VERIFIED_MESSAGE = "Message: The extended key is verified."
UNSOUND_MESSAGE = "Message: The extended key causes unsound matching result."


@dataclass(frozen=True)
class SoundnessReport:
    """Outcome of the uniqueness-constraint check on a matching table."""

    is_sound: bool
    r_violations: Tuple[KeyValues, ...]
    s_violations: Tuple[KeyValues, ...]

    @property
    def message(self) -> str:
        """The prototype's verification message."""
        return VERIFIED_MESSAGE if self.is_sound else UNSOUND_MESSAGE

    def raise_if_unsound(self) -> None:
        """Raise :class:`SoundnessError` when the check failed."""
        if not self.is_sound:
            raise SoundnessError(
                f"{UNSOUND_MESSAGE} R-side: {list(self.r_violations)}; "
                f"S-side: {list(self.s_violations)}"
            )

    def __str__(self) -> str:
        return self.message


def verify_soundness(matching: MatchingTable) -> SoundnessReport:
    """Check the uniqueness constraint on *matching*.

    Equivalent to the prototype's ``correct`` predicate: the bag and the
    set of matched R keys must have the same cardinality, and likewise for
    the S keys.
    """
    violations = matching.uniqueness_violations()
    return SoundnessReport(
        is_sound=not violations["R"] and not violations["S"],
        r_violations=tuple(violations["R"]),
        s_violations=tuple(violations["S"]),
    )

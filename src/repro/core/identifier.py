"""The entity identifier: Figure 4's pipeline.

"The entity-identification process reads in R and S relations, derives
their extended key, and generates the integrated table T_RS."

:class:`EntityIdentifier` wires the pieces together:

1. rename both sources into the unified namespace (the attribute
   correspondences established at schema-integration time),
2. extend each relation with its missing extended-key attributes, NULL by
   default, then derive values by chasing the ILFDs (R → R', S → S'),
3. join R' and S' over *identical non-NULL* extended-key values
   (``non_null_eq`` on every K_Ext attribute) to build the matching table,
4. verify the soundness criteria (uniqueness constraint) like the
   prototype's ``verify`` command,
5. evaluate distinctness rules (explicit ones plus the Proposition-1
   duals of the ILFDs) to populate the negative matching table,
6. emit the integrated table ``T_RS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.blocking.base import Blocker, BlockingContext
from repro.blocking.errors import MergeConsistencyError
from repro.blocking.executor import PairEvaluation, ParallelPairExecutor
from repro.core.correspondence import AttributeCorrespondence
from repro.core.errors import ConsistencyError, CoreError
from repro.core.extended_key import ExtendedKey
from repro.core.matching_table import (
    MatchEntry,
    MatchingTable,
    NegativeMatchingTable,
    build_matching_table,
    check_consistency,
    key_values,
)
from repro.core.soundness import SoundnessReport, verify_soundness
from repro.ilfd.derivation import DerivationEngine, DerivationPolicy
from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.observability.tracer import NO_OP_TRACER, Tracer
from repro.relational.relation import Relation
from repro.relational.row import Row
from repro.rules.conversion import ilfd_to_distinctness_rules
from repro.rules.distinctness import DistinctnessRule
from repro.rules.engine import MatchStatus, RuleEngine
from repro.rules.identity import IdentityRule
from repro.store.base import MatchStore
from repro.store.journal import KIND_ASSERT

__all__ = ["IdentificationResult", "EntityIdentifier"]


@dataclass
class IdentificationResult:
    """Everything one identification run produces.

    Attributes
    ----------
    matching:
        The matching table MT_RS.
    negative:
        The negative matching table NMT_RS (explicitly materialised).
    extended_r / extended_s:
        The extended relations R' and S' (unified namespace, derived
        extended-key values filled in).
    report:
        The soundness report for the matching table.
    pair_count:
        Total number of R'×S' tuple pairs considered.
    """

    matching: MatchingTable
    negative: NegativeMatchingTable
    extended_r: Relation
    extended_s: Relation
    report: SoundnessReport
    pair_count: int

    @property
    def undetermined_count(self) -> int:
        """Pairs neither matched nor declared distinct (Figure 3's middle)."""
        return self.pair_count - len(self.matching) - len(self.negative)

    def is_complete(self) -> bool:
        """Completeness (Section 3.2): no undetermined pair remains."""
        return self.undetermined_count == 0


class EntityIdentifier:
    """Identify entities across two relations sharing no common key.

    Parameters
    ----------
    r, s:
        The source relations (in their local namespaces).
    extended_key:
        The DBA-asserted extended key (unified attribute names), or a
        plain sequence of names.
    ilfds:
        ILFDs over unified attribute names.
    correspondence:
        Attribute correspondences; defaults to the identity mapping.
    policy:
        ILFD derivation policy (default: the prototype's FIRST_MATCH).
    identity_rules / distinctness_rules:
        Extra DBA rules beyond the extended-key rule and the ILFD duals.
    asserted_matches:
        User-specified matching pairs, each ``(r_key_mapping,
        s_key_mapping)`` — the paper's "knowledgeable user [may] add
        entries directly to the matching table".
    derive_ilfd_distinctness:
        Whether to auto-derive distinctness rules from the ILFDs via
        Proposition 1 (on by default).
    tracer:
        Optional :class:`~repro.observability.Tracer`.  When given, the
        pipeline records one span per phase (relation extension,
        matching-table build, negative table, soundness, integration)
        and counts pairs, rule evaluations, ILFD firings, and
        match/non-match/unknown outcomes.  Defaults to the free no-op
        tracer; the tracer is threaded through the derivation and rule
        engines so their metrics land in the same registry.
    blocker:
        Optional :class:`~repro.blocking.Blocker`.  When given, both
        tables are built by classifying the blocker's candidate pairs
        through the :class:`~repro.blocking.ParallelPairExecutor`
        instead of the historical exhaustive paths.  With
        :class:`~repro.blocking.ExtendedKeyHashBlocker` the matching
        table is identical to the default path (the candidate set is
        exactly where the extended-key rule can fire) and the negative
        table is restricted to candidate pairs; with
        :class:`~repro.blocking.CrossProductBlocker` both tables are
        exactly the historical ones.  ``None`` (the default) keeps the
        proven exact paths — themselves a K_Ext hash join, i.e.
        recall-equivalent to the cross product — unless ``workers > 1``
        requests parallel evaluation, which uses the cross-product
        blocker to stay exact.
    workers / executor:
        Parallel pair evaluation: ``workers > 1`` builds a
        :class:`~repro.blocking.ParallelPairExecutor` sharing this
        pipeline's tracer; pass ``executor`` to control backend and
        batch size yourself.  Results are deterministic and identical to
        serial evaluation regardless of worker count.
    store:
        Optional :class:`~repro.store.MatchStore`.  When given, every
        table entry the pipeline produces is persisted to it with a
        derivation-journal record naming the rule that fired (identity,
        distinctness, ILFD derivations, and user assertions), so the
        run's conclusions survive the process and ``repro explain-pair``
        can reconstruct their provenance offline.
    """

    def __init__(
        self,
        r: Relation,
        s: Relation,
        extended_key: ExtendedKey | Sequence[str],
        *,
        ilfds: ILFDSet | Iterable[ILFD] = (),
        correspondence: Optional[AttributeCorrespondence] = None,
        policy: DerivationPolicy = DerivationPolicy.FIRST_MATCH,
        identity_rules: Iterable[IdentityRule] = (),
        distinctness_rules: Iterable[DistinctnessRule] = (),
        asserted_matches: Iterable[Tuple[Mapping[str, Any], Mapping[str, Any]]] = (),
        derive_ilfd_distinctness: bool = True,
        tracer: Optional[Tracer] = None,
        blocker: Optional[Blocker] = None,
        workers: int = 1,
        executor: Optional[ParallelPairExecutor] = None,
        store: Optional[MatchStore] = None,
    ) -> None:
        self._tracer = tracer if tracer is not None else NO_OP_TRACER
        self._correspondence = correspondence or AttributeCorrespondence.identity()
        self._r = self._correspondence.unify_r(r)
        self._s = self._correspondence.unify_s(s)
        if not isinstance(extended_key, ExtendedKey):
            extended_key = ExtendedKey(list(extended_key))
        self._ilfds = ilfds if isinstance(ilfds, ILFDSet) else ILFDSet(ilfds)
        extended_key.check_against(
            self._r,
            self._s,
            derivable={
                attr
                for ilfd in self._ilfds
                for attr in ilfd.consequent_attributes
            },
        )
        self._key = extended_key
        self._engine = DerivationEngine(
            self._ilfds, policy=policy, tracer=self._tracer
        )
        self._policy = policy
        self._asserted = list(asserted_matches)

        derived_rules: List[DistinctnessRule] = []
        if derive_ilfd_distinctness:
            for ilfd in self._ilfds:
                derived_rules.extend(ilfd_to_distinctness_rules(ilfd))
        self._rules = RuleEngine(
            [extended_key.identity_rule(), *identity_rules],
            list(distinctness_rules) + derived_rules,
            tracer=self._tracer,
        )

        # Key projections are per-relation constants — compute them once
        # here instead of on every property access inside pairwise loops.
        r_key = self._r.schema.primary_key
        s_key = self._s.schema.primary_key
        self._r_key_attrs: Tuple[str, ...] = tuple(
            n for n in self._r.schema.names if n in r_key
        )
        self._s_key_attrs: Tuple[str, ...] = tuple(
            n for n in self._s.schema.names if n in s_key
        )

        self._store = store
        if store is not None:
            store.set_key_attributes(self._r_key_attrs, self._s_key_attrs)
            store.set_extended_key_attributes(extended_key.attributes)

        self._blocker = blocker
        if executor is not None:
            self._executor: Optional[ParallelPairExecutor] = executor
        elif workers > 1:
            self._executor = ParallelPairExecutor(workers, tracer=self._tracer)
        else:
            self._executor = None
        if self._blocker is None and self._executor is not None:
            # Parallelism without an explicit blocker stays exact: the
            # cross-product blocker preserves the historical semantics.
            from repro.blocking.base import CrossProductBlocker

            self._blocker = CrossProductBlocker()

        self._extended_r: Optional[Relation] = None
        self._extended_s: Optional[Relation] = None
        self._matching: Optional[MatchingTable] = None
        self._negative: Optional[NegativeMatchingTable] = None
        self._evaluation: Optional[
            Tuple[List[Row], List[Row], PairEvaluation]
        ] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def extended_key(self) -> ExtendedKey:
        """The extended key in use."""
        return self._key

    @property
    def tracer(self) -> Tracer:
        """The tracer observing this pipeline (no-op unless supplied)."""
        return self._tracer

    @property
    def ilfds(self) -> ILFDSet:
        """The ILFD set in use."""
        return self._ilfds

    @property
    def rules(self) -> RuleEngine:
        """The rule engine (extended-key rule, extra rules, ILFD duals)."""
        return self._rules

    @property
    def unified_r(self) -> Relation:
        """R in the unified namespace."""
        return self._r

    @property
    def unified_s(self) -> Relation:
        """S in the unified namespace."""
        return self._s

    @property
    def r_key_attributes(self) -> Tuple[str, ...]:
        """R's primary-key attributes (unified names, schema order)."""
        return self._r_key_attrs

    @property
    def s_key_attributes(self) -> Tuple[str, ...]:
        """S's primary-key attributes (unified names, schema order)."""
        return self._s_key_attrs

    @property
    def blocker(self) -> Optional[Blocker]:
        """The candidate-pair blocker in use (None = exact legacy paths)."""
        return self._blocker

    @property
    def executor(self) -> Optional[ParallelPairExecutor]:
        """The pair executor in use (None = serial legacy paths)."""
        return self._executor

    @property
    def store(self) -> Optional[MatchStore]:
        """The persistence backend in use (None = nothing persisted)."""
        return self._store

    # ------------------------------------------------------------------
    # Pipeline steps
    # ------------------------------------------------------------------
    def extended_relations(self) -> Tuple[Relation, Relation]:
        """R' and S': sources extended with derived K_Ext values."""
        if self._extended_r is None or self._extended_s is None:
            targets = list(self._key.attributes)
            with self._tracer.span(
                "identify.extend_relations",
                r_rows=len(self._r),
                s_rows=len(self._s),
            ):
                self._extended_r = self._engine.extend_relation(
                    self._r,
                    targets,
                    observer=self._derivation_observer("r", self._r_key_attrs),
                )
                self._extended_s = self._engine.extend_relation(
                    self._s,
                    targets,
                    observer=self._derivation_observer("s", self._s_key_attrs),
                )
        return self._extended_r, self._extended_s

    def _derivation_observer(self, side: str, key_attrs: Tuple[str, ...]):
        """Journal-writing hook for ILFD firings (None without a store)."""
        store = self._store
        if store is None:
            return None

        def observe(row: Row, result) -> None:
            key = key_values(row, key_attrs)
            store.record_derivation(
                side,
                key,
                rule=", ".join(
                    ilfd.name or repr(ilfd) for ilfd in result.fired
                ),
                derived=result.derived,
            )

        return observe

    def _blocked_evaluation(self) -> Tuple[List[Row], List[Row], PairEvaluation]:
        """Classify the blocker's candidate pairs (once, cached).

        One pass produces both tables: the executor evaluates identity
        and distinctness rules over every candidate, and the merge
        enforces the consistency constraint (re-raised as
        :class:`~repro.core.errors.ConsistencyError` to keep this
        module's error contract).
        """
        if self._evaluation is not None:
            return self._evaluation
        assert self._blocker is not None
        extended_r, extended_s = self.extended_relations()
        r_rows = list(extended_r)
        s_rows = list(extended_s)
        context = BlockingContext.of(self._key.attributes, self._ilfds)
        candidates = self._blocker.block(
            r_rows, s_rows, context, tracer=self._tracer
        )
        executor = self._executor
        if executor is None:
            executor = ParallelPairExecutor(1, tracer=self._tracer)
        store_kwargs = {}
        if self._store is not None:
            store_kwargs = {
                "store": self._store,
                "r_keys": [key_values(row, self._r_key_attrs) for row in r_rows],
                "s_keys": [key_values(row, self._s_key_attrs) for row in s_rows],
            }
        try:
            evaluation = executor.evaluate(
                candidates,
                r_rows,
                s_rows,
                self._rules.identity_rules,
                self._rules.distinctness_rules,
                **store_kwargs,
            )
        except MergeConsistencyError as exc:
            raise ConsistencyError(str(exc)) from exc
        self._evaluation = (r_rows, s_rows, evaluation)
        return self._evaluation

    def matching_table(self) -> MatchingTable:
        """MT_RS: pairs with identical non-NULL extended-key values."""
        if self._matching is not None:
            return self._matching
        extended_r, extended_s = self.extended_relations()
        with self._tracer.span("identify.matching_table") as span:
            if self._blocker is not None:
                r_rows, s_rows, evaluation = self._blocked_evaluation()
                table = MatchingTable(
                    r_key_attributes=self.r_key_attributes,
                    s_key_attributes=self.s_key_attributes,
                )
                r_keys: Dict[int, Any] = {}
                s_keys: Dict[int, Any] = {}
                for i, j in evaluation.matches:
                    r_key = r_keys.get(i)
                    if r_key is None:
                        r_key = r_keys[i] = key_values(
                            r_rows[i], self._r_key_attrs
                        )
                    s_key = s_keys.get(j)
                    if s_key is None:
                        s_key = s_keys[j] = key_values(
                            s_rows[j], self._s_key_attrs
                        )
                    table.add(MatchEntry(r_rows[i], s_rows[j], r_key, s_key))
                span.set("blocker", self._blocker.name)
            else:
                table = build_matching_table(
                    extended_r,
                    extended_s,
                    list(self._key.attributes),
                    self.r_key_attributes,
                    self.s_key_attributes,
                )
                if self._store is not None:
                    # The legacy join *is* the extended-key rule: every
                    # entry it emits is that rule firing.
                    rule_name = self._rules.identity_rules[0].name
                    with self._store.transaction():
                        for entry in table:
                            self._store.record_match(
                                entry.r_key,
                                entry.s_key,
                                entry.r_row,
                                entry.s_row,
                                rule=rule_name,
                            )
            asserted_entries = [
                self._asserted_entry(r_keys_map, s_keys_map)
                for r_keys_map, s_keys_map in self._asserted
            ]
            for entry in asserted_entries:
                table.add(entry)
            if self._store is not None and asserted_entries:
                with self._store.transaction():
                    for entry in asserted_entries:
                        self._store.record_match(
                            entry.r_key,
                            entry.s_key,
                            entry.r_row,
                            entry.s_row,
                            rule="user-assertion",
                            kind=KIND_ASSERT,
                        )
            span.set("entries", len(table))
        if self._tracer.enabled:
            self._tracer.metrics.inc("pipeline.matches", len(table))
        self._matching = table
        return table

    def _asserted_entry(
        self, r_keys: Mapping[str, Any], s_keys: Mapping[str, Any]
    ) -> MatchEntry:
        extended_r, extended_s = self.extended_relations()
        r_row = extended_r.lookup(dict(r_keys))
        s_row = extended_s.lookup(dict(s_keys))
        if r_row is None or s_row is None:
            raise CoreError(
                f"asserted match references unknown tuples: R{dict(r_keys)!r} "
                f"/ S{dict(s_keys)!r}"
            )
        return MatchEntry(
            r_row,
            s_row,
            key_values(r_row, self.r_key_attributes),
            key_values(s_row, self.s_key_attributes),
        )

    def negative_matching_table(self) -> NegativeMatchingTable:
        """NMT_RS: pairs some distinctness rule declares distinct.

        Without a blocker, materialises the full table (O(|R'|·|S'|)
        rule evaluations); the paper notes real systems would keep it
        implicit, but the worked examples (Table 4) and the completeness
        accounting need it.  With a blocker, only candidate pairs are
        evaluated — exhaustive for :class:`CrossProductBlocker`,
        restricted to candidates otherwise (the documented trade-off of
        electing a pruning blocker).
        """
        if self._negative is not None:
            return self._negative
        extended_r, extended_s = self.extended_relations()
        table = NegativeMatchingTable(
            r_key_attributes=self.r_key_attributes,
            s_key_attributes=self.s_key_attributes,
        )
        with self._tracer.span(
            "identify.negative_matching_table",
            pairs=len(extended_r) * len(extended_s),
        ) as span:
            if self._blocker is not None:
                r_rows, s_rows, evaluation = self._blocked_evaluation()
                r_keys: Dict[int, Any] = {}
                s_keys: Dict[int, Any] = {}
                for i, j in evaluation.distinct:
                    r_key = r_keys.get(i)
                    if r_key is None:
                        r_key = r_keys[i] = key_values(
                            r_rows[i], self._r_key_attrs
                        )
                    s_key = s_keys.get(j)
                    if s_key is None:
                        s_key = s_keys[j] = key_values(
                            s_rows[j], self._s_key_attrs
                        )
                    table.add(MatchEntry(r_rows[i], s_rows[j], r_key, s_key))
                span.set("blocker", self._blocker.name)
            else:
                # Key projections hoisted: rendered once per row, not once
                # per firing pair inside the O(|R'|·|S'|) loop.
                r_entries = [
                    (r_row, key_values(r_row, self._r_key_attrs))
                    for r_row in extended_r
                ]
                s_entries = [
                    (s_row, key_values(s_row, self._s_key_attrs))
                    for s_row in extended_s
                ]
                firing = self._rules.firing_distinctness_rules
                store = self._store
                new_entries: List[Tuple[MatchEntry, str]] = []
                for r_row, r_key in r_entries:
                    for s_row, s_key in s_entries:
                        fired = firing(r_row, s_row)
                        if fired:
                            entry = MatchEntry(r_row, s_row, r_key, s_key)
                            table.add(entry)
                            if store is not None:
                                new_entries.append((entry, fired[0].name))
                if store is not None and new_entries:
                    with store.transaction():
                        for entry, rule_name in new_entries:
                            store.record_non_match(
                                entry.r_key,
                                entry.s_key,
                                entry.r_row,
                                entry.s_row,
                                rule=rule_name,
                            )
            span.set("entries", len(table))
        if self._tracer.enabled:
            self._tracer.metrics.inc("pipeline.non_matches", len(table))
        self._negative = table
        return table

    # ------------------------------------------------------------------
    # Classification and results
    # ------------------------------------------------------------------
    def classify_pair(self, r_row: Mapping[str, Any], s_row: Mapping[str, Any]) -> MatchStatus:
        """Three-valued classification of one (R tuple, S tuple) pair.

        Accepts rows from the *source* relations (local or unified names);
        they are unified and ILFD-extended before rule evaluation.
        """
        r_unified = Row(dict(r_row)).rename(dict(self._correspondence.r_map))
        s_unified = Row(dict(s_row)).rename(dict(self._correspondence.s_map))
        targets = list(self._key.attributes)
        r_ext = self._engine.extend_row(r_unified, targets).row
        s_ext = self._engine.extend_row(s_unified, targets).row
        # The extended-key rule is part of the engine's identity rules, and
        # its predicates evaluate UNKNOWN (not TRUE) on NULLs, so "all K_Ext
        # values non-NULL and equal" is exactly "some identity rule fires".
        matched = bool(self._rules.firing_identity_rules(r_ext, s_ext))
        distinct = bool(self._rules.firing_distinctness_rules(r_ext, s_ext))
        if matched and distinct:
            raise ConsistencyError(
                f"pair classifies as both matching and distinct: "
                f"{dict(r_row)!r} / {dict(s_row)!r}"
            )
        if matched:
            return MatchStatus.MATCH
        if distinct:
            return MatchStatus.NON_MATCH
        return MatchStatus.UNKNOWN

    def verify(self) -> SoundnessReport:
        """Verify the soundness criteria (the prototype's ``verify``)."""
        matching = self.matching_table()
        with self._tracer.span("identify.soundness") as span:
            report = verify_soundness(matching)
            span.set("sound", report.is_sound)
        return report

    def run(self) -> IdentificationResult:
        """Execute the full pipeline and bundle the outcome."""
        with self._tracer.span("identify.run") as span:
            matching = self.matching_table()
            negative = self.negative_matching_table()
            check_consistency(matching, negative)
            extended_r, extended_s = self.extended_relations()
            report = self.verify()
            pair_count = len(extended_r) * len(extended_s)
            span.set("pairs", pair_count)
            span.set("matches", len(matching))
            span.set("non_matches", len(negative))
        result = IdentificationResult(
            matching=matching,
            negative=negative,
            extended_r=extended_r,
            extended_s=extended_s,
            report=report,
            pair_count=pair_count,
        )
        if self._tracer.enabled:
            metrics = self._tracer.metrics
            metrics.inc("pipeline.pairs", pair_count)
            metrics.inc("pipeline.unknown", result.undetermined_count)
        return result

    def integrate(self):
        """The integrated table T_RS (see :mod:`repro.core.integration`)."""
        from repro.core.integration import integrate

        extended_r, extended_s = self.extended_relations()
        matching = self.matching_table()
        with self._tracer.span("identify.integrate") as span:
            integrated = integrate(extended_r, extended_s, matching)
            span.set("rows", len(integrated))
        return integrated

"""The entity-identification core (Sections 3, 4, and 6 of the paper).

This package assembles the substrates into the paper's proposed solution:

- :mod:`repro.core.correspondence` -- semantic attribute equivalences
  between the two source relations (assumed resolved at schema-integration
  time), realised as renamings into a unified namespace,
- :mod:`repro.core.extended_key` -- the extended key ``K_Ext`` and its
  induced identity rule,
- :mod:`repro.core.matching_table` -- matching and negative matching
  tables with the uniqueness and consistency constraints of Section 3.2,
- :mod:`repro.core.identifier` -- :class:`EntityIdentifier`, the Figure-4
  pipeline: extend the sources with NULLs, chase ILFDs, join over the
  extended key, verify soundness,
- :mod:`repro.core.algebra_construction` -- the same construction as pure
  relational-algebra expressions (Section 4.2's equation series),
- :mod:`repro.core.integration` -- the integrated table
  ``T_RS = MT_RS ⋈ R ⟗ S``,
- :mod:`repro.core.soundness` -- soundness verification (the prototype's
  ``verify`` command),
- :mod:`repro.core.monotonicity` -- tracking match/non-match/undetermined
  evolution as semantic knowledge is added (Figure 3).
"""

from repro.core.correspondence import AttributeCorrespondence
from repro.core.errors import (
    ConsistencyError,
    CoreError,
    ExtendedKeyError,
    SoundnessError,
)
from repro.core.extended_key import ExtendedKey
from repro.core.matching_table import (
    MatchEntry,
    MatchingTable,
    NegativeMatchingTable,
)
from repro.core.identifier import EntityIdentifier, IdentificationResult
from repro.core.algebra_construction import (
    algebraic_matching_table,
    extend_relation_algebraically,
)
from repro.core.integration import (
    AttributeConflict,
    IntegratedTable,
    PossibleIntraMatch,
    integrate,
)
from repro.core.report import identification_report
from repro.core.explain import MatchExplanation, ValueProvenance, explain_match
from repro.core.multiway import (
    CONFLICT_POLICIES,
    AttributeConflict,
    EntityCluster,
    MultiwayIdentifier,
    MultiwaySoundnessReport,
)
from repro.core.soundness import SoundnessReport, verify_soundness
from repro.core.monotonicity import KnowledgeIncrement, MonotonicityTracker
from repro.core.diagnostics import (
    ConflictPolicy,
    HomonymCandidate,
    UnresolvedConflictError,
    homonym_candidates,
    resolve_conflicts,
)
from repro.rules.engine import MatchStatus

__all__ = [
    "AttributeConflict",
    "AttributeCorrespondence",
    "ConflictPolicy",
    "ConsistencyError",
    "CoreError",
    "HomonymCandidate",
    "AttributeConflict",
    "CONFLICT_POLICIES",
    "EntityCluster",
    "EntityIdentifier",
    "ExtendedKey",
    "ExtendedKeyError",
    "IdentificationResult",
    "IntegratedTable",
    "KnowledgeIncrement",
    "MatchEntry",
    "MatchExplanation",
    "MatchStatus",
    "MatchingTable",
    "MonotonicityTracker",
    "MultiwayIdentifier",
    "MultiwaySoundnessReport",
    "NegativeMatchingTable",
    "PossibleIntraMatch",
    "SoundnessError",
    "SoundnessReport",
    "UnresolvedConflictError",
    "ValueProvenance",
    "algebraic_matching_table",
    "explain_match",
    "extend_relation_algebraically",
    "homonym_candidates",
    "identification_report",
    "integrate",
    "resolve_conflicts",
    "verify_soundness",
]

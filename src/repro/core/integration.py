"""The integrated table T_RS (Sections 4.1 and 6.2).

"We keep those R(S) tuples not matched with any S(R) tuple as separate
tuples in the integrated table, while merging the matching pairs into
one. … Given tables R and S, and the matching table MT_RS, the integrated
table T_RS can be expressed as MT_RS ⋈ R ⟗ S."

Following the prototype's output (Section 6), the integrated table keeps
both sides' attribute namespaces, prefixed ``r_`` / ``s_``: a matched pair
contributes one row holding both tuples' values; an unmatched tuple
contributes a row whose other side is all NULL.  :meth:`IntegratedTable.merged_view`
additionally coalesces each unified attribute into a single column,
surfacing any attribute-value conflicts (which the paper defers to a
separate resolution step after identification).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.matching_table import MatchingTable, key_values
from repro.relational.attribute import Attribute
from repro.relational.nulls import NULL, is_null
from repro.relational.relation import Relation
from repro.relational.row import Row
from repro.relational.schema import Schema


@dataclass(frozen=True)
class PossibleIntraMatch:
    """Two T_RS tuples that may model the same real-world entity.

    Section 4.1: "Within the integrated table T_RS, a real-world entity
    can be modeled by more than one tuple [at most two].  A T_RS tuple
    can possibly match another T_RS tuple provided they have no
    conflicting nonnull values in their extended key."
    """

    first: Row
    second: Row
    agreeing: Tuple[str, ...]
    unknown: Tuple[str, ...]

    def __str__(self) -> str:
        return (
            f"possible intra-T_RS match (agree on {list(self.agreeing)}, "
            f"unknown on {list(self.unknown)})"
        )


@dataclass(frozen=True)
class AttributeConflict:
    """A matched pair disagreeing on a unified attribute's value."""

    attribute: str
    r_value: Any
    s_value: Any
    row: Row

    def __str__(self) -> str:
        return (
            f"conflict on {self.attribute!r}: R says {self.r_value!r}, "
            f"S says {self.s_value!r}"
        )


class IntegratedTable:
    """T_RS with both prefixed and merged views."""

    def __init__(
        self,
        relation: Relation,
        *,
        r_attributes: Sequence[str],
        s_attributes: Sequence[str],
        r_prefix: str = "r_",
        s_prefix: str = "s_",
    ) -> None:
        self._relation = relation
        self._r_attributes = tuple(r_attributes)
        self._s_attributes = tuple(s_attributes)
        self._r_prefix = r_prefix
        self._s_prefix = s_prefix

    @property
    def relation(self) -> Relation:
        """The prefixed-namespace view (prototype layout)."""
        return self._relation

    def __len__(self) -> int:
        return len(self._relation)

    def __iter__(self):
        return iter(self._relation)

    def conflicts(self) -> List[AttributeConflict]:
        """Attribute-value conflicts among matched rows.

        For every unified attribute present on both sides, report rows
        where both prefixed columns are non-NULL yet differ.
        """
        shared = [a for a in self._r_attributes if a in self._s_attributes]
        out: List[AttributeConflict] = []
        for row in self._relation:
            for attr in shared:
                r_value = row[self._r_prefix + attr]
                s_value = row[self._s_prefix + attr]
                if not is_null(r_value) and not is_null(s_value) and r_value != s_value:
                    out.append(AttributeConflict(attr, r_value, s_value, row))
        return out

    def possible_intra_matches(
        self, extended_key: Sequence[str]
    ) -> List[PossibleIntraMatch]:
        """Pairs of T_RS rows that could model one entity (Section 4.1).

        Works on the *merged* view.  A pair qualifies when, for every
        extended-key attribute, the two rows' values do not conflict
        (equal, or at least one NULL) and they agree on at least one
        non-NULL attribute (two all-unknown rows assert nothing).  These
        pairs are exactly the residual uncertainty NULLs leave in the
        integrated table — resolving them needs more ILFDs or user input.
        """
        merged = list(self.merged_view())
        out: List[PossibleIntraMatch] = []
        for index, first in enumerate(merged):
            for second in merged[index + 1 :]:
                agreeing: List[str] = []
                unknown: List[str] = []
                conflict = False
                for attr in extended_key:
                    a, b = first[attr], second[attr]
                    if is_null(a) or is_null(b):
                        unknown.append(attr)
                    elif a == b:
                        agreeing.append(attr)
                    else:
                        conflict = True
                        break
                if not conflict and agreeing and unknown:
                    out.append(
                        PossibleIntraMatch(
                            first, second, tuple(agreeing), tuple(unknown)
                        )
                    )
        return out

    def resolved_view(self, policy: "ConflictPolicy" = None) -> Relation:  # type: ignore[assignment]
        """Merged view under an explicit conflict-resolution policy.

        The paper defers attribute-value conflict resolution to after
        identification; this is that step.  See
        :class:`repro.core.diagnostics.ConflictPolicy` — ``PREFER_R``,
        ``PREFER_S``, ``NULL_OUT`` (conflicting values become NULL), or
        ``STRICT`` (raise on the first conflict).
        """
        from repro.core.diagnostics import ConflictPolicy, resolve_conflicts

        if policy is None:
            policy = ConflictPolicy.PREFER_R
        shared = [a for a in self._r_attributes if a in self._s_attributes]
        rows, _ = resolve_conflicts(
            self._relation,
            shared,
            policy=policy,
            r_prefix=self._r_prefix,
            s_prefix=self._s_prefix,
        )
        if not rows:
            return self.merged_view()
        names = list(rows[0])
        schema = Schema([Attribute(n) for n in names])
        out = Relation(schema, (), name="T_RS(resolved)", enforce_keys=False)
        deduped: Dict[Row, None] = {}
        for row in rows:
            deduped.setdefault(row)
        out._rows = tuple(deduped)
        out._row_set = frozenset(deduped)
        return out

    def merged_view(self) -> Relation:
        """One column per unified attribute, R's value winning conflicts.

        Intended for conflict-free integrations (the paper assumes
        attribute values are accurate, so matched tuples agree); check
        :meth:`conflicts` first when that assumption may not hold.
        """
        ordered: List[str] = list(self._r_attributes)
        ordered.extend(a for a in self._s_attributes if a not in ordered)
        schema = Schema([Attribute(a) for a in ordered])
        rows: List[Row] = []
        for row in self._relation:
            values: Dict[str, Any] = {}
            for attr in ordered:
                r_value = (
                    row[self._r_prefix + attr]
                    if attr in self._r_attributes
                    else NULL
                )
                s_value = (
                    row[self._s_prefix + attr]
                    if attr in self._s_attributes
                    else NULL
                )
                values[attr] = s_value if is_null(r_value) else r_value
            rows.append(Row(values))
        merged = Relation(schema, (), name="T_RS(merged)", enforce_keys=False)
        deduped: Dict[Row, None] = {}
        for row in rows:
            deduped.setdefault(row)
        merged._rows = tuple(deduped)
        merged._row_set = frozenset(deduped)
        return merged


def integrate(
    extended_r: Relation,
    extended_s: Relation,
    matching: MatchingTable,
    *,
    r_prefix: str = "r_",
    s_prefix: str = "s_",
    name: str = "T_RS",
) -> IntegratedTable:
    """Build T_RS = MT_RS ⋈ R ⟗ S.

    Matched pairs (per *matching*) merge into one row carrying both
    tuples; unmatched tuples survive with the other side NULL-padded.
    """
    r_attrs = list(extended_r.schema.names)
    s_attrs = list(extended_s.schema.names)
    columns = [r_prefix + a for a in r_attrs] + [s_prefix + a for a in s_attrs]
    schema = Schema([Attribute(c) for c in columns])

    matched_r = {entry.r_key for entry in matching}
    matched_s = {entry.s_key for entry in matching}
    rows: List[Row] = []

    def combined(r_row: Optional[Row], s_row: Optional[Row]) -> Row:
        values: Dict[str, Any] = {}
        for attr in r_attrs:
            values[r_prefix + attr] = r_row[attr] if r_row is not None else NULL
        for attr in s_attrs:
            values[s_prefix + attr] = s_row[attr] if s_row is not None else NULL
        return Row(values)

    for entry in matching:
        rows.append(combined(entry.r_row, entry.s_row))
    r_key_attrs = matching.r_key_attributes
    s_key_attrs = matching.s_key_attributes
    for r_row in extended_r:
        if key_values(r_row, r_key_attrs) not in matched_r:
            rows.append(combined(r_row, None))
    for s_row in extended_s:
        if key_values(s_row, s_key_attrs) not in matched_s:
            rows.append(combined(None, s_row))

    relation = Relation(schema, (), name=name, enforce_keys=False)
    deduped: Dict[Row, None] = {}
    for row in rows:
        deduped.setdefault(row)
    relation._rows = tuple(deduped)
    relation._row_set = frozenset(deduped)
    return IntegratedTable(
        relation,
        r_attributes=r_attrs,
        s_attributes=s_attrs,
        r_prefix=r_prefix,
        s_prefix=s_prefix,
    )

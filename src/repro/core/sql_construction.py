"""The Section-4.2 construction as generated SQL, executed on SQLite.

The paper expresses the matching-table construction as relational
algebra; a downstream adopter's data usually lives in an RDBMS, so this
module emits the construction as SQL:

1. each source relation and each ILFD table ``IM(x̄, y)`` becomes a table,
2. per derivation round, a new table ``<side>_ext<k>`` LEFT JOINs the
   previous round against every applicable ILFD table and coalesces each
   derivable attribute (``COALESCE(prev.y, im1.y, im2.y, …)`` — stored
   values shadow derivations, earlier tables win, mirroring the
   FIRST_MATCH table order),
3. the matching table is the inner join of the final extensions on
   equality of every extended-key attribute — SQL's ``=`` never matches
   NULL, which *is* the paper's ``non_null_eq``.

Running the generated script on SQLite and comparing with the in-memory
pipeline is an end-to-end semantic cross-check against an independent,
widely trusted engine (bench X8, plus property tests).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.extended_key import ExtendedKey
from repro.core.matching_table import KeyValues
from repro.ilfd.tables import ILFDTable
from repro.relational.relation import Relation
from repro.relational.sqlgen import fetch_rows, load_relation, quote_identifier

Pair = Tuple[KeyValues, KeyValues]


def _key_attrs(relation: Relation) -> List[str]:
    key = relation.schema.primary_key
    return [n for n in relation.schema.names if n in key]


@dataclass
class SqlConstruction:
    """Generated SQL script plus the metadata needed to read results."""

    statements: List[str]
    final_query: str
    r_key: Tuple[str, ...]
    s_key: Tuple[str, ...]

    def script(self) -> str:
        """The full script, statement per line, for inspection/export."""
        return ";\n\n".join(self.statements + [self.final_query]) + ";"


def generate_sql_construction(
    r: Relation,
    s: Relation,
    extended_key: ExtendedKey | Sequence[str],
    tables: Sequence[ILFDTable],
    *,
    rounds: Optional[int] = None,
) -> SqlConstruction:
    """Emit the construction as CREATE TABLE AS rounds + a final join.

    *rounds* defaults to the number of derivable attributes + 1, which is
    enough for any chain (each round grounds at least one more attribute).
    """
    if not isinstance(extended_key, ExtendedKey):
        extended_key = ExtendedKey(list(extended_key))
    targets = list(extended_key.attributes)
    derivable = [t.derived_attribute for t in tables]
    depth = rounds if rounds is not None else len(set(derivable)) + 1

    statements: List[str] = []
    for index, table in enumerate(tables):
        statements.append(f"-- ILFD table im{index}: {table!r}")

    def build_side(side: str, relation: Relation) -> str:
        base_cols = list(relation.schema.names)
        work_cols = base_cols + [
            c
            for c in dict.fromkeys(targets + sorted(set(derivable)))
            if c not in base_cols
        ]
        current = f"{side}_ext0"
        select_null_padded = ", ".join(
            quote_identifier(c)
            if c in base_cols
            else f"NULL AS {quote_identifier(c)}"
            for c in work_cols
        )
        statements.append(
            f"CREATE TABLE {quote_identifier(current)} AS "
            f"SELECT {select_null_padded} FROM {quote_identifier(side + '_src')}"
        )
        for round_no in range(1, depth + 1):
            nxt = f"{side}_ext{round_no}"
            joins: List[str] = []
            derived_sources: Dict[str, List[str]] = {c: [] for c in work_cols}
            for index, table in enumerate(tables):
                if not set(table.antecedent_attributes) <= set(work_cols):
                    continue
                alias = f"j{round_no}_{index}"
                conditions = " AND ".join(
                    f"b.{quote_identifier(a)} = {alias}.{quote_identifier(a)}"
                    for a in table.antecedent_attributes
                )
                joins.append(
                    f"LEFT JOIN {quote_identifier('im' + str(index))} AS "
                    f"{alias} ON {conditions}"
                )
                derived_sources[table.derived_attribute].append(
                    f"{alias}.{quote_identifier(table.derived_attribute)}"
                )
            select_parts: List[str] = []
            for column in work_cols:
                sources = derived_sources.get(column, [])
                if sources:
                    inner = ", ".join([f"b.{quote_identifier(column)}"] + sources)
                    select_parts.append(
                        f"COALESCE({inner}) AS {quote_identifier(column)}"
                    )
                else:
                    select_parts.append(f"b.{quote_identifier(column)}")
            statements.append(
                f"CREATE TABLE {quote_identifier(nxt)} AS SELECT "
                + ", ".join(select_parts)
                + f" FROM {quote_identifier(current)} AS b "
                + " ".join(joins)
            )
            current = nxt
        return current

    r_final = build_side("r", r)
    s_final = build_side("s", s)

    r_key = _key_attrs(r)
    s_key = _key_attrs(s)
    select_cols = ", ".join(
        [f"r.{quote_identifier(a)}" for a in r_key]
        + [f"s.{quote_identifier(a)}" for a in s_key]
    )
    join_condition = " AND ".join(
        f"r.{quote_identifier(a)} = s.{quote_identifier(a)}" for a in targets
    )
    final_query = (
        f"SELECT DISTINCT {select_cols} FROM {quote_identifier(r_final)} AS r "
        f"JOIN {quote_identifier(s_final)} AS s ON {join_condition}"
    )
    return SqlConstruction(
        statements=statements,
        final_query=final_query,
        r_key=tuple(r_key),
        s_key=tuple(s_key),
    )


def sql_matching_pairs(
    r: Relation,
    s: Relation,
    extended_key: ExtendedKey | Sequence[str],
    tables: Sequence[ILFDTable],
    *,
    rounds: Optional[int] = None,
    connection: Optional[sqlite3.Connection] = None,
) -> frozenset:
    """Run the generated construction on SQLite; return MT pairs.

    Pairs come back in the same ``KeyValues`` shape the in-memory
    matching table uses, so results compare directly.
    """
    construction = generate_sql_construction(
        r, s, extended_key, tables, rounds=rounds
    )
    own_connection = connection is None
    conn = connection or sqlite3.connect(":memory:")
    try:
        load_relation(conn, r, "r_src")
        load_relation(conn, s, "s_src")
        for index, table in enumerate(tables):
            load_relation(conn, table.relation, f"im{index}")
        for statement in construction.statements:
            if statement.startswith("--"):
                continue
            conn.execute(statement)
        records = fetch_rows(conn, construction.final_query)
    finally:
        if own_connection:
            conn.close()
    n_r = len(construction.r_key)
    pairs = set()
    for record in records:
        r_values = record[:n_r]
        s_values = record[n_r:]
        pairs.add(
            (
                tuple(sorted(zip(construction.r_key, r_values))),
                tuple(sorted(zip(construction.s_key, s_values))),
            )
        )
    return frozenset(pairs)

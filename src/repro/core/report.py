"""Full-text identification reports.

A production integration run ends with a human decision: which key to
adopt, which homonym candidates need distinctness rules, which conflicts
need resolution.  :func:`identification_report` gathers everything one
run produced — the Figure-3 accounting, the soundness verdict with its
witnesses, the matching table, the homonym candidates, and the
attribute-value conflicts — into one readable document, in the prototype's
fixed-width style.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.diagnostics import homonym_candidates
from repro.core.identifier import EntityIdentifier, IdentificationResult
from repro.relational.formatting import format_relation


def identification_report(
    identifier: EntityIdentifier,
    *,
    result: Optional[IdentificationResult] = None,
    max_homonyms: int = 10,
    title: str = "entity identification report",
) -> str:
    """Render one identification run as a text report.

    Unlike :meth:`EntityIdentifier.run`, the report never raises on an
    inconsistent configuration — pairs in both the matching and the
    negative matching table are *listed*, because that is precisely when
    the DBA needs the report.
    """
    if result is None:
        from repro.core.soundness import verify_soundness

        matching = identifier.matching_table()
        negative = identifier.negative_matching_table()
        extended_r, extended_s = identifier.extended_relations()
        result = IdentificationResult(
            matching=matching,
            negative=negative,
            extended_r=extended_r,
            extended_s=extended_s,
            report=verify_soundness(matching),
            pair_count=len(extended_r) * len(extended_s),
        )
    lines: List[str] = []
    rule = "=" * max(60, len(title))
    lines.append(title.center(len(rule)).rstrip())
    lines.append(rule)

    lines.append("")
    lines.append(
        f"sources: R ({len(identifier.unified_r)} tuples, key "
        f"{{{', '.join(identifier.r_key_attributes)}}}) / "
        f"S ({len(identifier.unified_s)} tuples, key "
        f"{{{', '.join(identifier.s_key_attributes)}}})"
    )
    lines.append(
        f"extended key: {{{', '.join(identifier.extended_key.attributes)}}}"
        f"   ILFDs available: {len(identifier.ilfds)}"
    )

    lines.append("")
    lines.append("pair accounting (Figure 3):")
    lines.append(f"  matching pairs:      {len(result.matching):>6}")
    lines.append(f"  non-matching pairs:  {len(result.negative):>6}")
    lines.append(f"  undetermined pairs:  {result.undetermined_count:>6}")
    lines.append(f"  complete:            {str(result.is_complete()).lower()}")

    lines.append("")
    lines.append(f"soundness: {result.report.message}")
    for side, violations in (
        ("R", result.report.r_violations),
        ("S", result.report.s_violations),
    ):
        for key in violations:
            lines.append(
                f"  {side} tuple {dict(key)!r} matched to multiple tuples"
            )
    overlap = result.matching.pairs() & result.negative.pairs()
    if overlap:
        lines.append(
            f"  CONSISTENCY VIOLATION: {len(overlap)} pair(s) are in both "
            "the matching and the negative matching table:"
        )
        for r_key, s_key in sorted(overlap):
            lines.append(f"    R{dict(r_key)!r} / S{dict(s_key)!r}")

    lines.append("")
    lines.append(format_relation(result.matching.to_relation(), title="matching table"))

    candidates = homonym_candidates(
        identifier.unified_r, identifier.unified_s, result.matching
    )
    lines.append("")
    lines.append(
        f"potential instance-level homonyms (unmatched same-value pairs): "
        f"{len(candidates)}"
    )
    for candidate in candidates[:max_homonyms]:
        lines.append(f"  {candidate}")
    if len(candidates) > max_homonyms:
        lines.append(f"  … and {len(candidates) - max_homonyms} more")

    integrated = identifier.integrate()
    conflicts = integrated.conflicts()
    lines.append("")
    lines.append(f"attribute-value conflicts among matched pairs: {len(conflicts)}")
    for conflict in conflicts[:max_homonyms]:
        lines.append(f"  {conflict}")
    lines.append("")
    lines.append(f"integrated table T_RS: {len(integrated)} rows")
    return "\n".join(lines)

"""Instance-level diagnostics: homonyms and attribute-value conflicts.

Section 2 separates two instance-level problems.  Entity identification
itself is handled by the identifier; this module surfaces the material
the DBA needs around it:

- **instance-level homonyms** ("the same identifier is used for
  different real-world entities in different databases", for which
  "there appears to be no fully automatic way"): pairs of tuples that
  *agree on common attribute values* yet are **not** declared matching —
  exactly the pairs a naive value-equivalence matcher would get wrong;
- **attribute value conflicts** ("can be performed only after the
  entity-identification problem has been resolved"): matched pairs whose
  common attributes disagree, with resolution policies for building the
  merged view.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.matching_table import KeyValues, MatchingTable, key_values
from repro.relational.nulls import NULL, is_null
from repro.relational.relation import Relation
from repro.relational.row import Row


@dataclass(frozen=True)
class HomonymCandidate:
    """A same-values, not-matched tuple pair (a potential homonym)."""

    r_key: KeyValues
    s_key: KeyValues
    agreeing_attributes: Tuple[str, ...]

    def __str__(self) -> str:
        return (
            f"R{dict(self.r_key)!r} / S{dict(self.s_key)!r} agree on "
            f"{list(self.agreeing_attributes)} but are not matched"
        )


def homonym_candidates(
    r: Relation,
    s: Relation,
    matching: MatchingTable,
    *,
    attributes: Optional[Sequence[str]] = None,
    min_agreeing: int = 1,
) -> List[HomonymCandidate]:
    """Unmatched pairs agreeing on ≥ *min_agreeing* common attributes.

    These are the pairs where "the same identifier is used for different
    real-world entities": a sound identifier leaves them unmatched, a
    value-based matcher would join them.  The list is what a DBA reviews
    when deciding whether more distinctness rules are needed.
    """
    common = (
        list(attributes)
        if attributes is not None
        else [n for n in r.schema.names if n in s.schema]
    )
    if not common:
        return []
    matched = matching.pairs()
    r_key_attrs = matching.r_key_attributes or tuple(
        sorted(r.schema.primary_key)
    )
    s_key_attrs = matching.s_key_attributes or tuple(
        sorted(s.schema.primary_key)
    )
    out: List[HomonymCandidate] = []
    for r_row in r:
        for s_row in s:
            agreeing = tuple(
                attr
                for attr in common
                if not is_null(r_row[attr])
                and not is_null(s_row[attr])
                and r_row[attr] == s_row[attr]
            )
            if len(agreeing) < min_agreeing:
                continue
            pair = (
                key_values(r_row, r_key_attrs),
                key_values(s_row, s_key_attrs),
            )
            if pair in matched:
                continue
            out.append(HomonymCandidate(pair[0], pair[1], agreeing))
    return out


class ConflictPolicy(enum.Enum):
    """How to resolve attribute-value conflicts in the merged view."""

    PREFER_R = "prefer_r"
    PREFER_S = "prefer_s"
    NULL_OUT = "null_out"
    STRICT = "strict"


class UnresolvedConflictError(Exception):
    """STRICT resolution hit a conflicting matched pair."""


def resolve_conflicts(
    integrated: "Relation",
    shared_attributes: Sequence[str],
    *,
    policy: ConflictPolicy = ConflictPolicy.PREFER_R,
    r_prefix: str = "r_",
    s_prefix: str = "s_",
) -> Tuple[List[Row], List[str]]:
    """Resolve each shared attribute of a prefixed T_RS relation.

    Returns (resolved rows over unprefixed shared attributes + the rest,
    human-readable conflict log).  With ``STRICT`` the first conflict
    raises :class:`UnresolvedConflictError`.
    """
    log: List[str] = []
    resolved: List[Row] = []
    for row in integrated:
        values: Dict[str, Any] = {}
        for name in integrated.schema.names:
            bare = None
            if name.startswith(r_prefix) and name[len(r_prefix):] in shared_attributes:
                bare = name[len(r_prefix):]
            elif name.startswith(s_prefix) and name[len(s_prefix):] in shared_attributes:
                continue  # handled together with the r_ column
            if bare is None:
                values[name] = row[name]
                continue
            r_value = row[r_prefix + bare]
            s_value = row[s_prefix + bare]
            if is_null(r_value):
                values[bare] = s_value
            elif is_null(s_value) or r_value == s_value:
                values[bare] = r_value
            else:
                message = (
                    f"conflict on {bare!r}: R={r_value!r} vs S={s_value!r}"
                )
                log.append(message)
                if policy is ConflictPolicy.STRICT:
                    raise UnresolvedConflictError(message)
                if policy is ConflictPolicy.PREFER_R:
                    values[bare] = r_value
                elif policy is ConflictPolicy.PREFER_S:
                    values[bare] = s_value
                else:  # NULL_OUT: agree to disagree
                    values[bare] = NULL
        resolved.append(Row(values))
    return resolved, log

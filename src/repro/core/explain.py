"""Explaining matches: the provenance of every derived value.

Soundness is an argument, and arguments should be inspectable: for any
matched pair, :func:`explain_match` reconstructs which stored values and
which ILFD firings (in order, including chains like the paper's I7→I8)
produced the extended-key values the match rests on, and renders the
whole justification as text.  The DBA reviewing a dismissal list — the
paper's motivating scenario — gets the *reason* each record pair was
linked, not just the link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Tuple

from repro.core.errors import CoreError
from repro.core.identifier import EntityIdentifier
from repro.core.matching_table import KeyValues
from repro.ilfd.derivation import DerivationResult
from repro.relational.nulls import is_null
from repro.relational.row import Row


@dataclass(frozen=True)
class ValueProvenance:
    """Where one extended-key value of one tuple came from."""

    attribute: str
    value: Any
    stored: bool
    fired: Tuple[str, ...]  # ILFD names, in firing order

    def render(self) -> str:
        if self.stored:
            return f"{self.attribute} = {self.value!r} (stored)"
        chain = " then ".join(self.fired) if self.fired else "?"
        return f"{self.attribute} = {self.value!r} (derived via {chain})"


@dataclass(frozen=True)
class MatchExplanation:
    """The full justification of one matched pair."""

    r_key: KeyValues
    s_key: KeyValues
    extended_key: Tuple[str, ...]
    r_provenance: Tuple[ValueProvenance, ...]
    s_provenance: Tuple[ValueProvenance, ...]

    def render(self) -> str:
        lines: List[str] = [
            f"match R{dict(self.r_key)!r} ↔ S{dict(self.s_key)!r}",
            f"  extended key: {{{', '.join(self.extended_key)}}}",
            "  R tuple:",
        ]
        lines.extend(f"    {p.render()}" for p in self.r_provenance)
        lines.append("  S tuple:")
        lines.extend(f"    {p.render()}" for p in self.s_provenance)
        lines.append(
            "  ⇒ all extended-key values non-NULL and equal "
            "(extended-key equivalence, Section 4.1)"
        )
        return "\n".join(lines)


def _provenance_for(
    identifier: EntityIdentifier, raw_row: Row
) -> Tuple[ValueProvenance, ...]:
    targets = list(identifier.extended_key.attributes)
    engine = identifier._engine  # noqa: SLF001 - explanation needs the engine
    result: DerivationResult = engine.extend_row(raw_row, targets)
    out: List[ValueProvenance] = []
    for attribute in targets:
        value = result.row[attribute]
        stored = attribute in raw_row and not is_null(raw_row[attribute])
        if stored:
            out.append(ValueProvenance(attribute, value, True, ()))
            continue
        fired = tuple(
            ilfd.name or repr(ilfd)
            for ilfd in result.fired
            if attribute in ilfd.consequent_attributes
            or any(
                cond.attribute == attribute for cond in ilfd.consequent
            )
        )
        # include the chain: ILFDs whose consequents fed the final firing
        chain = tuple(ilfd.name or repr(ilfd) for ilfd in result.fired)
        out.append(
            ValueProvenance(
                attribute,
                value,
                False,
                fired if fired else chain,
            )
        )
    return tuple(out)


def explain_match(
    identifier: EntityIdentifier,
    r_key: Mapping[str, Any] | KeyValues,
    s_key: Mapping[str, Any] | KeyValues,
) -> MatchExplanation:
    """Explain why the pair identified by the two keys matched.

    Raises :class:`~repro.core.errors.CoreError` when the pair is not in
    the matching table (there is nothing to explain — and claiming a
    justification for a non-match would itself be unsound).
    """
    if isinstance(r_key, Mapping):
        r_key = tuple(sorted(r_key.items()))
    if isinstance(s_key, Mapping):
        s_key = tuple(sorted(s_key.items()))
    matching = identifier.matching_table()
    if not matching.contains_pair(r_key, s_key):
        raise CoreError(
            f"pair R{dict(r_key)!r} / S{dict(s_key)!r} is not in the "
            "matching table"
        )
    r_raw = identifier.unified_r.lookup(dict(r_key))
    s_raw = identifier.unified_s.lookup(dict(s_key))
    if r_raw is None or s_raw is None:  # pragma: no cover - table implies rows
        raise CoreError("matched tuples missing from the sources")
    return MatchExplanation(
        r_key=r_key,
        s_key=s_key,
        extended_key=tuple(identifier.extended_key.attributes),
        r_provenance=_provenance_for(identifier, r_raw),
        s_provenance=_provenance_for(identifier, s_raw),
    )

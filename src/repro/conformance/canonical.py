"""Canonical forms and fingerprints of matching tables.

Two engine configurations "compute the same tables" exactly when their
canonicalised MT/NMT agree *bit for bit*.  The canonical form of a table
is the sorted tuple of its pairs, each key rendered through the store's
deterministic JSON codec (:func:`repro.store.codec.encode_key` — the
same text the SQLite backend uses as primary keys, so canonical equality
here is literally storage-level equality).  Fingerprints are SHA-256 over
that text, newline-joined — stable across processes, Python versions,
and platforms, and small enough to commit as a golden corpus.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.matching_table import KeyValues, _PairTable
from repro.store.codec import encode_key

__all__ = [
    "CanonicalPair",
    "CanonicalTables",
    "canonical_pairs",
    "canonical_table",
    "canonicalise",
    "fingerprint_pairs",
    "diff_pairs",
]

CanonicalPair = Tuple[str, str]
"""One pair as (encoded R key, encoded S key) JSON text."""

Pair = Tuple[KeyValues, KeyValues]


def canonical_pairs(pairs: Iterable[Pair]) -> Tuple[CanonicalPair, ...]:
    """Sorted, codec-encoded rendering of a set of (R key, S key) pairs."""
    return tuple(
        sorted((encode_key(r_key), encode_key(s_key)) for r_key, s_key in pairs)
    )


def canonical_table(table: _PairTable) -> Tuple[CanonicalPair, ...]:
    """Canonical form of a matching or negative matching table."""
    return canonical_pairs(table.pairs())


def fingerprint_pairs(pairs: Iterable[CanonicalPair]) -> str:
    """SHA-256 hex digest of canonical pairs (order-insensitive input)."""
    text = "\n".join(f"{r}\t{s}" for r, s in sorted(pairs))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def diff_pairs(
    a: Iterable[CanonicalPair], b: Iterable[CanonicalPair]
) -> Dict[str, List[CanonicalPair]]:
    """Symmetric difference of two canonical pair sets.

    Returns ``{"only_a": [...], "only_b": [...]}`` sorted — the payload a
    differential mismatch report prints.
    """
    set_a, set_b = set(a), set(b)
    return {
        "only_a": sorted(set_a - set_b),
        "only_b": sorted(set_b - set_a),
    }


@dataclass(frozen=True)
class CanonicalTables:
    """Canonicalised (MT, NMT) of one identification run."""

    mt: Tuple[CanonicalPair, ...]
    nmt: Tuple[CanonicalPair, ...]

    @property
    def mt_fingerprint(self) -> str:
        """SHA-256 of the canonical matching table."""
        return fingerprint_pairs(self.mt)

    @property
    def nmt_fingerprint(self) -> str:
        """SHA-256 of the canonical negative matching table."""
        return fingerprint_pairs(self.nmt)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CanonicalTables):
            return NotImplemented
        return self.mt == other.mt and self.nmt == other.nmt

    def __hash__(self) -> int:
        return hash((self.mt, self.nmt))


def canonicalise(matching: _PairTable, negative: _PairTable) -> CanonicalTables:
    """Canonicalise one run's (MT, NMT) pair of tables."""
    return CanonicalTables(
        mt=canonical_table(matching), nmt=canonical_table(negative)
    )

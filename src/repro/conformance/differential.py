"""Differential harness: one workload through the configuration matrix.

Four infrastructure PRs multiplied the ways one identification run can
be executed — blocker × executor backend × store backend × cold-run vs
checkpoint-resume × fault-free vs seeded-fault schedule, plus the
Appendix Prolog prototype.  The paper's contract is indifferent to all
of it: every configuration must compute the *same* MT_RS/NMT_RS.  This
module makes that executable:

- :class:`ConfigCell` names one engine configuration;
- :func:`run_cell` executes a workload through it and canonicalises the
  resulting tables (:mod:`repro.conformance.canonical`);
- :func:`run_matrix` runs every cell and compares against the first
  **strict** cell bit-for-bit.  *Strict* cells (exhaustive candidate
  generation) must agree on both tables; *pruning* cells (hash / ilfd /
  snm blockers) must agree on MT and produce an NMT that is a subset of
  the baseline's — exactly the documented trade-off of electing a
  pruning blocker;
- on mismatch, the cells' derivation journals are diffed
  (:func:`diff_journals`) so the report names the rule firings that
  diverged, not just the rows;
- :func:`compare_with_prototype` replays paper-scale workloads through
  the Appendix Prolog program and compares its matching table with the
  native baseline.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.blocking import make_blocker
from repro.blocking.executor import ParallelPairExecutor
from repro.conformance.canonical import (
    CanonicalPair,
    CanonicalTables,
    canonical_pairs,
    canonicalise,
    diff_pairs,
)
from repro.conformance.errors import ConformanceError
from repro.core.identifier import EntityIdentifier
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.store.base import MatchStore
from repro.store.codec import encode_key
from repro.store.journal import KIND_CHECKPOINT
from repro.store.memory import MemoryStore
from repro.store.sqlite import SqliteStore
from repro.workloads.generator import Workload

__all__ = [
    "ConfigCell",
    "CellOutcome",
    "CellMismatch",
    "MatrixReport",
    "strict_matrix",
    "pruning_cells",
    "full_matrix",
    "run_cell",
    "run_matrix",
    "diff_journals",
    "compare_with_prototype",
    "PROLOG_PAIR_LIMIT",
]

PROLOG_PAIR_LIMIT = 1_000
"""Largest |R|·|S| the Prolog prototype cell is asked to solve."""


@dataclass(frozen=True)
class ConfigCell:
    """One engine configuration of the differential matrix.

    Attributes
    ----------
    name:
        Stable cell id, e.g. ``cross-thread2-sqlite``.
    blocker:
        ``None`` for the legacy exact paths, else a
        :data:`~repro.blocking.BLOCKERS` key.
    backend / workers:
        Pair-executor backend (``serial`` / ``thread`` / ``process``).
    store:
        ``memory`` or ``sqlite``.
    resume:
        When true, the run goes through an incremental session that is
        checkpointed to SQLite, resumed in a fresh identifier (journal
        verified), and only then identified — exercising the durable
        round trip end to end.
    serving:
        When true, the store is grown **tuple by tuple through the
        serving API**: a knowledge-only checkpoint is written, every R
        and S row is ingested via
        :meth:`~repro.serving.MatchLookupService.ingest`
        (search-before-insert), and the resulting store is resumed
        (journal verified) and identified — proving API ingestion is
        bit-identical to a cold batch run.
    faults:
        Optional :meth:`FaultPlan.parse` spec injected into the
        executor and store, with enough retry budget to recover.
    chaos:
        When true (implies ``serving``), the serving-API growth runs
        under a seeded fault schedule at the *serving* sites
        (``serving.request`` / ``serving.invalidate`` /
        ``store.commit``), including a mid-request kill that forces a
        service restart on the same store, with client-side retries —
        and must still end bit-identical to the fault-free baseline.
    entities:
        When true, the workload is additionally resolved N-way (R, S,
        plus a deterministic third source sampled from R) through
        :class:`~repro.entities.IdentityGraph`: the graph's clusters
        must be bit-identical to
        :class:`~repro.core.multiway.MultiwayIdentifier`'s, every
        pairwise projection must equal a fresh
        :class:`EntityIdentifier` run, and the persisted entity build
        must reload, verify, rebuild to the same fingerprint, and
        answer ``/resolve`` with the golden record.
    strict:
        Strict cells must match the baseline on MT **and** NMT;
        non-strict (pruning-blocker) cells on MT only, with NMT ⊆
        baseline NMT.
    """

    name: str
    blocker: Optional[str] = None
    backend: str = "serial"
    workers: int = 1
    store: str = "memory"
    resume: bool = False
    serving: bool = False
    faults: Optional[str] = None
    entities: bool = False
    chaos: bool = False
    strict: bool = True


JournalSummary = Tuple[str, str, str, str]
"""(kind, rule, encoded R key, encoded S key) — order- and time-free."""


@dataclass(frozen=True)
class CellOutcome:
    """The canonicalised result of one cell."""

    cell: ConfigCell
    tables: CanonicalTables
    sound: bool
    journal: Tuple[JournalSummary, ...]
    resume_consistent: bool = True

    @property
    def name(self) -> str:
        """The cell's id."""
        return self.cell.name


@dataclass(frozen=True)
class CellMismatch:
    """One cell disagreeing with the baseline, with diffs attached."""

    baseline: str
    cell: str
    mt_diff: Dict[str, List[CanonicalPair]]
    nmt_diff: Dict[str, List[CanonicalPair]]
    journal_diff: Dict[str, List[JournalSummary]]

    def summary(self) -> str:
        """One line naming the divergence."""
        parts = []
        if self.mt_diff["only_a"] or self.mt_diff["only_b"]:
            parts.append(
                f"MT differs (+{len(self.mt_diff['only_b'])} "
                f"-{len(self.mt_diff['only_a'])})"
            )
        if self.nmt_diff["only_a"] or self.nmt_diff["only_b"]:
            parts.append(
                f"NMT differs (+{len(self.nmt_diff['only_b'])} "
                f"-{len(self.nmt_diff['only_a'])})"
            )
        if self.journal_diff["only_a"] or self.journal_diff["only_b"]:
            parts.append(
                f"journal differs (+{len(self.journal_diff['only_b'])} "
                f"-{len(self.journal_diff['only_a'])})"
            )
        detail = "; ".join(parts) or "internal inconsistency"
        return f"{self.cell} vs {self.baseline}: {detail}"


@dataclass(frozen=True)
class MatrixReport:
    """The verdict of one differential-matrix run."""

    workload: str
    outcomes: Tuple[CellOutcome, ...]
    mismatches: Tuple[CellMismatch, ...]
    prototype_agrees: Optional[bool] = None

    @property
    def is_green(self) -> bool:
        """True iff every cell agreed (and the prototype, when run)."""
        return (
            not self.mismatches
            and all(outcome.resume_consistent for outcome in self.outcomes)
            and self.prototype_agrees is not False
        )

    @property
    def baseline(self) -> CellOutcome:
        """The reference cell every other cell is compared against."""
        return self.outcomes[0]

    def summary(self) -> str:
        """A short multi-line account of the run."""
        lines = [
            f"differential matrix [{self.workload}]: "
            f"{len(self.outcomes)} cell(s), "
            f"{len(self.mismatches)} mismatch(es)"
        ]
        lines.append(
            f"  baseline {self.baseline.name}: "
            f"MT {self.baseline.tables.mt_fingerprint[:12]} "
            f"({len(self.baseline.tables.mt)} pairs), "
            f"NMT {self.baseline.tables.nmt_fingerprint[:12]} "
            f"({len(self.baseline.tables.nmt)} pairs)"
        )
        for mismatch in self.mismatches:
            lines.append("  " + mismatch.summary())
        if self.prototype_agrees is not None:
            lines.append(
                "  prolog prototype: "
                + ("agrees" if self.prototype_agrees else "DISAGREES")
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------
def strict_matrix() -> List[ConfigCell]:
    """The 16 strict cells: exhaustive candidates, bit-identical tables.

    Covers every executor backend, both store backends, cold,
    checkpoint-resume, serving-API-ingested, and N-way identity-graph
    runs, three seeded fault schedules (executor error, worker crash,
    store-commit failure) that recovery must make invisible, and a
    serving **chaos** cell: API growth under seeded serving-site faults
    (request errors, commit failures, a failed cache invalidation, and
    a mid-request kill forcing a restart) with client retries, which
    must still land on the baseline tables bit-for-bit.
    """
    return [
        ConfigCell("legacy-serial-memory"),
        ConfigCell("cross-serial-memory", blocker="cross"),
        ConfigCell(
            "cross-thread2-memory", blocker="cross", backend="thread", workers=2
        ),
        ConfigCell(
            "cross-process2-memory",
            blocker="cross",
            backend="process",
            workers=2,
        ),
        ConfigCell("legacy-serial-sqlite", store="sqlite"),
        ConfigCell("cross-serial-sqlite", blocker="cross", store="sqlite"),
        ConfigCell(
            "cross-thread2-sqlite",
            blocker="cross",
            backend="thread",
            workers=2,
            store="sqlite",
        ),
        ConfigCell("legacy-resume-memory", resume=True),
        ConfigCell("cross-resume-sqlite", blocker="cross", resume=True,
                   store="sqlite"),
        ConfigCell(
            "cross-serial-memory-faulted",
            blocker="cross",
            faults="executor.batch:error@0",
        ),
        ConfigCell(
            "cross-process2-memory-crash",
            blocker="cross",
            backend="process",
            workers=2,
            faults="executor.batch:crash@0",
        ),
        ConfigCell(
            "cross-serial-sqlite-commitfault",
            blocker="cross",
            store="sqlite",
            faults="store.commit:error@0",
        ),
        ConfigCell(
            "cross-thread2-sqlite-faulted",
            blocker="cross",
            backend="thread",
            workers=2,
            store="sqlite",
            faults="executor.batch:error@0..1",
        ),
        ConfigCell("serving-ingest-sqlite", store="sqlite", serving=True),
        ConfigCell("entities-graph", store="sqlite", entities=True),
        ConfigCell(
            "serving-chaos-sqlite",
            store="sqlite",
            serving=True,
            chaos=True,
            faults=(
                "serving.request:error@3;"
                "serving.invalidate:error@1;"
                "store.commit:error@7;"
                "serving.request:kill@11"
            ),
        ),
    ]


def pruning_cells() -> List[ConfigCell]:
    """The MT-only cells: recall-equivalent pruning blockers."""
    return [
        ConfigCell("hash-serial-memory", blocker="hash", strict=False),
        ConfigCell("ilfd-serial-memory", blocker="ilfd", strict=False),
        ConfigCell("snm-serial-memory", blocker="snm", strict=False),
        ConfigCell(
            "hash-thread2-sqlite",
            blocker="hash",
            backend="thread",
            workers=2,
            store="sqlite",
            strict=False,
        ),
    ]


def full_matrix() -> List[ConfigCell]:
    """Strict cells plus the pruning-blocker cells."""
    return strict_matrix() + pruning_cells()


# ----------------------------------------------------------------------
# Cell execution
# ----------------------------------------------------------------------
def _journal_summary(store: MatchStore) -> Tuple[JournalSummary, ...]:
    """Time-, seq-, and checkpoint-free journal rendering for diffing."""
    out: List[JournalSummary] = []
    for entry in store.journal_entries():
        if entry.kind == KIND_CHECKPOINT:
            continue
        out.append(
            (
                entry.kind,
                entry.rule,
                encode_key(entry.r_key) if entry.r_key is not None else "",
                encode_key(entry.s_key) if entry.s_key is not None else "",
            )
        )
    return tuple(sorted(out))


def diff_journals(
    a: Sequence[JournalSummary], b: Sequence[JournalSummary]
) -> Dict[str, List[JournalSummary]]:
    """Symmetric difference of two journal summaries.

    Journals are diagnostic: they are only compared when the *tables*
    mismatched, to name the rule firings behind the divergence.
    """
    set_a, set_b = set(a), set(b)
    return {
        "only_a": sorted(set_a - set_b),
        "only_b": sorted(set_b - set_a),
    }


def _cell_resilience(
    cell: ConfigCell,
) -> Tuple[Optional[RetryPolicy], Optional[FaultInjector]]:
    if not cell.faults:
        return None, None
    plan = FaultPlan.parse(cell.faults)
    # Enough budget to outlast any bounded schedule the cell declares.
    return RetryPolicy.fast(6), FaultInjector(plan)


def _make_store(cell: ConfigCell, workdir: str, retry, injector) -> MatchStore:
    if cell.store == "sqlite":
        path = os.path.join(workdir, f"{cell.name}.sqlite")
        return SqliteStore(path, retry_policy=retry, fault_injector=injector)
    if cell.store == "memory":
        if injector is not None:
            return MemoryStore(fault_injector=injector)
        return MemoryStore()
    raise ConformanceError(f"unknown store kind {cell.store!r}")


def _make_executor(cell: ConfigCell, retry, injector) -> Optional[ParallelPairExecutor]:
    if cell.backend == "serial" and cell.workers == 1 and retry is None:
        return None
    return ParallelPairExecutor(
        cell.workers,
        backend=cell.backend if cell.workers > 1 else "serial",
        retry_policy=retry,
        fault_injector=injector,
    )


def _identify(
    cell: ConfigCell,
    r,
    s,
    extended_key,
    ilfds,
    workdir: str,
) -> Tuple[CanonicalTables, bool, Tuple[JournalSummary, ...]]:
    retry, injector = _cell_resilience(cell)
    store = _make_store(cell, workdir, retry, injector)
    try:
        identifier = EntityIdentifier(
            r,
            s,
            list(extended_key),
            ilfds=list(ilfds),
            blocker=make_blocker(cell.blocker) if cell.blocker else None,
            executor=_make_executor(cell, retry, injector),
            store=store,
        )
        result = identifier.run()
        return (
            canonicalise(result.matching, result.negative),
            result.report.is_sound,
            _journal_summary(store),
        )
    finally:
        store.close()


def run_cell(
    workload: Workload, cell: ConfigCell, *, workdir: Optional[str] = None
) -> CellOutcome:
    """Execute *workload* through one configuration cell.

    Cold cells run :class:`EntityIdentifier` directly.  Resume cells
    first load an incremental session, checkpoint it to SQLite, resume
    it in a fresh identifier (replaying and verifying the journal), and
    identify from the resumed sources — additionally cross-checking that
    the resumed session's own matching pairs equal the recomputed MT.
    """
    owned = workdir is None
    if owned:
        workdir = tempfile.mkdtemp(prefix="repro-conform-")
    try:
        if cell.chaos:
            return _run_chaos_cell(workload, cell, workdir)
        if cell.serving:
            return _run_serving_cell(workload, cell, workdir)
        if cell.entities:
            return _run_entities_cell(workload, cell, workdir)
        if not cell.resume:
            tables, sound, journal = _identify(
                cell,
                workload.r,
                workload.s,
                workload.extended_key,
                workload.ilfds,
                workdir,
            )
            return CellOutcome(
                cell=cell, tables=tables, sound=sound, journal=journal
            )

        from repro.federation.incremental import IncrementalIdentifier

        session = IncrementalIdentifier(
            workload.r.schema,
            workload.s.schema,
            list(workload.extended_key),
            ilfds=list(workload.ilfds),
        )
        session.load(workload.r, workload.s)
        path = os.path.join(workdir, f"{cell.name}.ckpt.sqlite")
        session.checkpoint(path)
        session.store.close()
        resumed = IncrementalIdentifier.resume(path, verify=True)
        try:
            incremental_pairs = {
                entry.pair for entry in resumed.matching_table()
            }
            r, s = resumed.relations()
            ilfds = list(resumed.ilfds)
            extended_key = list(resumed.extended_key.attributes)
        finally:
            resumed.store.close()
        tables, sound, journal = _identify(
            cell, r, s, extended_key, ilfds, workdir
        )
        resumed_canonical = canonical_pairs(incremental_pairs)
        return CellOutcome(
            cell=cell,
            tables=tables,
            sound=sound,
            journal=journal,
            resume_consistent=(resumed_canonical == tables.mt),
        )
    finally:
        if owned:
            shutil.rmtree(workdir, ignore_errors=True)


def _run_serving_cell(
    workload: Workload, cell: ConfigCell, workdir: str
) -> CellOutcome:
    """Grow the store tuple-by-tuple through the serving API, then verify.

    The search-before-insert equivalence cell: a knowledge-only
    checkpoint is populated exclusively via
    :meth:`~repro.serving.MatchLookupService.ingest`, resumed with
    journal verification, and identified cold.  ``resume_consistent``
    asserts the pairs the *API* recorded are bit-identical to the
    recomputed matching table — the acceptance criterion that a store
    grown through ``repro serve`` is indistinguishable from a batch run.
    """
    from repro.federation.incremental import IncrementalIdentifier
    from repro.serving import MatchLookupService

    session = IncrementalIdentifier(
        workload.r.schema,
        workload.s.schema,
        list(workload.extended_key),
        ilfds=list(workload.ilfds),
    )
    path = os.path.join(workdir, f"{cell.name}.ckpt.sqlite")
    session.checkpoint(path)  # knowledge only — no rows loaded yet
    session.store.close()
    with MatchLookupService(path, workers=2, cache_size=64) as service:
        for row in workload.r:
            service.ingest("r", dict(row))
        for row in workload.s:
            service.ingest("s", dict(row))
    resumed = IncrementalIdentifier.resume(path, verify=True)
    try:
        api_pairs = {entry.pair for entry in resumed.matching_table()}
        r, s = resumed.relations()
        ilfds = list(resumed.ilfds)
        extended_key = list(resumed.extended_key.attributes)
    finally:
        resumed.store.close()
    tables, sound, journal = _identify(cell, r, s, extended_key, ilfds, workdir)
    return CellOutcome(
        cell=cell,
        tables=tables,
        sound=sound,
        journal=journal,
        resume_consistent=(canonical_pairs(api_pairs) == tables.mt),
    )


def _run_chaos_cell(
    workload: Workload, cell: ConfigCell, workdir: str
) -> CellOutcome:
    """Serving-API growth under a seeded fault schedule, then verify.

    The in-process chaos cell: the same knowledge-only-checkpoint →
    ingest-everything flow as :func:`_run_serving_cell`, but with the
    cell's :class:`FaultPlan` firing at the serving sites and a
    retrying client.  A scheduled ``kill`` (non-lethal here — the
    subprocess harness in ``tests/chaos/`` delivers the real SIGKILL)
    forces the service to be torn down and reopened on the same store
    mid-traffic.  The grown store must resume with journal verification
    and agree bit-identically with the recomputed baseline — injected
    faults may cost retries, never correctness.
    """
    import dataclasses
    import sqlite3

    from repro.federation.incremental import IncrementalIdentifier
    from repro.resilience.errors import InjectedKill, ResilienceError
    from repro.serving import BadRequestError, MatchLookupService, ServingError

    from repro.store.errors import StoreError

    session = IncrementalIdentifier(
        workload.r.schema,
        workload.s.schema,
        list(workload.extended_key),
        ilfds=list(workload.ilfds),
    )
    path = os.path.join(workdir, f"{cell.name}.ckpt.sqlite")
    session.checkpoint(path)  # knowledge only — no rows loaded yet
    session.store.close()

    injector = FaultInjector(FaultPlan.parse(cell.faults or ""), lethal=False)

    def open_service() -> "MatchLookupService":
        return MatchLookupService(
            path, workers=2, cache_size=64, fault_injector=injector
        )

    service = open_service()
    try:
        for side, relation in (("r", workload.r), ("s", workload.s)):
            for row in relation:
                for _attempt in range(8):
                    try:
                        service.ingest(side, dict(row))
                        break
                    except BadRequestError as exc:
                        if "duplicate key" in str(exc):
                            # The faulted attempt had already committed
                            # (e.g. the invalidation fault fires after
                            # the transaction); at-least-once is fine.
                            break
                        raise
                    except InjectedKill:
                        # Mid-request kill: "restart" the server on the
                        # same store and retry, like the harness does.
                        service.close()
                        service = open_service()
                    except (ResilienceError, ServingError, StoreError, sqlite3.Error):
                        pass
                else:
                    raise ConformanceError(
                        f"chaos cell {cell.name}: ingest of one {side} row "
                        "did not recover within its retry budget"
                    )
    finally:
        service.close()

    resumed = IncrementalIdentifier.resume(path, verify=True)
    try:
        api_pairs = {entry.pair for entry in resumed.matching_table()}
        r, s = resumed.relations()
        ilfds = list(resumed.ilfds)
        extended_key = list(resumed.extended_key.attributes)
    finally:
        resumed.store.close()
    # The cold recompute must not inherit the serving fault plan.
    clean = dataclasses.replace(cell, faults=None, chaos=False, serving=False)
    tables, sound, journal = _identify(clean, r, s, extended_key, ilfds, workdir)
    return CellOutcome(
        cell=cell,
        tables=tables,
        sound=sound,
        journal=journal,
        resume_consistent=(canonical_pairs(api_pairs) == tables.mt),
    )


def _run_entities_cell(
    workload: Workload, cell: ConfigCell, workdir: str
) -> CellOutcome:
    """The N-way identity-graph equivalence cell.

    Resolves the workload three ways and cross-checks every layer of
    the ``repro.entities`` subsystem, folding the verdict into
    ``resume_consistent``:

    1. graph clusters ≡ :class:`MultiwayIdentifier` clusters,
       bit-identically (same fingerprint over keys, members, rows);
    2. every pairwise projection of the graph ≡ a fresh
       :class:`EntityIdentifier` run over that source pair;
    3. the SQLite entity build reloads, verifies against its sealed
       fingerprint, and a rebuild produces the identical fingerprint
       (canonical ids are stable across runs);
    4. :meth:`MatchLookupService.resolve` over the built store returns
       the persisted golden entity, with resolution-log provenance.

    The cell's comparable tables/journal come from the graph's (r, s)
    pair run under the cell's own store backend, so the cell also
    participates in the ordinary baseline comparison.
    """
    from repro.core.multiway import MultiwayIdentifier
    from repro.entities import (
        IdentityGraph,
        build_entity_store,
        cluster_fingerprint,
        verify_entity_store,
    )
    from repro.relational.relation import Relation
    from repro.serving import MatchLookupService

    # A deterministic third source: every other R tuple (insertion
    # order), same schema — its members must land in R's clusters.
    third = Relation(
        workload.r.schema,
        [dict(row) for index, row in enumerate(workload.r) if index % 2 == 0],
        name="T",
    )
    sources = {"r": workload.r, "s": workload.s, "t": third}
    extended_key = list(workload.extended_key)
    ilfds = list(workload.ilfds)

    graph = IdentityGraph(sources, extended_key, ilfds=ilfds)
    multiway = MultiwayIdentifier(sources, extended_key, ilfds=ilfds)
    consistent = cluster_fingerprint(graph.clusters()) == cluster_fingerprint(
        multiway.clusters()
    )

    for first, second in graph.pair_names():
        pairwise = EntityIdentifier(
            sources[first], sources[second], extended_key, ilfds=ilfds
        )
        reference = frozenset(
            (entry.r_key, entry.s_key) for entry in pairwise.matching_table()
        )
        if graph.pairwise_pairs(first, second) != reference:
            consistent = False

    path = os.path.join(workdir, f"{cell.name}.entities.sqlite")
    store = SqliteStore(path)
    try:
        built = build_entity_store(graph, store)
    finally:
        store.close()
    reloaded = SqliteStore(path)
    try:
        count, fingerprint = verify_entity_store(reloaded)
        if count != built.entities or fingerprint != built.fingerprint:
            consistent = False
    except ConformanceError:
        raise
    except Exception:
        consistent = False
    finally:
        reloaded.close()
    rebuilt = build_entity_store(
        IdentityGraph(sources, extended_key, ilfds=ilfds), MemoryStore()
    )
    if rebuilt.fingerprint != built.fingerprint:
        consistent = False

    clusters = graph.clusters()
    if clusters:
        source, row = clusters[0].members[0]
        from repro.core.matching_table import key_values

        key = key_values(row, graph.source_key_attributes(source))
        with MatchLookupService(path, workers=1, cache_size=8) as service:
            answer = service.resolve(source, key)
        entity = answer.get("entity")
        if (
            not answer.get("found")
            or entity is None
            or not entity.get("resolution_log")
            or not entity.get("id", "").startswith("ent-")
        ):
            consistent = False

    tables, sound, journal = _identify(
        cell, workload.r, workload.s, extended_key, ilfds, workdir
    )
    return CellOutcome(
        cell=cell,
        tables=tables,
        sound=sound,
        journal=journal,
        resume_consistent=consistent,
    )


# ----------------------------------------------------------------------
# Matrix execution and comparison
# ----------------------------------------------------------------------
def _compare(
    baseline: CellOutcome, outcome: CellOutcome
) -> Optional[CellMismatch]:
    mt_diff = diff_pairs(baseline.tables.mt, outcome.tables.mt)
    if outcome.cell.strict:
        nmt_diff = diff_pairs(baseline.tables.nmt, outcome.tables.nmt)
    else:
        # Pruning cells: NMT must be a subset of the exhaustive NMT —
        # extra entries are a bug, missing ones are the documented
        # trade-off.
        extras = sorted(set(outcome.tables.nmt) - set(baseline.tables.nmt))
        nmt_diff = {"only_a": [], "only_b": extras}
    clean = not (
        mt_diff["only_a"]
        or mt_diff["only_b"]
        or nmt_diff["only_a"]
        or nmt_diff["only_b"]
    )
    if clean and outcome.resume_consistent:
        return None
    return CellMismatch(
        baseline=baseline.name,
        cell=outcome.name,
        mt_diff=mt_diff,
        nmt_diff=nmt_diff,
        journal_diff=diff_journals(baseline.journal, outcome.journal),
    )


def run_matrix(
    workload: Workload,
    cells: Optional[Sequence[ConfigCell]] = None,
    *,
    name: str = "workload",
    include_prototype: bool = False,
    tracer=None,
) -> MatrixReport:
    """Run every cell and compare against the first strict cell.

    The first cell must be strict (it is the baseline).  With
    *include_prototype*, paper-scale workloads (≤
    :data:`PROLOG_PAIR_LIMIT` pairs) are additionally replayed through
    the Appendix Prolog program.
    """
    cells = list(cells) if cells is not None else full_matrix()
    if not cells:
        raise ConformanceError("differential matrix needs at least one cell")
    if not cells[0].strict:
        raise ConformanceError("the first (baseline) cell must be strict")
    workdir = tempfile.mkdtemp(prefix="repro-conform-")
    try:
        outcomes = tuple(
            run_cell(workload, cell, workdir=workdir) for cell in cells
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    baseline = outcomes[0]
    mismatches = tuple(
        mismatch
        for outcome in outcomes[1:]
        if (mismatch := _compare(baseline, outcome)) is not None
    )
    prototype_agrees: Optional[bool] = None
    if include_prototype:
        pair_count = len(workload.r) * len(workload.s)
        if pair_count <= PROLOG_PAIR_LIMIT:
            prototype_agrees = (
                compare_with_prototype(workload) == baseline.tables.mt
            )
    report = MatrixReport(
        workload=name,
        outcomes=outcomes,
        mismatches=mismatches,
        prototype_agrees=prototype_agrees,
    )
    if tracer is not None and tracer.enabled:
        tracer.metrics.inc("conformance.cells", len(outcomes))
        tracer.metrics.inc("conformance.cell_mismatches", len(mismatches))
    return report


# ----------------------------------------------------------------------
# The Prolog prototype cell
# ----------------------------------------------------------------------
def compare_with_prototype(workload: Workload) -> Tuple[CanonicalPair, ...]:
    """The Appendix program's matching table, canonicalised.

    Encodes the workload for the mini-Prolog engine, runs
    ``setup_extkey`` over the workload's extended key, and renders the
    resulting ``matchtable`` solutions in the same canonical pair form
    the native cells produce (all workload values are strings, so the
    atom round trip is exact).
    """
    from repro.prolog.prototype import PrototypeSystem

    system = PrototypeSystem(workload.r, workload.s, workload.ilfds)
    system.setup_extkey(list(workload.extended_key))
    r_key = list(system.r_key)
    s_key = list(system.s_key)
    pairs = set()
    for row in system.matchtable_rows():
        r_values = tuple(
            sorted((attr, row[f"r_{attr}"]) for attr in r_key)
        )
        s_values = tuple(
            sorted((attr, row[f"s_{attr}"]) for attr in s_key)
        )
        pairs.add((r_values, s_values))
    return canonical_pairs(pairs)

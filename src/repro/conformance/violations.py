"""Structured violation reports shared by every conformance oracle.

The paper's Section-3 contract is a conjunction of checkable claims
(soundness, completeness w.r.t. the supplied rules, monotonicity, the
uniqueness and consistency constraints on MT_RS/NMT_RS).  Each oracle in
:mod:`repro.conformance.oracles` evaluates one claim and reports its
counterexamples as :class:`Violation` records — plain data usable from
tests (assert ``report.ok``), from the ``repro conform`` CLI (rendered
or JSON-dumped), and at runtime (a pipeline can audit its own output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.matching_table import KeyValues

__all__ = ["Violation", "OracleReport", "ConformanceReport"]


def _render_key(key: Optional[KeyValues]) -> str:
    if key is None:
        return "-"
    return "{" + ", ".join(f"{a}={v!r}" for a, v in key) + "}"


@dataclass(frozen=True)
class Violation:
    """One counterexample to one Section-3 claim.

    Attributes
    ----------
    oracle:
        The oracle that found it (``soundness``, ``completeness``,
        ``monotonicity``, ``uniqueness``, ``consistency``).
    kind:
        Machine-readable violation class within the oracle, e.g.
        ``underivable-match`` or ``match-retracted``.
    message:
        Human-readable account with the witnesses inline.
    r_key / s_key:
        The offending pair's key values, when the violation is about one
        pair (one side may be ``None`` for one-sided claims).
    """

    oracle: str
    kind: str
    message: str
    r_key: Optional[KeyValues] = None
    s_key: Optional[KeyValues] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (keys as ``attr=value`` text)."""
        return {
            "oracle": self.oracle,
            "kind": self.kind,
            "message": self.message,
            "r_key": _render_key(self.r_key),
            "s_key": _render_key(self.s_key),
        }

    def __str__(self) -> str:
        return (
            f"[{self.oracle}/{self.kind}] {self.message} "
            f"(R{_render_key(self.r_key)} / S{_render_key(self.s_key)})"
        )


@dataclass(frozen=True)
class OracleReport:
    """Outcome of one oracle over one identification result."""

    oracle: str
    checked: int
    violations: Tuple[Violation, ...] = ()

    @property
    def ok(self) -> bool:
        """True iff the claim held on everything checked."""
        return not self.violations

    def summary(self) -> str:
        """One line: verdict, units checked, counterexample count."""
        verdict = "ok" if self.ok else "VIOLATED"
        return (
            f"{self.oracle}: {verdict} "
            f"({self.checked} checked, {len(self.violations)} violation(s))"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering."""
        return {
            "oracle": self.oracle,
            "ok": self.ok,
            "checked": self.checked,
            "violations": [v.to_dict() for v in self.violations],
        }

    def __str__(self) -> str:
        return self.summary()


@dataclass(frozen=True)
class ConformanceReport:
    """All oracle reports for one identification result."""

    reports: Tuple[OracleReport, ...] = ()

    @property
    def ok(self) -> bool:
        """True iff every oracle passed."""
        return all(report.ok for report in self.reports)

    @property
    def violations(self) -> Tuple[Violation, ...]:
        """Every violation, in oracle order."""
        out: List[Violation] = []
        for report in self.reports:
            out.extend(report.violations)
        return tuple(out)

    def report_for(self, oracle: str) -> Optional[OracleReport]:
        """The report of the named oracle, if it ran."""
        for report in self.reports:
            if report.oracle == oracle:
                return report
        return None

    def summary(self) -> str:
        """One line per oracle."""
        return "\n".join(report.summary() for report in self.reports)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering."""
        return {
            "ok": self.ok,
            "reports": [report.to_dict() for report in self.reports],
        }

"""Conformance suite: executable form of the paper's Section-3 contract.

The subsystem has four layers, one per way the contract can be broken:

- :mod:`~repro.conformance.oracles` — standalone checkers for soundness,
  completeness w.r.t. the supplied rules, monotonicity under knowledge
  growth, and the uniqueness/consistency constraints on MT_RS/NMT_RS,
  each returning structured :class:`Violation` reports;
- :mod:`~repro.conformance.differential` — one workload through the full
  configuration matrix (blockers × executors × stores × resume × fault
  schedules, plus the Prolog prototype), asserting bit-identical
  canonical tables and diffing derivation journals on mismatch;
- :mod:`~repro.conformance.metamorphic` — input transformations with
  known output transformations (tuple shuffling, attribute renaming,
  R↔S swap, union split);
- :mod:`~repro.conformance.golden` — frozen workload fingerprints
  committed to the repository, catching unintended semantic drift.

``repro conform`` drives all four from the command line.
"""

from repro.conformance.canonical import (
    CanonicalPair,
    CanonicalTables,
    canonical_pairs,
    canonical_table,
    canonicalise,
    diff_pairs,
    fingerprint_pairs,
)
from repro.conformance.differential import (
    CellMismatch,
    CellOutcome,
    ConfigCell,
    MatrixReport,
    compare_with_prototype,
    diff_journals,
    full_matrix,
    pruning_cells,
    run_cell,
    run_matrix,
    strict_matrix,
)
from repro.conformance.errors import ConformanceError, GoldenCorpusError
from repro.conformance.golden import (
    GOLDEN_WORKLOADS,
    GoldenRecord,
    check_golden,
    golden_record,
    load_golden,
    update_golden,
    write_golden,
)
from repro.conformance.metamorphic import (
    MetamorphicCase,
    MetamorphicOutcome,
    MetamorphicReport,
    default_cases,
    rename_attributes,
    run_metamorphic,
    shuffle_tuples,
    swap_sides,
    union_split,
)
from repro.conformance.oracles import (
    Knowledge,
    TableSnapshot,
    check_completeness,
    check_consistency,
    check_monotonicity,
    check_soundness,
    check_uniqueness,
    monotonicity_snapshots,
    run_oracles,
)
from repro.conformance.violations import (
    ConformanceReport,
    OracleReport,
    Violation,
)
from repro.observability.metrics import register_metric

for _name, _description in (
    ("conformance.cells", "differential-matrix configuration cells executed"),
    ("conformance.cell_mismatches", "cells disagreeing with the baseline tables"),
    ("conformance.oracle_checks", "units examined by the Section-3 oracles"),
    ("conformance.oracle_violations", "oracle counterexamples reported"),
    ("conformance.metamorphic_cases", "metamorphic relations executed"),
    ("conformance.metamorphic_failures", "metamorphic relations that did not hold"),
    ("conformance.golden_drift", "golden-corpus workloads whose fingerprints drifted"),
):
    register_metric(_name, _description)
del _name, _description

__all__ = [
    # canonical
    "CanonicalPair",
    "CanonicalTables",
    "canonical_pairs",
    "canonical_table",
    "canonicalise",
    "diff_pairs",
    "fingerprint_pairs",
    # differential
    "CellMismatch",
    "CellOutcome",
    "ConfigCell",
    "MatrixReport",
    "compare_with_prototype",
    "diff_journals",
    "full_matrix",
    "pruning_cells",
    "run_cell",
    "run_matrix",
    "strict_matrix",
    # errors
    "ConformanceError",
    "GoldenCorpusError",
    # golden
    "GOLDEN_WORKLOADS",
    "GoldenRecord",
    "check_golden",
    "golden_record",
    "load_golden",
    "update_golden",
    "write_golden",
    # metamorphic
    "MetamorphicCase",
    "MetamorphicOutcome",
    "MetamorphicReport",
    "default_cases",
    "rename_attributes",
    "run_metamorphic",
    "shuffle_tuples",
    "swap_sides",
    "union_split",
    # oracles
    "Knowledge",
    "TableSnapshot",
    "check_completeness",
    "check_consistency",
    "check_monotonicity",
    "check_soundness",
    "check_uniqueness",
    "monotonicity_snapshots",
    "run_oracles",
    # violations
    "ConformanceReport",
    "OracleReport",
    "Violation",
]

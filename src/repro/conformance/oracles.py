"""Executable oracles for the paper's Section-3 propositions.

Each oracle re-derives one claim about an identification result from
first principles — one layer *below* the pipeline, straight from the
semantic knowledge (extended key, ILFDs, DBA rules) — so a bug anywhere
in the pipeline stack (blocking, parallel execution, persistence,
recovery) cannot also hide in the checker:

- **soundness** (Section 3.2): every entry of MT_RS is derivable from
  the knowledge — some identity rule fires on the pair's extended
  tuples, or the pair was explicitly asserted by the user;
- **completeness w.r.t. the rules** (Section 3.2): every pair on which
  an identity (distinctness) rule fires appears in MT (NMT) — nothing
  the knowledge decides is left undetermined or dropped;
- **uniqueness** (Section 3.2's constraint on MT_RS): no tuple of
  either relation is matched to more than one tuple of the other;
- **consistency** (the MT/NMT constraint): no pair appears in both
  tables;
- **monotonicity** (Section 3.3, Figure 3): under knowledge growth the
  matching and non-matching sets only expand.

Every oracle returns an :class:`~repro.conformance.violations.OracleReport`
with witness-carrying :class:`~repro.conformance.violations.Violation`
records instead of raising, so they are equally usable as test asserts
and as runtime audits.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    AbstractSet,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.extended_key import ExtendedKey
from repro.core.matching_table import (
    KeyValues,
    MatchingTable,
    NegativeMatchingTable,
    key_values,
)
from repro.ilfd.derivation import DerivationEngine, DerivationPolicy
from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.relational.relation import Relation
from repro.rules.conversion import ilfd_to_distinctness_rules
from repro.rules.distinctness import DistinctnessRule
from repro.rules.engine import RuleEngine
from repro.rules.identity import IdentityRule
from repro.conformance.violations import (
    ConformanceReport,
    OracleReport,
    Violation,
)

__all__ = [
    "Knowledge",
    "TableSnapshot",
    "check_soundness",
    "check_completeness",
    "check_uniqueness",
    "check_consistency",
    "check_monotonicity",
    "monotonicity_snapshots",
    "run_oracles",
]

Pair = Tuple[KeyValues, KeyValues]


@dataclass(frozen=True)
class Knowledge:
    """The semantic knowledge one identification run is judged against.

    This is the oracle-side mirror of the :class:`EntityIdentifier`
    constructor arguments: what the DBA supplied, nothing the pipeline
    computed.  Oracles rebuild their own derivation and rule engines
    from it rather than trusting the pipeline's.
    """

    extended_key: Tuple[str, ...]
    ilfds: ILFDSet = field(default_factory=ILFDSet)
    identity_rules: Tuple[IdentityRule, ...] = ()
    distinctness_rules: Tuple[DistinctnessRule, ...] = ()
    derive_ilfd_distinctness: bool = True
    policy: DerivationPolicy = DerivationPolicy.FIRST_MATCH

    @classmethod
    def from_workload(cls, workload, **overrides) -> "Knowledge":
        """Knowledge of a :class:`~repro.workloads.Workload`."""
        base = cls(
            extended_key=tuple(workload.extended_key),
            ilfds=workload.ilfds
            if isinstance(workload.ilfds, ILFDSet)
            else ILFDSet(workload.ilfds),
        )
        return replace(base, **overrides) if overrides else base

    def key(self) -> ExtendedKey:
        """The extended key as the core's :class:`ExtendedKey`."""
        return ExtendedKey(list(self.extended_key))

    def with_ilfds(self, ilfds: Iterable[ILFD]) -> "Knowledge":
        """The same knowledge with a different ILFD set."""
        return replace(self, ilfds=ILFDSet(ilfds))

    def derivation_engine(self) -> DerivationEngine:
        """A fresh derivation engine over this knowledge."""
        return DerivationEngine(self.ilfds, policy=self.policy)

    def rule_engine(self) -> RuleEngine:
        """A fresh rule engine: K_Ext rule, DBA rules, ILFD duals."""
        derived: List[DistinctnessRule] = []
        if self.derive_ilfd_distinctness:
            for ilfd in self.ilfds:
                derived.extend(ilfd_to_distinctness_rules(ilfd))
        return RuleEngine(
            [self.key().identity_rule(), *self.identity_rules],
            list(self.distinctness_rules) + derived,
        )

    def extend(self, r: Relation, s: Relation) -> Tuple[Relation, Relation]:
        """R' and S': both sources chased to the extended key."""
        engine = self.derivation_engine()
        targets = list(self.extended_key)
        return (
            engine.extend_relation(r, targets),
            engine.extend_relation(s, targets),
        )


def _key_attrs(relation: Relation) -> Tuple[str, ...]:
    primary = relation.schema.primary_key
    return tuple(n for n in relation.schema.names if n in primary)


# ----------------------------------------------------------------------
# Soundness
# ----------------------------------------------------------------------
def check_soundness(
    matching: MatchingTable,
    knowledge: Knowledge,
    *,
    asserted: AbstractSet[Pair] = frozenset(),
) -> OracleReport:
    """Every asserted match is rule-derivable from the knowledge.

    For each MT entry, an independently built rule engine must fire some
    identity rule on the entry's (extended) tuple pair — the paper's
    notion of a match being *established* by the semantic knowledge
    rather than guessed.  Pairs in *asserted* (the "knowledgeable user"
    channel) are exempt.
    """
    engine = knowledge.rule_engine()
    violations: List[Violation] = []
    for entry in matching:
        if entry.pair in asserted:
            continue
        fired = engine.firing_identity_rules(entry.r_row, entry.s_row)
        if not fired:
            violations.append(
                Violation(
                    oracle="soundness",
                    kind="underivable-match",
                    message=(
                        "matching-table entry is not derivable: no "
                        "identity rule fires on the pair"
                    ),
                    r_key=entry.r_key,
                    s_key=entry.s_key,
                )
            )
    return OracleReport(
        oracle="soundness",
        checked=len(matching),
        violations=tuple(violations),
    )


# ----------------------------------------------------------------------
# Completeness w.r.t. the rules
# ----------------------------------------------------------------------
def check_completeness(
    matching: MatchingTable,
    negative: NegativeMatchingTable,
    extended_r: Relation,
    extended_s: Relation,
    knowledge: Knowledge,
) -> OracleReport:
    """Everything the rules decide is recorded in the right table.

    Exhaustively classifies every (R', S') pair with an independent rule
    engine: a firing identity rule must have its pair in MT, a firing
    distinctness rule must have its pair in NMT, and a pair firing both
    witnesses an inconsistent rule set (reported, not raised).  This is
    completeness *relative to the supplied knowledge* — Section 3.2's
    achievable half; pairs where nothing fires are legitimately
    undetermined.
    """
    engine = knowledge.rule_engine()
    r_attrs = _key_attrs(extended_r)
    s_attrs = _key_attrs(extended_s)
    violations: List[Violation] = []
    checked = 0
    for r_row in extended_r:
        r_key = key_values(r_row, r_attrs)
        for s_row in extended_s:
            checked += 1
            s_key = key_values(s_row, s_attrs)
            fired_identity = engine.firing_identity_rules(r_row, s_row)
            fired_distinct = engine.firing_distinctness_rules(r_row, s_row)
            if fired_identity and fired_distinct:
                violations.append(
                    Violation(
                        oracle="completeness",
                        kind="rule-conflict",
                        message=(
                            "identity and distinctness rules both fire "
                            f"({[r.name for r in fired_identity]} vs "
                            f"{[r.name for r in fired_distinct]})"
                        ),
                        r_key=r_key,
                        s_key=s_key,
                    )
                )
                continue
            if fired_identity and not matching.contains_pair(r_key, s_key):
                violations.append(
                    Violation(
                        oracle="completeness",
                        kind="missing-match",
                        message=(
                            f"identity rule(s) "
                            f"{[r.name for r in fired_identity]} fire but "
                            "the pair is absent from the matching table"
                        ),
                        r_key=r_key,
                        s_key=s_key,
                    )
                )
            if fired_distinct and not negative.contains_pair(r_key, s_key):
                violations.append(
                    Violation(
                        oracle="completeness",
                        kind="missing-non-match",
                        message=(
                            f"distinctness rule(s) "
                            f"{[r.name for r in fired_distinct]} fire but "
                            "the pair is absent from the negative table"
                        ),
                        r_key=r_key,
                        s_key=s_key,
                    )
                )
    return OracleReport(
        oracle="completeness", checked=checked, violations=tuple(violations)
    )


# ----------------------------------------------------------------------
# Uniqueness and consistency constraints
# ----------------------------------------------------------------------
def check_uniqueness(matching: MatchingTable) -> OracleReport:
    """No tuple of either relation matches more than one counterpart."""
    witnesses = matching.uniqueness_violations()
    violations: List[Violation] = []
    for r_key in witnesses["R"]:
        violations.append(
            Violation(
                oracle="uniqueness",
                kind="r-key-multiply-matched",
                message="R tuple matched to more than one S tuple",
                r_key=r_key,
            )
        )
    for s_key in witnesses["S"]:
        violations.append(
            Violation(
                oracle="uniqueness",
                kind="s-key-multiply-matched",
                message="S tuple matched to more than one R tuple",
                s_key=s_key,
            )
        )
    return OracleReport(
        oracle="uniqueness",
        checked=len(matching),
        violations=tuple(violations),
    )


def check_consistency(
    matching: MatchingTable, negative: NegativeMatchingTable
) -> OracleReport:
    """No pair appears in both MT_RS and NMT_RS."""
    overlap = matching.pairs() & negative.pairs()
    violations = tuple(
        Violation(
            oracle="consistency",
            kind="pair-in-both-tables",
            message="pair appears in both the matching and negative tables",
            r_key=r_key,
            s_key=s_key,
        )
        for r_key, s_key in sorted(overlap)
    )
    return OracleReport(
        oracle="consistency",
        checked=len(matching) + len(negative),
        violations=violations,
    )


# ----------------------------------------------------------------------
# Monotonicity under knowledge growth
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TableSnapshot:
    """The decided sets after one knowledge increment (Figure 3)."""

    label: str
    matching: FrozenSet[Pair]
    non_matching: FrozenSet[Pair]


def check_monotonicity(snapshots: Sequence[TableSnapshot]) -> OracleReport:
    """Decided pairs never get retracted as knowledge grows.

    Checks every consecutive snapshot pair: the matching and
    non-matching sets must each be supersets of their predecessors
    ("every pair of tuples determined … remains so when additional
    information is supplied").
    """
    violations: List[Violation] = []
    for previous, current in zip(snapshots, snapshots[1:]):
        for r_key, s_key in sorted(previous.matching - current.matching):
            violations.append(
                Violation(
                    oracle="monotonicity",
                    kind="match-retracted",
                    message=(
                        f"pair matched at {previous.label!r} is gone at "
                        f"{current.label!r}"
                    ),
                    r_key=r_key,
                    s_key=s_key,
                )
            )
        for r_key, s_key in sorted(
            previous.non_matching - current.non_matching
        ):
            violations.append(
                Violation(
                    oracle="monotonicity",
                    kind="non-match-retracted",
                    message=(
                        f"pair declared distinct at {previous.label!r} is "
                        f"gone at {current.label!r}"
                    ),
                    r_key=r_key,
                    s_key=s_key,
                )
            )
    return OracleReport(
        oracle="monotonicity",
        checked=max(len(snapshots) - 1, 0),
        violations=tuple(violations),
    )


def monotonicity_snapshots(
    r: Relation,
    s: Relation,
    knowledge: Knowledge,
    *,
    steps: Optional[int] = None,
) -> List[TableSnapshot]:
    """Replay knowledge growth: identify under growing ILFD prefixes.

    Reveals the ILFD set in ``steps`` prefix increments (default: one
    ILFD at a time, capped at 8 steps) and records the decided sets
    after each run.  Feed the result to :func:`check_monotonicity`.
    """
    from repro.core.identifier import EntityIdentifier

    ilfds = list(knowledge.ilfds)
    if steps is None:
        steps = min(len(ilfds), 8)
    cuts = sorted(
        {0, len(ilfds)}
        | {round(len(ilfds) * i / max(steps, 1)) for i in range(1, steps)}
    )
    snapshots: List[TableSnapshot] = []
    for cut in cuts:
        identifier = EntityIdentifier(
            r,
            s,
            list(knowledge.extended_key),
            ilfds=ilfds[:cut],
            identity_rules=knowledge.identity_rules,
            distinctness_rules=knowledge.distinctness_rules,
            derive_ilfd_distinctness=knowledge.derive_ilfd_distinctness,
            policy=knowledge.policy,
        )
        result = identifier.run()
        snapshots.append(
            TableSnapshot(
                label=f"ilfds[:{cut}]",
                matching=result.matching.pairs(),
                non_matching=result.negative.pairs(),
            )
        )
    return snapshots


# ----------------------------------------------------------------------
# The bundle
# ----------------------------------------------------------------------
def run_oracles(
    matching: MatchingTable,
    negative: NegativeMatchingTable,
    extended_r: Relation,
    extended_s: Relation,
    knowledge: Knowledge,
    *,
    asserted: AbstractSet[Pair] = frozenset(),
    tracer=None,
) -> ConformanceReport:
    """Run the four per-result oracles and bundle their reports.

    (Monotonicity needs a *sequence* of runs — drive it separately via
    :func:`monotonicity_snapshots` + :func:`check_monotonicity`.)
    """
    reports = (
        check_soundness(matching, knowledge, asserted=asserted),
        check_completeness(
            matching, negative, extended_r, extended_s, knowledge
        ),
        check_uniqueness(matching),
        check_consistency(matching, negative),
    )
    report = ConformanceReport(reports=reports)
    if tracer is not None and tracer.enabled:
        tracer.metrics.inc(
            "conformance.oracle_checks", sum(r.checked for r in reports)
        )
        tracer.metrics.inc(
            "conformance.oracle_violations", len(report.violations)
        )
    return report

"""Exception vocabulary of the conformance subsystem."""

from __future__ import annotations

__all__ = ["ConformanceError", "GoldenCorpusError"]


class ConformanceError(Exception):
    """A conformance run could not be executed (not a violation verdict).

    Violations found by oracles or mismatches found by the differential
    harness are *results* and are reported through
    :class:`~repro.conformance.violations.Violation` /
    :class:`~repro.conformance.differential.MatrixReport`; this exception
    covers the harness itself failing (bad configuration, unusable
    workload, unreadable golden file).
    """


class GoldenCorpusError(ConformanceError):
    """A golden-corpus file is missing, unreadable, or malformed."""

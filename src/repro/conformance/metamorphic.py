"""Metamorphic relations over identification workloads.

When no ground truth is available, we can still test the engine by
transforming its *input* in ways whose effect on the *output* is known
from the paper's semantics:

- **tuple shuffling** — relations are sets (Section 3.1), so row order
  must not matter: tables identical;
- **attribute renaming** — the unified attribute namespace is arbitrary;
  a consistent renaming of both schemas, the ILFDs and the extended key
  must rename the tables' key attributes and nothing else;
- **R↔S swap** — identity and distinctness are symmetric claims about a
  pair of tuples; swapping the two relations must transpose every table
  entry;
- **union split** — classification of a pair depends only on that pair's
  tuples plus the knowledge, so splitting R into R₁ ⊎ R₂ and identifying
  each half against S must partition both tables.

Each relation produces the transformed workload *and* the function
mapping the baseline's canonical tables to the expected ones, so the
check is always one bit-exact comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.conformance.canonical import (
    CanonicalPair,
    CanonicalTables,
    canonicalise,
    diff_pairs,
)
from repro.conformance.errors import ConformanceError
from repro.core.identifier import EntityIdentifier
from repro.ilfd.ilfd import ILFDSet
from repro.relational.relation import Relation
from repro.store.codec import decode_key, encode_key
from repro.workloads.generator import Workload

__all__ = [
    "MetamorphicCase",
    "MetamorphicOutcome",
    "MetamorphicReport",
    "shuffle_tuples",
    "rename_attributes",
    "swap_sides",
    "union_split",
    "default_cases",
    "run_metamorphic",
]

TableTransform = Callable[[CanonicalTables], CanonicalTables]


@dataclass(frozen=True)
class MetamorphicCase:
    """One metamorphic relation, instantiated for one workload.

    ``workloads`` holds the transformed input(s) — more than one for the
    union split, whose expectation is about the *combined* output — and
    ``expected`` maps the baseline's canonical tables to the tables the
    transformed run(s) must produce (their results are unioned before
    comparison).
    """

    name: str
    workloads: Tuple[Workload, ...]
    expected: TableTransform


@dataclass(frozen=True)
class MetamorphicOutcome:
    """Verdict of one metamorphic case."""

    name: str
    ok: bool
    mt_diff: Dict[str, List[CanonicalPair]]
    nmt_diff: Dict[str, List[CanonicalPair]]

    def summary(self) -> str:
        """One line: case name and verdict."""
        if self.ok:
            return f"{self.name}: ok"
        return (
            f"{self.name}: FAILED "
            f"(MT +{len(self.mt_diff['only_b'])} -{len(self.mt_diff['only_a'])}, "
            f"NMT +{len(self.nmt_diff['only_b'])} -{len(self.nmt_diff['only_a'])})"
        )


@dataclass(frozen=True)
class MetamorphicReport:
    """All metamorphic case verdicts for one workload."""

    workload: str
    outcomes: Tuple[MetamorphicOutcome, ...]

    @property
    def ok(self) -> bool:
        """True iff every case held."""
        return all(outcome.ok for outcome in self.outcomes)

    def summary(self) -> str:
        """One line per case."""
        header = f"metamorphic [{self.workload}]:"
        return "\n".join(
            [header] + ["  " + outcome.summary() for outcome in self.outcomes]
        )


# ----------------------------------------------------------------------
# Canonical-key surgery shared by the expectation transforms
# ----------------------------------------------------------------------
def _rename_encoded(text: str, mapping: Mapping[str, str]) -> str:
    key = decode_key(text)
    renamed = tuple(
        sorted((mapping.get(attr, attr), value) for attr, value in key)
    )
    return encode_key(renamed)


def _rename_tables(
    tables: CanonicalTables, mapping: Mapping[str, str]
) -> CanonicalTables:
    return CanonicalTables(
        mt=tuple(
            sorted(
                (_rename_encoded(r, mapping), _rename_encoded(s, mapping))
                for r, s in tables.mt
            )
        ),
        nmt=tuple(
            sorted(
                (_rename_encoded(r, mapping), _rename_encoded(s, mapping))
                for r, s in tables.nmt
            )
        ),
    )


def _transpose_tables(tables: CanonicalTables) -> CanonicalTables:
    return CanonicalTables(
        mt=tuple(sorted((s, r) for r, s in tables.mt)),
        nmt=tuple(sorted((s, r) for r, s in tables.nmt)),
    )


def _identity_transform(tables: CanonicalTables) -> CanonicalTables:
    return tables


# ----------------------------------------------------------------------
# The four relations
# ----------------------------------------------------------------------
def shuffle_tuples(workload: Workload, *, seed: int = 0) -> MetamorphicCase:
    """Reorder the rows of both relations; tables must be identical."""
    rng = random.Random(seed)
    r_rows = list(workload.r.rows)
    s_rows = list(workload.s.rows)
    rng.shuffle(r_rows)
    rng.shuffle(s_rows)
    shuffled = Workload(
        r=Relation(workload.r.schema, r_rows, name=workload.r.name),
        s=Relation(workload.s.schema, s_rows, name=workload.s.name),
        ilfds=workload.ilfds,
        extended_key=workload.extended_key,
        truth=workload.truth,
    )
    return MetamorphicCase("shuffle-tuples", (shuffled,), _identity_transform)


def rename_attributes(
    workload: Workload, mapping: Optional[Mapping[str, str]] = None
) -> MetamorphicCase:
    """Consistently rename the unified attribute namespace.

    Defaults to suffixing every attribute with ``_x``.  The schemas, the
    ILFDs, and the extended key are renamed together; the expected
    tables are the baseline's with each key attribute renamed (and keys
    re-sorted, since ``KeyValues`` sort by attribute name).
    """
    names = set(workload.r.schema.names) | set(workload.s.schema.names)
    if mapping is None:
        mapping = {name: f"{name}_x" for name in sorted(names)}
    else:
        mapping = dict(mapping)
        unknown = set(mapping) - names
        if unknown:
            raise ConformanceError(
                f"rename mapping names unknown attributes {sorted(unknown)}"
            )
    r_mapping = {k: v for k, v in mapping.items() if k in workload.r.schema}
    s_mapping = {k: v for k, v in mapping.items() if k in workload.s.schema}
    renamed = Workload(
        r=Relation(
            workload.r.schema.rename(r_mapping),
            [
                {mapping.get(a, a): v for a, v in row.items()}
                for row in workload.r.rows
            ],
            name=workload.r.name,
        ),
        s=Relation(
            workload.s.schema.rename(s_mapping),
            [
                {mapping.get(a, a): v for a, v in row.items()}
                for row in workload.s.rows
            ],
            name=workload.s.name,
        ),
        ilfds=ILFDSet(
            ilfd.renamed_attributes(mapping) for ilfd in workload.ilfds
        ),
        extended_key=tuple(
            mapping.get(a, a) for a in workload.extended_key
        ),
        truth=frozenset(),
    )
    final_mapping = dict(mapping)
    return MetamorphicCase(
        "rename-attributes",
        (renamed,),
        lambda tables: _rename_tables(tables, final_mapping),
    )


def swap_sides(workload: Workload) -> MetamorphicCase:
    """Identify S against R; every table entry must transpose.

    Safe because the rule engine evaluates distinctness rules in both
    orientations — identity and distinctness are claims about a *pair*.
    """
    swapped = Workload(
        r=workload.s,
        s=workload.r,
        ilfds=workload.ilfds,
        extended_key=workload.extended_key,
        truth=frozenset((s_key, r_key) for r_key, s_key in workload.truth),
    )
    return MetamorphicCase("swap-sides", (swapped,), _transpose_tables)


def union_split(workload: Workload, *, seed: int = 0) -> MetamorphicCase:
    """Split R into two halves; the halves' tables must partition R's.

    Classification is pairwise, so MT(R, S) = MT(R₁, S) ⊎ MT(R₂, S) and
    likewise for the NMT when R = R₁ ⊎ R₂.
    """
    if len(workload.r) < 2:
        raise ConformanceError("union split needs at least two R tuples")
    rng = random.Random(seed)
    rows = list(workload.r.rows)
    rng.shuffle(rows)
    half = len(rows) // 2
    parts = []
    for chunk in (rows[:half], rows[half:]):
        parts.append(
            Workload(
                r=Relation(workload.r.schema, chunk, name=workload.r.name),
                s=workload.s,
                ilfds=workload.ilfds,
                extended_key=workload.extended_key,
                truth=frozenset(),
            )
        )
    return MetamorphicCase(
        "union-split", tuple(parts), _identity_transform
    )


def default_cases(workload: Workload, *, seed: int = 0) -> List[MetamorphicCase]:
    """All four metamorphic relations, instantiated for *workload*."""
    return [
        shuffle_tuples(workload, seed=seed),
        rename_attributes(workload),
        swap_sides(workload),
        union_split(workload, seed=seed),
    ]


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _run(workload: Workload) -> CanonicalTables:
    result = EntityIdentifier(
        workload.r,
        workload.s,
        list(workload.extended_key),
        ilfds=list(workload.ilfds),
    ).run()
    return canonicalise(result.matching, result.negative)


def _union(tables: Sequence[CanonicalTables]) -> CanonicalTables:
    mt: set = set()
    nmt: set = set()
    for t in tables:
        mt.update(t.mt)
        nmt.update(t.nmt)
    return CanonicalTables(mt=tuple(sorted(mt)), nmt=tuple(sorted(nmt)))


def run_metamorphic(
    workload: Workload,
    cases: Optional[Sequence[MetamorphicCase]] = None,
    *,
    name: str = "workload",
    seed: int = 0,
    tracer=None,
) -> MetamorphicReport:
    """Run the metamorphic cases against a baseline identification."""
    baseline = _run(workload)
    cases = (
        list(cases) if cases is not None else default_cases(workload, seed=seed)
    )
    outcomes: List[MetamorphicOutcome] = []
    for case in cases:
        actual = _union([_run(w) for w in case.workloads])
        expected = case.expected(baseline)
        mt_diff = diff_pairs(expected.mt, actual.mt)
        nmt_diff = diff_pairs(expected.nmt, actual.nmt)
        ok = actual == expected
        outcomes.append(
            MetamorphicOutcome(
                name=case.name, ok=ok, mt_diff=mt_diff, nmt_diff=nmt_diff
            )
        )
    report = MetamorphicReport(workload=name, outcomes=tuple(outcomes))
    if tracer is not None and tracer.enabled:
        tracer.metrics.inc("conformance.metamorphic_cases", len(outcomes))
        tracer.metrics.inc(
            "conformance.metamorphic_failures",
            sum(1 for o in outcomes if not o.ok),
        )
    return report

"""The golden corpus: frozen workload fingerprints.

A golden file freezes the canonical MT/NMT fingerprints (and table
sizes) of one fixed workload under the default engine.  Committed to
``tests/conformance/golden/``, the corpus turns *any* unintended change
to identification semantics — a refactor reordering rule firings, a
codec tweak, a blocking change leaking into the exact paths — into a
visible diff.  Intentional semantic changes re-freeze the corpus with
``repro conform --update-golden`` (or ``update_golden`` here) and the
new fingerprints go through code review like any other change.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.conformance.canonical import CanonicalTables, canonicalise
from repro.conformance.errors import GoldenCorpusError
from repro.core.identifier import EntityIdentifier
from repro.workloads import (
    EmployeeWorkloadSpec,
    PublicationWorkloadSpec,
    RestaurantWorkloadSpec,
    employee_workload,
    publication_workload,
    restaurant_example_3,
    restaurant_workload,
)
from repro.workloads.generator import Workload

__all__ = [
    "GOLDEN_FORMAT",
    "GOLDEN_WORKLOADS",
    "GoldenRecord",
    "golden_record",
    "load_golden",
    "write_golden",
    "check_golden",
    "update_golden",
]

GOLDEN_FORMAT = 1
"""Version of the golden-file JSON layout."""


GOLDEN_WORKLOADS: Dict[str, Callable[[], Workload]] = {
    "restaurants": lambda: restaurant_workload(
        RestaurantWorkloadSpec(n_entities=40, seed=11)
    ),
    "employees": lambda: employee_workload(
        EmployeeWorkloadSpec(n_entities=40, seed=11)
    ),
    "publications": lambda: publication_workload(
        PublicationWorkloadSpec(n_entities=40, seed=11)
    ),
    "example3": restaurant_example_3,
}
"""The frozen corpus: name → workload factory with pinned parameters."""


@dataclass(frozen=True)
class GoldenRecord:
    """One workload's frozen fingerprints."""

    workload: str
    mt_fingerprint: str
    nmt_fingerprint: str
    mt_size: int
    nmt_size: int
    extended_key: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rendering (stable key order)."""
        return {
            "format": GOLDEN_FORMAT,
            "workload": self.workload,
            "extended_key": list(self.extended_key),
            "mt_fingerprint": self.mt_fingerprint,
            "nmt_fingerprint": self.nmt_fingerprint,
            "mt_size": self.mt_size,
            "nmt_size": self.nmt_size,
        }


def _tables(workload: Workload) -> CanonicalTables:
    result = EntityIdentifier(
        workload.r,
        workload.s,
        list(workload.extended_key),
        ilfds=list(workload.ilfds),
    ).run()
    return canonicalise(result.matching, result.negative)


def golden_record(name: str) -> GoldenRecord:
    """Compute the current fingerprints of one corpus workload."""
    try:
        factory = GOLDEN_WORKLOADS[name]
    except KeyError:
        raise GoldenCorpusError(
            f"unknown golden workload {name!r}; "
            f"corpus: {sorted(GOLDEN_WORKLOADS)}"
        ) from None
    workload = factory()
    tables = _tables(workload)
    return GoldenRecord(
        workload=name,
        mt_fingerprint=tables.mt_fingerprint,
        nmt_fingerprint=tables.nmt_fingerprint,
        mt_size=len(tables.mt),
        nmt_size=len(tables.nmt),
        extended_key=tuple(workload.extended_key),
    )


def _golden_path(directory: str, name: str) -> str:
    return os.path.join(directory, f"{name}.json")


def load_golden(directory: str, name: str) -> GoldenRecord:
    """Load one frozen record from *directory*."""
    path = _golden_path(directory, name)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise GoldenCorpusError(
            f"golden file missing for {name!r}: {path} "
            f"(run with --update-golden to create it)"
        ) from None
    except json.JSONDecodeError as exc:
        raise GoldenCorpusError(f"malformed golden file {path}: {exc}") from exc
    try:
        if data["format"] != GOLDEN_FORMAT:
            raise GoldenCorpusError(
                f"golden file {path} has format {data['format']}, "
                f"expected {GOLDEN_FORMAT}"
            )
        return GoldenRecord(
            workload=data["workload"],
            mt_fingerprint=data["mt_fingerprint"],
            nmt_fingerprint=data["nmt_fingerprint"],
            mt_size=data["mt_size"],
            nmt_size=data["nmt_size"],
            extended_key=tuple(data["extended_key"]),
        )
    except KeyError as exc:
        raise GoldenCorpusError(
            f"golden file {path} is missing field {exc}"
        ) from None


def write_golden(directory: str, record: GoldenRecord) -> str:
    """Write one record to *directory*; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = _golden_path(directory, record.workload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record.to_dict(), handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def check_golden(
    directory: str, names: Optional[List[str]] = None
) -> Dict[str, str]:
    """Compare current fingerprints against the frozen corpus.

    Returns ``{workload: description}`` for every drifted workload —
    empty means the corpus still holds.  Missing or malformed golden
    files raise :class:`GoldenCorpusError` (the corpus is part of the
    repository; absence is a harness failure, not drift).
    """
    drift: Dict[str, str] = {}
    for name in names if names is not None else sorted(GOLDEN_WORKLOADS):
        frozen = load_golden(directory, name)
        current = golden_record(name)
        problems = []
        if current.mt_fingerprint != frozen.mt_fingerprint:
            problems.append(
                f"MT fingerprint {frozen.mt_fingerprint[:12]} -> "
                f"{current.mt_fingerprint[:12]} "
                f"(size {frozen.mt_size} -> {current.mt_size})"
            )
        if current.nmt_fingerprint != frozen.nmt_fingerprint:
            problems.append(
                f"NMT fingerprint {frozen.nmt_fingerprint[:12]} -> "
                f"{current.nmt_fingerprint[:12]} "
                f"(size {frozen.nmt_size} -> {current.nmt_size})"
            )
        if current.extended_key != frozen.extended_key:
            problems.append(
                f"extended key {frozen.extended_key} -> {current.extended_key}"
            )
        if problems:
            drift[name] = "; ".join(problems)
    return drift


def update_golden(
    directory: str, names: Optional[List[str]] = None
) -> List[str]:
    """Re-freeze the corpus; returns the written file paths."""
    return [
        write_golden(directory, golden_record(name))
        for name in (names if names is not None else sorted(GOLDEN_WORKLOADS))
    ]

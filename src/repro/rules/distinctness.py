"""Distinctness rules.

    **Definition (Distinctness rule).**  ``∀e1,e2 ∈ E,
    P(e1.A1,…,e1.Am, e2.B1,…,e2.Bn) → (e1 ≢ e2)`` where P is a
    conjunction of predicates and P must involve some attribute from each
    of e1 and e2.

The paper's example r3: a restaurant specialising in Mughalai food is not
equivalent to a restaurant with non-Indian cuisine.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Mapping, Set, Tuple

from repro.relational.nulls import Maybe, three_valued_and
from repro.rules.errors import MalformedRuleError
from repro.rules.predicates import Predicate


class DistinctnessRule:
    """A validated distinctness rule ``P → (e1 ≢ e2)``."""

    __slots__ = ("_predicates", "name")

    def __init__(self, predicates: Iterable[Predicate], *, name: str = "") -> None:
        preds = tuple(predicates)
        if not preds:
            raise MalformedRuleError("distinctness rule needs at least one predicate")
        for entity in (1, 2):
            if not any(pred.mentioned_attributes(entity) for pred in preds):
                raise MalformedRuleError(
                    f"distinctness rule must involve some attribute of e{entity}"
                )
        self._predicates = preds
        self.name = name

    @property
    def predicates(self) -> Tuple[Predicate, ...]:
        """The conjunction P."""
        return self._predicates

    @property
    def attributes(self) -> FrozenSet[str]:
        """All attributes the rule mentions (either entity)."""
        out: Set[str] = set()
        for pred in self._predicates:
            out.update(pred.mentioned_attributes(1))
            out.update(pred.mentioned_attributes(2))
        return frozenset(out)

    def applies(self, row1: Mapping, row2: Mapping) -> Maybe:
        """Three-valued evaluation of P over the pair.

        TRUE means the pair is *non-matching*; FALSE/UNKNOWN mean the rule
        is silent.
        """
        return three_valued_and(
            *(pred.evaluate(row1, row2) for pred in self._predicates)
        )

    def symmetrised(self) -> "DistinctnessRule":
        """The same rule with e1/e2 swapped.

        Distinctness is symmetric, but a rule's predicate text is not;
        engines typically evaluate both orientations.
        """
        from repro.rules.predicates import EntityRef

        def flip(term):
            if isinstance(term, EntityRef):
                return EntityRef(3 - term.entity, term.attribute)
            return term

        return DistinctnessRule(
            [Predicate(flip(p.left), p.op, flip(p.right)) for p in self._predicates],
            name=self.name + "~" if self.name else "",
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistinctnessRule):
            return NotImplemented
        return frozenset(self._predicates) == frozenset(other._predicates)

    def __hash__(self) -> int:
        return hash(frozenset(self._predicates))

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        body = " ∧ ".join(str(p) for p in self._predicates)
        return f"{label}∀e1,e2∈E, {body} → (e1 ≢ e2)"

"""The predicate language of identity and distinctness rules.

Each predicate is "either of the form ``ei.attribute op ej.attribute`` or
``ei.attribute op value``, where ``op ∈ {=, <, >, ≤, ≥, ≠}``"
(Section 3.2).  Terms reference one of the two quantified entities
(:func:`attr1` / :func:`attr2`) or a constant (:func:`lit`).

Evaluation over a pair of tuples is three-valued: a comparison touching a
NULL is :attr:`~repro.relational.nulls.Maybe.UNKNOWN`, so rules never fire
off missing information (which would break soundness).
"""

from __future__ import annotations

import enum
import operator
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Tuple, Union

from repro.relational.nulls import Maybe, is_null
from repro.rules.errors import MalformedRuleError


class Comparator(enum.Enum):
    """The paper's comparison operators."""

    EQ = "="
    NE = "≠"
    LT = "<"
    GT = ">"
    LE = "≤"
    GE = "≥"

    @property
    def fn(self) -> Callable[[Any, Any], bool]:
        """The Python comparison implementing this operator."""
        return {
            Comparator.EQ: operator.eq,
            Comparator.NE: operator.ne,
            Comparator.LT: operator.lt,
            Comparator.GT: operator.gt,
            Comparator.LE: operator.le,
            Comparator.GE: operator.ge,
        }[self]

    def flipped(self) -> "Comparator":
        """The operator with its operands swapped (a op b ⇔ b op' a)."""
        return {
            Comparator.EQ: Comparator.EQ,
            Comparator.NE: Comparator.NE,
            Comparator.LT: Comparator.GT,
            Comparator.GT: Comparator.LT,
            Comparator.LE: Comparator.GE,
            Comparator.GE: Comparator.LE,
        }[self]


@dataclass(frozen=True, order=True)
class EntityRef:
    """A reference ``ei.attribute`` (entity is 1 or 2)."""

    entity: int
    attribute: str

    def __post_init__(self) -> None:
        if self.entity not in (1, 2):
            raise MalformedRuleError(f"entity index must be 1 or 2, got {self.entity}")
        if not self.attribute:
            raise MalformedRuleError("attribute name cannot be empty")

    def resolve(self, row1: Mapping[str, Any], row2: Mapping[str, Any]) -> Any:
        """The referenced value in the given pair (may be NULL/absent)."""
        row = row1 if self.entity == 1 else row2
        try:
            return row[self.attribute]
        except Exception:
            from repro.relational.nulls import NULL

            return NULL

    def __str__(self) -> str:
        return f"e{self.entity}.{self.attribute}"


@dataclass(frozen=True, order=True)
class Literal:
    """A constant value term."""

    value: Any

    def resolve(self, row1: Mapping[str, Any], row2: Mapping[str, Any]) -> Any:
        """Constants resolve to themselves."""
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


Term = Union[EntityRef, Literal]


def attr1(attribute: str) -> EntityRef:
    """Shorthand for ``e1.attribute``."""
    return EntityRef(1, attribute)


def attr2(attribute: str) -> EntityRef:
    """Shorthand for ``e2.attribute``."""
    return EntityRef(2, attribute)


def lit(value: Any) -> Literal:
    """Shorthand for a constant term."""
    return Literal(value)


@dataclass(frozen=True)
class Predicate:
    """One comparison ``left op right``.

    At least one side must reference an entity (a constant-vs-constant
    comparison carries no rule content and is rejected).
    """

    left: Term
    op: Comparator
    right: Term

    def __post_init__(self) -> None:
        if isinstance(self.left, Literal) and isinstance(self.right, Literal):
            raise MalformedRuleError(
                f"predicate {self} compares two constants; rules must "
                "reference entity attributes"
            )
        if isinstance(self.left, Literal):
            # Normalise constants to the right-hand side.
            constant, ref = self.left, self.right
            object.__setattr__(self, "left", ref)
            object.__setattr__(self, "right", constant)
            object.__setattr__(self, "op", self.op.flipped())

    def evaluate(self, row1: Mapping[str, Any], row2: Mapping[str, Any]) -> Maybe:
        """Three-valued evaluation over a pair of tuples."""
        left = self.left.resolve(row1, row2)
        right = self.right.resolve(row1, row2)
        if is_null(left) or is_null(right):
            return Maybe.UNKNOWN
        try:
            return Maybe.from_bool(self.op.fn(left, right))
        except TypeError:
            return Maybe.UNKNOWN

    def mentioned_attributes(self, entity: int) -> Tuple[str, ...]:
        """Attributes of entity *entity* this predicate references."""
        out = []
        for term in (self.left, self.right):
            if isinstance(term, EntityRef) and term.entity == entity:
                out.append(term.attribute)
        return tuple(out)

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


def equality_predicate(attribute: str) -> Predicate:
    """The predicate ``e1.attribute = e2.attribute``."""
    return Predicate(attr1(attribute), Comparator.EQ, attr2(attribute))

"""Proposition 1: ILFDs ↔ distinctness rules.

    **Proposition 1.**  ``(E.A1=a1) ∧ … ∧ (E.An=an) → (E.B=b)`` is an
    ILFD iff ``∀e1,e2∈E, (e1.A1=a1) ∧ … ∧ (e1.An=an) ∧ (e2.B≠b) →
    (e1 ≢ e2)`` is a distinctness rule.

The paper's example: from the Mughalai→Indian ILFD one obtains the rule
"a restaurant with speciality Mughalai is distinct from any restaurant
with non-Indian cuisine", which populates the negative matching table
(Table 4).
"""

from __future__ import annotations

from typing import List, Optional

from repro.ilfd.ilfd import ILFD
from repro.rules.distinctness import DistinctnessRule
from repro.rules.predicates import (
    Comparator,
    EntityRef,
    Literal,
    Predicate,
    attr1,
    attr2,
    lit,
)


def ilfd_to_distinctness_rules(ilfd: ILFD) -> List[DistinctnessRule]:
    """The "only if" direction of Proposition 1.

    A multi-condition consequent yields one rule per consequent condition
    (decompose first: ``X → (B=b) ∧ (C=c)`` violates exactly when either
    part is contradicted).
    """
    rules: List[DistinctnessRule] = []
    antecedent_preds = [
        Predicate(attr1(cond.attribute), Comparator.EQ, lit(cond.value))
        for cond in sorted(ilfd.antecedent)
    ]
    for index, cond in enumerate(sorted(ilfd.consequent), start=1):
        negated = Predicate(attr2(cond.attribute), Comparator.NE, lit(cond.value))
        suffix = f".{index}" if len(ilfd.consequent) > 1 else ""
        rules.append(
            DistinctnessRule(
                antecedent_preds + [negated],
                name=(ilfd.name + suffix) if ilfd.name else "",
            )
        )
    return rules


def distinctness_rule_to_ilfd(rule: DistinctnessRule) -> Optional[ILFD]:
    """The "if" direction of Proposition 1, by pattern matching.

    Recognises rules of the exact shape
    ``(e1.A1=a1) ∧ … ∧ (e1.An=an) ∧ (e2.B≠b) → (e1 ≢ e2)`` (also with the
    entities swapped) and returns the corresponding ILFD; returns None for
    rules of any other shape, which carry no ILFD content.
    """
    for first, second in ((1, 2), (2, 1)):
        antecedent = {}
        consequent = {}
        matched = True
        for pred in rule.predicates:
            left, right = pred.left, pred.right
            if not isinstance(left, EntityRef) or not isinstance(right, Literal):
                matched = False
                break
            if pred.op is Comparator.EQ and left.entity == first:
                if left.attribute in antecedent and antecedent[left.attribute] != right.value:
                    matched = False
                    break
                antecedent[left.attribute] = right.value
            elif pred.op is Comparator.NE and left.entity == second:
                if left.attribute in consequent and consequent[left.attribute] != right.value:
                    matched = False
                    break
                consequent[left.attribute] = right.value
            else:
                matched = False
                break
        if matched and antecedent and consequent:
            return ILFD(antecedent, consequent, name=rule.name)
    return None

"""Identity and distinctness rules (Section 3.2).

To achieve a *sound* entity-identification result, the paper requires a
set of **identity rules** (sufficient conditions for two entities to be
the same) and **distinctness rules** (sufficient conditions for them to
differ), asserted by the DBA about the integrated world:

- identity rule:     ``∀e1,e2 ∈ E,  P(...) → (e1 ≡ e2)``,
  where P must imply ``e1.Ai = e2.Ai`` for every attribute it mentions;
- distinctness rule: ``∀e1,e2 ∈ E,  P(...) → (e1 ≢ e2)``,
  where P must involve attributes of both entities.

This subpackage provides the predicate language (``=,≠,<,>,≤,≥`` over
``ei.attribute`` and constants), the two rule classes with the paper's
well-formedness validation, the Proposition-1 conversion between ILFDs
and distinctness rules, and a three-valued rule-evaluation engine.
"""

from repro.rules.errors import MalformedRuleError, RuleConflictError
from repro.rules.predicates import (
    Comparator,
    EntityRef,
    Literal,
    Predicate,
    attr1,
    attr2,
    lit,
)
from repro.rules.identity import (
    IdentityRule,
    extended_key_rule,
    key_equivalence_rule,
)
from repro.rules.distinctness import DistinctnessRule
from repro.rules.conversion import (
    distinctness_rule_to_ilfd,
    ilfd_to_distinctness_rules,
)
from repro.rules.engine import MatchStatus, RuleEngine

__all__ = [
    "Comparator",
    "DistinctnessRule",
    "EntityRef",
    "IdentityRule",
    "Literal",
    "MalformedRuleError",
    "MatchStatus",
    "Predicate",
    "RuleConflictError",
    "RuleEngine",
    "attr1",
    "attr2",
    "distinctness_rule_to_ilfd",
    "extended_key_rule",
    "ilfd_to_distinctness_rules",
    "key_equivalence_rule",
    "lit",
]

"""Exceptions for the rules subpackage."""


class MalformedRuleError(Exception):
    """A rule fails the paper's well-formedness conditions.

    For identity rules: the antecedent does not imply value-equality of
    every attribute it mentions (the paper's r2 counterexample).  For
    distinctness rules: the antecedent fails to involve attributes from
    both entities.
    """


class RuleConflictError(Exception):
    """A tuple pair satisfies both an identity and a distinctness rule.

    That means the DBA-supplied rule set is inconsistent with respect to
    the data — declaring the pair matching *and* non-matching would break
    the consistency constraint of Section 3.2 — so we refuse to classify.
    """

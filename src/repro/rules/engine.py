"""Three-valued rule evaluation over tuple pairs.

Section 3.2: "The entity-identification process can be expressed as a
three-valued function that takes a pair of tuples and returns 'true' only
if they refer to the same real-world entity, 'false' only if they do not,
and 'unknown' otherwise."

:class:`RuleEngine` evaluates a pair against the DBA's identity and
distinctness rules and returns a :class:`MatchStatus`.  A pair satisfying
rules of both kinds means the rule set itself is unsound for the data and
raises :class:`~repro.rules.errors.RuleConflictError` (silently choosing
either answer would violate the consistency constraint).
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Mapping, Optional, Tuple

from repro.observability.tracer import NO_OP_TRACER, Tracer
from repro.relational.nulls import Maybe
from repro.rules.distinctness import DistinctnessRule
from repro.rules.errors import RuleConflictError
from repro.rules.identity import IdentityRule

__all__ = ["MatchStatus", "RuleEngine"]


class MatchStatus(enum.Enum):
    """The three-valued outcome of entity identification for a pair."""

    MATCH = "match"
    NON_MATCH = "non_match"
    UNKNOWN = "unknown"


class RuleEngine:
    """Evaluates identity and distinctness rules over tuple pairs.

    Distinctness rules are evaluated in both orientations (distinctness is
    symmetric; the rule text is not).  Identity rules are symmetric by
    construction — their well-formedness forces ``e1.A = e2.A`` for every
    mentioned attribute — so one orientation suffices.
    """

    def __init__(
        self,
        identity_rules: Iterable[IdentityRule] = (),
        distinctness_rules: Iterable[DistinctnessRule] = (),
        *,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._identity: Tuple[IdentityRule, ...] = tuple(identity_rules)
        self._distinctness: Tuple[DistinctnessRule, ...] = tuple(distinctness_rules)
        self._tracer = tracer if tracer is not None else NO_OP_TRACER

    @property
    def identity_rules(self) -> Tuple[IdentityRule, ...]:
        """The identity rules, in declaration order."""
        return self._identity

    @property
    def distinctness_rules(self) -> Tuple[DistinctnessRule, ...]:
        """The distinctness rules, in declaration order."""
        return self._distinctness

    def with_rules(
        self,
        identity_rules: Iterable[IdentityRule] = (),
        distinctness_rules: Iterable[DistinctnessRule] = (),
    ) -> "RuleEngine":
        """A new engine with extra rules appended (monotone growth)."""
        return RuleEngine(
            list(self._identity) + list(identity_rules),
            list(self._distinctness) + list(distinctness_rules),
            tracer=self._tracer,
        )

    # ------------------------------------------------------------------
    def firing_identity_rules(self, row1: Mapping, row2: Mapping) -> List[IdentityRule]:
        """Identity rules whose antecedent is TRUE for the pair."""
        fired = [
            rule
            for rule in self._identity
            if rule.applies(row1, row2) is Maybe.TRUE
        ]
        if self._tracer.enabled:
            metrics = self._tracer.metrics
            metrics.inc("rules.identity_evaluations", len(self._identity))
            metrics.inc("rules.identity_fired", len(fired))
        return fired

    def firing_distinctness_rules(
        self, row1: Mapping, row2: Mapping
    ) -> List[DistinctnessRule]:
        """Distinctness rules TRUE for the pair, in either orientation."""
        fired: List[DistinctnessRule] = []
        for rule in self._distinctness:
            if (
                rule.applies(row1, row2) is Maybe.TRUE
                or rule.applies(row2, row1) is Maybe.TRUE
            ):
                fired.append(rule)
        if self._tracer.enabled:
            metrics = self._tracer.metrics
            metrics.inc("rules.distinctness_evaluations", len(self._distinctness))
            metrics.inc("rules.distinctness_fired", len(fired))
        return fired

    def classify(self, row1: Mapping, row2: Mapping) -> MatchStatus:
        """Three-valued classification of the pair.

        Raises :class:`RuleConflictError` when both an identity and a
        distinctness rule fire — the DBA's rule set is inconsistent for
        this pair and soundness cannot be guaranteed either way.
        """
        matches = self.firing_identity_rules(row1, row2)
        distinct = self.firing_distinctness_rules(row1, row2)
        if matches and distinct:
            if self._tracer.enabled:
                self._tracer.metrics.inc("rules.conflicts")
            raise RuleConflictError(
                f"pair satisfies identity rule(s) "
                f"{[r.name or repr(r) for r in matches]} and distinctness "
                f"rule(s) {[r.name or repr(r) for r in distinct]}"
            )
        if matches:
            status = MatchStatus.MATCH
        elif distinct:
            status = MatchStatus.NON_MATCH
        else:
            status = MatchStatus.UNKNOWN
        if self._tracer.enabled:
            self._tracer.metrics.inc(f"rules.outcome.{status.value}")
        return status

    def explain(self, row1: Mapping, row2: Mapping) -> str:
        """Human-readable account of why the pair classifies as it does."""
        try:
            status = self.classify(row1, row2)
        except RuleConflictError as exc:
            return f"CONFLICT: {exc}"
        if status is MatchStatus.MATCH:
            names = [r.name or repr(r) for r in self.firing_identity_rules(row1, row2)]
            return f"MATCH by identity rule(s): {', '.join(names)}"
        if status is MatchStatus.NON_MATCH:
            names = [
                r.name or repr(r)
                for r in self.firing_distinctness_rules(row1, row2)
            ]
            return f"NON-MATCH by distinctness rule(s): {', '.join(names)}"
        return "UNKNOWN: no rule fires for this pair"

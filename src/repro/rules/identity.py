"""Identity rules.

    **Definition (Identity rule).**  ``∀e1,e2 ∈ E,
    P(e1.A1,…,e1.Am, e2.B1,…,e2.Bn) → (e1 ≡ e2)`` where P is a
    conjunction of predicates and, for each ``e1.Ai`` or ``e2.Ai``
    appearing in the predicates, P must imply ``e1.Ai = e2.Ai``.

The well-formedness condition is what separates the paper's sound rule r1
(``e1.cuisine="Chinese" ∧ e2.cuisine="Chinese"``, which forces the two
cuisines equal through the shared constant) from the unsound r2 (only
``e1.cuisine="Chinese"``).  We decide the implication for conjunctions of
equality predicates by congruence closure (union-find over terms), also
recognising ``≤``/``≥`` pairs over the same operands as equalities.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Sequence, Set, Tuple

from repro.relational.nulls import Maybe, three_valued_and
from repro.rules.errors import MalformedRuleError
from repro.rules.predicates import (
    Comparator,
    EntityRef,
    Predicate,
    Term,
    equality_predicate,
)


class _UnionFind:
    """Union-find over hashable terms, for the equality implication check."""

    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}

    def find(self, term: Term) -> Term:
        parent = self._parent.setdefault(term, term)
        if parent is term:
            return term
        root = self.find(parent)
        self._parent[term] = root
        return root

    def union(self, left: Term, right: Term) -> None:
        self._parent[self.find(left)] = self.find(right)

    def connected(self, left: Term, right: Term) -> bool:
        return self.find(left) == self.find(right)


def _implied_equalities(predicates: Sequence[Predicate]) -> _UnionFind:
    """Congruence classes of terms implied by the conjunction.

    EQ predicates union their operands; an ``a ≤ b`` matched by a
    ``b ≤ a`` (in either orientation) also forces equality.
    """
    uf = _UnionFind()
    le_pairs: Set[Tuple[Term, Term]] = set()
    for pred in predicates:
        if pred.op is Comparator.EQ:
            uf.union(pred.left, pred.right)
        elif pred.op is Comparator.LE:
            le_pairs.add((pred.left, pred.right))
        elif pred.op is Comparator.GE:
            le_pairs.add((pred.right, pred.left))
    for left, right in le_pairs:
        if (right, left) in le_pairs:
            uf.union(left, right)
    return uf


def _mentioned_attributes(predicates: Sequence[Predicate]) -> FrozenSet[str]:
    """All attributes referenced by either entity in the conjunction."""
    out: Set[str] = set()
    for pred in predicates:
        out.update(pred.mentioned_attributes(1))
        out.update(pred.mentioned_attributes(2))
    return frozenset(out)


class IdentityRule:
    """A validated identity rule ``P → (e1 ≡ e2)``.

    Raises :class:`~repro.rules.errors.MalformedRuleError` at construction
    when P fails to imply ``e1.A = e2.A`` for some mentioned attribute A
    (the paper's r2 case).
    """

    __slots__ = ("_predicates", "name")

    def __init__(self, predicates: Iterable[Predicate], *, name: str = "") -> None:
        preds = tuple(predicates)
        if not preds:
            raise MalformedRuleError("identity rule needs at least one predicate")
        uf = _implied_equalities(preds)
        for attribute in sorted(_mentioned_attributes(preds)):
            left = EntityRef(1, attribute)
            right = EntityRef(2, attribute)
            if not uf.connected(left, right):
                raise MalformedRuleError(
                    f"identity rule antecedent does not imply "
                    f"e1.{attribute} = e2.{attribute}; the rule would not "
                    "be a valid identity rule (cf. the paper's r2)"
                )
        self._predicates = preds
        self.name = name

    @property
    def predicates(self) -> Tuple[Predicate, ...]:
        """The conjunction P."""
        return self._predicates

    @property
    def attributes(self) -> FrozenSet[str]:
        """All attributes the rule mentions."""
        return _mentioned_attributes(self._predicates)

    def applies(self, row1: Mapping, row2: Mapping) -> Maybe:
        """Three-valued evaluation of P over the pair.

        TRUE means the pair is *matching* (the rule asserts e1 ≡ e2);
        FALSE and UNKNOWN both mean the rule is silent about the pair —
        an identity rule never asserts distinctness.
        """
        return three_valued_and(
            *(pred.evaluate(row1, row2) for pred in self._predicates)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IdentityRule):
            return NotImplemented
        return frozenset(self._predicates) == frozenset(other._predicates)

    def __hash__(self) -> int:
        return hash(frozenset(self._predicates))

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        body = " ∧ ".join(str(p) for p in self._predicates)
        return f"{label}∀e1,e2∈E, {body} → (e1 ≡ e2)"


def extended_key_rule(attributes: Sequence[str], *, name: str = "") -> IdentityRule:
    """The extended-key equivalence rule (Section 4.1).

    ``(e1.A1=e2.A1) ∧ … ∧ (e1.Ak=e2.Ak) → (e1 ≡ e2)`` for
    ``K_Ext = {A1..Ak}``.
    """
    attrs = list(attributes)
    if not attrs:
        raise MalformedRuleError("extended key cannot be empty")
    if len(set(attrs)) != len(attrs):
        raise MalformedRuleError(f"duplicate attributes in extended key {attrs}")
    return IdentityRule(
        [equality_predicate(attr) for attr in attrs],
        name=name or "extended-key{" + ",".join(attrs) + "}",
    )


def key_equivalence_rule(key_attributes: Sequence[str], *, name: str = "") -> IdentityRule:
    """Key equivalence as an identity rule (Section 3.2).

    Identical in form to :func:`extended_key_rule`; kept separate because
    its applicability assumption differs (the common candidate key must
    remain a key of the integrated world).
    """
    return extended_key_rule(
        key_attributes,
        name=name or "key-equivalence{" + ",".join(key_attributes) + "}",
    )

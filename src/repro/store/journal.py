"""The derivation journal: an append-only log of rule firings.

Every entry in the matching or negative matching table exists because a
rule fired — the extended-key identity rule, a DBA identity or
distinctness rule, a Proposition-1 dual of an ILFD — or because a
knowledgeable user asserted it.  The journal records each of those
events (plus the ILFD derivations that *enabled* them, and the deletes
that retracted them) with the rule id, the pair keys, and a timestamp,
so any persisted conclusion can be explained after the fact without the
sources, and the whole store can be audited offline: replaying the
journal must reproduce the stored tables exactly
(:func:`replay_journal`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Mapping, Optional, Set, Tuple

from repro.store.codec import KeyValues, encode_key

__all__ = [
    "KIND_IDENTITY",
    "KIND_DISTINCTNESS",
    "KIND_ILFD",
    "KIND_ASSERT",
    "KIND_REMOVE",
    "KIND_CHECKPOINT",
    "KIND_ENTITY",
    "JOURNAL_KINDS",
    "JournalEntry",
    "entry_checksum",
    "replay_journal",
    "explain_pair",
    "explain_entity",
]

Pair = Tuple[KeyValues, KeyValues]

KIND_IDENTITY = "identity"
"""An identity rule fired: the pair entered the matching table."""

KIND_DISTINCTNESS = "distinctness"
"""A distinctness rule fired: the pair entered the negative table."""

KIND_ILFD = "ilfd"
"""An ILFD derived an extended-key value for one tuple (one-sided)."""

KIND_ASSERT = "assert"
"""A user-asserted match entered the matching table directly."""

KIND_REMOVE = "remove"
"""A source delete retracted the pair from the matching table."""

KIND_CHECKPOINT = "checkpoint"
"""A snapshot marker: the state up to this entry was checkpointed."""

KIND_ENTITY = "entity_resolution"
"""An entity-resolution decision: a canonical entity was built, one of
its golden-record attributes was decided by a survivorship rule, or a
generalized-uniqueness violation was observed.  Entity entries carry no
pair keys — the entity id and decision detail live in the payload — so
they are invisible to :func:`replay_journal` and never perturb the
matching-table audit."""

JOURNAL_KINDS = (
    KIND_IDENTITY,
    KIND_DISTINCTNESS,
    KIND_ILFD,
    KIND_ASSERT,
    KIND_REMOVE,
    KIND_CHECKPOINT,
    KIND_ENTITY,
)


@dataclass(frozen=True)
class JournalEntry:
    """One rule firing (or table mutation) in the derivation journal.

    Attributes
    ----------
    seq:
        Monotone sequence number assigned by the store on append.
    timestamp:
        Wall-clock seconds since the epoch at append time.
    kind:
        One of :data:`JOURNAL_KINDS`.
    rule:
        The id of the rule that fired — an identity/distinctness rule
        name, an ILFD name, or "" for events with no rule (checkpoints).
    r_key / s_key:
        The pair's identifying key values.  ILFD entries are one-sided:
        only the derived tuple's side is set.
    payload:
        Kind-specific extras, e.g. ``{"derived": {...}}`` for ILFD
        firings or ``{"reason": ...}`` for removes.
    """

    seq: int
    timestamp: float
    kind: str
    rule: str = ""
    r_key: Optional[KeyValues] = None
    s_key: Optional[KeyValues] = None
    payload: Mapping[str, Any] = field(default_factory=dict)

    @property
    def pair(self) -> Optional[Pair]:
        """The (R key, S key) pair, when both sides are present."""
        if self.r_key is not None and self.s_key is not None:
            return (self.r_key, self.s_key)
        return None

    def concerns(self, r_key: Optional[KeyValues], s_key: Optional[KeyValues]) -> bool:
        """True iff the entry touches the given key(s).

        Two-sided entries must agree on every given side; one-sided ILFD
        entries match when their single key equals either given key.
        """
        if self.kind == KIND_ILFD:
            mine = self.r_key if self.r_key is not None else self.s_key
            return mine is not None and mine in (r_key, s_key)
        if r_key is not None and self.r_key != r_key:
            return False
        if s_key is not None and self.s_key != s_key:
            return False
        return r_key is not None or s_key is not None


def entry_checksum(entry: JournalEntry) -> str:
    """Content checksum of one journal entry (hex SHA-256, truncated).

    Covers everything the entry *says* — timestamp, kind, rule, the
    canonical key encodings, and the sorted payload — but **not**
    ``seq``: sequence numbers are reassigned when entries are copied
    between stores (checkpointing, salvage), and the checksum must keep
    certifying the entry's content across that.  Stored alongside each
    entry by the backends and verified by
    :meth:`~repro.store.base.MatchStore.verify_journal`, it turns silent
    bit-rot in a persisted journal into a detected integrity failure.
    """
    material = json.dumps(
        [
            repr(entry.timestamp),
            entry.kind,
            entry.rule,
            encode_key(entry.r_key) if entry.r_key is not None else None,
            encode_key(entry.s_key) if entry.s_key is not None else None,
            dict(entry.payload),
        ],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]


def replay_journal(
    entries: Iterable[JournalEntry],
) -> Tuple[Set[Pair], Set[Pair]]:
    """Reconstruct (matching pairs, negative pairs) from the journal alone.

    Identity and assert entries add to the matching set, removes retract
    from it, distinctness entries add to the negative set; ILFD and
    checkpoint entries carry no table mutation.  The result is what the
    store's tables *must* equal for the journal to be a faithful account
    (enforced by :meth:`~repro.store.base.MatchStore.verify_journal`).
    """
    matches: Set[Pair] = set()
    negatives: Set[Pair] = set()
    for entry in entries:
        pair = entry.pair
        if pair is None:
            continue
        if entry.kind in (KIND_IDENTITY, KIND_ASSERT):
            matches.add(pair)
        elif entry.kind == KIND_REMOVE:
            matches.discard(pair)
        elif entry.kind == KIND_DISTINCTNESS:
            negatives.add(pair)
    return matches, negatives


def _format_key(key: Optional[KeyValues]) -> str:
    if key is None:
        return "?"
    return "[" + ", ".join(f"{attr}={value!r}" for attr, value in key) + "]"


def explain_pair(
    entries: Iterable[JournalEntry],
    r_key: Optional[KeyValues] = None,
    s_key: Optional[KeyValues] = None,
) -> str:
    """Reconstruct the rule-firing chain for one pair, journal-only.

    Renders, in journal order, every ILFD derivation that touched either
    tuple and every table mutation recorded for the pair, ending with the
    pair's current verdict — the provenance story behind one line of
    MT_RS or NMT_RS, recoverable long after the identification run.
    """
    relevant: List[JournalEntry] = [
        entry for entry in entries if entry.concerns(r_key, s_key)
    ]
    header = f"pair R{_format_key(r_key)} / S{_format_key(s_key)}"
    if not relevant:
        return f"{header}\n  (no journal entries; the pair was never touched)"
    lines = [header]
    verdict = "undetermined"
    for entry in relevant:
        stamp = f"#{entry.seq}"
        if entry.kind == KIND_ILFD:
            side = "R" if entry.r_key is not None else "S"
            derived = entry.payload.get("derived", {})
            values = ", ".join(f"{a}={v!r}" for a, v in sorted(derived.items()))
            lines.append(
                f"  {stamp} ilfd {entry.rule or '(unnamed)'} derived "
                f"{values or 'nothing'} for {side}"
                f"{_format_key(entry.r_key if side == 'R' else entry.s_key)}"
            )
        elif entry.kind in (KIND_IDENTITY, KIND_ASSERT):
            how = (
                f"identity rule {entry.rule}"
                if entry.kind == KIND_IDENTITY
                else "user assertion"
            )
            lines.append(f"  {stamp} MATCH recorded by {how}")
            verdict = "MATCH"
        elif entry.kind == KIND_DISTINCTNESS:
            lines.append(
                f"  {stamp} NON-MATCH recorded by distinctness rule {entry.rule}"
            )
            verdict = "NON-MATCH"
        elif entry.kind == KIND_REMOVE:
            reason = entry.payload.get("reason", "source delete")
            lines.append(f"  {stamp} match removed ({reason})")
            verdict = "undetermined (retracted)"
        elif entry.kind == KIND_CHECKPOINT:
            lines.append(f"  {stamp} checkpoint boundary")
    lines.append(f"  verdict: {verdict}")
    return "\n".join(lines)


def explain_entity(entries: Iterable[JournalEntry], entity_id: str) -> str:
    """Reconstruct the resolution log for one canonical entity.

    Renders, in journal order, every :data:`KIND_ENTITY` entry whose
    payload names *entity_id*: the cluster's formation, each
    survivorship decision with the rule that made it, and any
    generalized-uniqueness violations observed while building it — the
    golden record's provenance story, recoverable from the store alone.
    """
    relevant = [
        entry
        for entry in entries
        if entry.kind == KIND_ENTITY and entry.payload.get("entity_id") == entity_id
    ]
    header = f"entity {entity_id}"
    if not relevant:
        return f"{header}\n  (no resolution-log entries; the entity was never built)"
    lines = [header]
    for entry in relevant:
        stamp = f"#{entry.seq}"
        event = entry.payload.get("event", "")
        if event == "golden":
            members = entry.payload.get("members", [])
            lines.append(
                f"  {stamp} golden record built from {len(members)} member(s): "
                + ", ".join(str(member) for member in members)
            )
        elif event == "decision":
            attribute = entry.payload.get("attribute", "?")
            value = entry.payload.get("value")
            source = entry.payload.get("source", "?")
            contested = " (contested)" if entry.payload.get("contested") else ""
            lines.append(
                f"  {stamp} {attribute}={value!r} survived from {source} "
                f"by rule {entry.rule or '(unnamed)'}{contested}"
            )
        elif event == "violation":
            source = entry.payload.get("source", "?")
            count = entry.payload.get("count", "?")
            lines.append(
                f"  {stamp} uniqueness VIOLATION: {count} tuples from "
                f"{source} share the entity's extended key"
            )
        else:
            lines.append(f"  {stamp} {event or 'entity event'}")
    return "\n".join(lines)

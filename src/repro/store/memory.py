"""The in-memory backend: current behaviour, now behind the protocol.

:class:`MemoryStore` keeps everything in plain dicts and lists — zero
durability, zero I/O, the semantics the repo had before the store
subsystem existed.  It is the default backend, the reference
implementation the SQLite property tests compare against, and the
cheapest way to get a queryable journal for a single process.
"""

from __future__ import annotations

import contextlib
from dataclasses import replace
from typing import Dict, Iterator, List, Optional, Tuple

from repro.observability.tracer import Tracer
from repro.relational.row import Row
from repro.resilience.faults import NO_OP_INJECTOR, SITE_STORE_COMMIT, FaultInjector
from repro.store.base import MatchStore, Pair
from repro.store.codec import KeyValues
from repro.store.entity import EntityRecord
from repro.store.journal import JournalEntry, entry_checksum

__all__ = ["MemoryStore"]


class MemoryStore(MatchStore):
    """Dict-backed :class:`~repro.store.base.MatchStore` (no durability).

    ``transaction()`` takes a full snapshot on entry and restores it if
    the block raises, so batch writes are all-or-nothing here too —
    the same contract the SQLite backend gets from real transactions.
    The optional *fault_injector* is consulted at the ``store.commit``
    site at the moment the outermost transaction would become durable:
    an injected fault there restores the snapshot (journal appends and
    sequence numbers included) and propagates, modelling a failed commit
    on a backend that has no real one.
    """

    def __init__(
        self,
        *,
        tracer: Optional[Tracer] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        super().__init__(tracer=tracer)
        self._matches: Dict[Pair, Tuple[Row, Row]] = {}
        self._non_matches: Dict[Pair, Tuple[Row, Row]] = {}
        self._journal: List[JournalEntry] = []
        self._checksums: Dict[int, str] = {}
        self._meta: Dict[str, str] = {}
        self._rows: Dict[str, Dict[KeyValues, Tuple[Row, Row]]] = {
            "r": {},
            "s": {},
        }
        self._entities: Dict[str, EntityRecord] = {}
        self._next_seq = 1
        self._txn_depth = 0
        self._injector = (
            fault_injector if fault_injector is not None else NO_OP_INJECTOR
        )

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def put_match(
        self, r_key: KeyValues, s_key: KeyValues, r_row: Row, s_row: Row
    ) -> None:
        self._matches[(r_key, s_key)] = (r_row, s_row)

    def put_non_match(
        self, r_key: KeyValues, s_key: KeyValues, r_row: Row, s_row: Row
    ) -> None:
        self._non_matches[(r_key, s_key)] = (r_row, s_row)

    def delete_match(self, r_key: KeyValues, s_key: KeyValues) -> bool:
        return self._matches.pop((r_key, s_key), None) is not None

    def match_items(self) -> Iterator[Tuple[Pair, Tuple[Row, Row]]]:
        return iter(list(self._matches.items()))

    def non_match_items(self) -> Iterator[Tuple[Pair, Tuple[Row, Row]]]:
        return iter(list(self._non_matches.items()))

    def has_match(self, r_key: KeyValues, s_key: KeyValues) -> bool:
        return (r_key, s_key) in self._matches

    def has_non_match(self, r_key: KeyValues, s_key: KeyValues) -> bool:
        return (r_key, s_key) in self._non_matches

    def append_journal(self, entry: JournalEntry) -> JournalEntry:
        stored = replace(entry, seq=self._next_seq)
        self._next_seq += 1
        self._journal.append(stored)
        self._checksums[stored.seq] = entry_checksum(stored)
        return stored

    def _journal_checksums(self) -> Dict[int, str]:
        return dict(self._checksums)

    def journal_entries(
        self,
        *,
        r_key: Optional[KeyValues] = None,
        s_key: Optional[KeyValues] = None,
    ) -> List[JournalEntry]:
        if r_key is None and s_key is None:
            return list(self._journal)
        return [
            entry for entry in self._journal if entry.concerns(r_key, s_key)
        ]

    def set_meta(self, key: str, value: str) -> None:
        self._meta[key] = value

    def get_meta(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return self._meta.get(key, default)

    def meta_items(self) -> Iterator[Tuple[str, str]]:
        return iter(list(self._meta.items()))

    def put_row(self, side: str, key: KeyValues, raw: Row, extended: Row) -> None:
        # setdefault: registered N-source sides get their dict on first write.
        self._rows.setdefault(self._check_side(side), {})[key] = (raw, extended)

    def delete_row(self, side: str, key: KeyValues) -> bool:
        rows = self._rows.get(self._check_side(side), {})
        return rows.pop(key, None) is not None

    def row_items(self, side: str) -> Iterator[Tuple[KeyValues, Row, Row]]:
        side_rows = self._rows.get(self._check_side(side), {})
        return iter(
            [(key, raw, extended) for key, (raw, extended) in side_rows.items()]
        )

    def put_entity(self, record: EntityRecord) -> None:
        self._entities[record.entity_id] = record

    def delete_entity(self, entity_id: str) -> bool:
        return self._entities.pop(entity_id, None) is not None

    def get_entity(self, entity_id: str) -> Optional[EntityRecord]:
        return self._entities.get(entity_id)

    def entity_items(self) -> Iterator[EntityRecord]:
        return iter(sorted(self._entities.values(), key=lambda e: e.entity_id))

    @contextlib.contextmanager
    def transaction(self):
        if self._txn_depth:  # nested: the outermost snapshot already guards
            self._txn_depth += 1
            try:
                yield self
            finally:
                self._txn_depth -= 1
            return
        snapshot = (
            dict(self._matches),
            dict(self._non_matches),
            list(self._journal),
            dict(self._checksums),
            dict(self._meta),
            {side: dict(rows) for side, rows in self._rows.items()},
            dict(self._entities),
            self._next_seq,
        )

        def restore() -> None:
            (
                self._matches,
                self._non_matches,
                self._journal,
                self._checksums,
                self._meta,
                self._rows,
                self._entities,
                self._next_seq,
            ) = snapshot
            self._discard_metric_buffer()

        self._txn_depth = 1
        self._begin_metric_buffer()
        try:
            yield self
        except BaseException:
            restore()
            raise
        else:
            try:
                self._injector.fire(SITE_STORE_COMMIT)
            except BaseException:
                restore()
                if self._tracer.enabled:
                    self._tracer.metrics.inc("resilience.commit_failures")
                raise
            self._commit_metric_buffer()
            if self._tracer.enabled:
                self._tracer.metrics.inc("store.transactions")
        finally:
            self._txn_depth = 0

    def clear(self) -> None:
        self._matches.clear()
        self._non_matches.clear()
        self._journal.clear()
        self._checksums.clear()
        self._meta.clear()
        self._rows = {"r": {}, "s": {}}
        self._entities.clear()
        self._next_seq = 1

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return (
            f"<MemoryStore matches={len(self._matches)} "
            f"non_matches={len(self._non_matches)} "
            f"journal={len(self._journal)}>"
        )

"""Canonical serialisation of keys, rows, and schemas.

Everything a :class:`~repro.store.base.MatchStore` persists is reduced to
deterministic JSON text: the same key or row always encodes to the same
byte string, so encoded keys are usable as primary keys in SQLite and a
save → load round trip is *bit-identical* (the property the store test
suite asserts).

The one non-JSON value in the data model is the
:data:`~repro.relational.nulls.NULL` marker — Section 6.2's "NULL is not
equal to NULL" sentinel — which must survive a round trip as the same
singleton, not as ``None`` (user data may legitimately contain ``None``).
NULL and the few structured values are escaped through one-key marker
objects: ``{"~": "null"}`` for NULL, ``{"~": "tuple", "items": [...]}``
for tuples, and ``{"~": "escape", "value": ...}`` shields any genuine
mapping that itself carries a ``"~"`` key.
"""

from __future__ import annotations

import json
from typing import Any, List, Mapping, Tuple

from repro.relational.attribute import Attribute, Domain
from repro.relational.nulls import NULL, is_null
from repro.relational.row import Row
from repro.relational.schema import Schema
from repro.store.errors import StoreCodecError

__all__ = [
    "encode_value",
    "decode_value",
    "encode_key",
    "decode_key",
    "encode_row",
    "decode_row",
    "encode_schema",
    "decode_schema",
]

KeyValues = Tuple[Tuple[str, Any], ...]

_MARKER = "~"
_DTYPES = {"str": str, "int": int, "float": float, "bool": bool}


def encode_value(value: Any) -> Any:
    """One domain value as a JSON-safe object (NULL-aware)."""
    if is_null(value):
        return {_MARKER: "null"}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, tuple):
        return {_MARKER: "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, Mapping):
        return {
            _MARKER: "escape",
            "value": {str(k): encode_value(v) for k, v in value.items()},
        }
    raise StoreCodecError(
        f"cannot serialise value of type {type(value).__name__}: {value!r}"
    )


def decode_value(encoded: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(encoded, dict):
        marker = encoded.get(_MARKER)
        if marker == "null":
            return NULL
        if marker == "tuple":
            return tuple(decode_value(v) for v in encoded["items"])
        if marker == "escape":
            return {k: decode_value(v) for k, v in encoded["value"].items()}
        raise StoreCodecError(f"unknown value marker in {encoded!r}")
    return encoded


def encode_key(key: KeyValues) -> str:
    """A ``KeyValues`` tuple as canonical JSON text.

    ``KeyValues`` is already sorted by attribute (see
    :func:`repro.core.matching_table.key_values`), so the encoding is
    deterministic without re-sorting — identical keys encode identically,
    making the text usable as a SQLite primary-key column.
    """
    try:
        pairs: List[List[Any]] = [
            [attr, encode_value(value)] for attr, value in key
        ]
    except (TypeError, ValueError) as exc:
        raise StoreCodecError(f"malformed key {key!r}: {exc}") from exc
    return json.dumps(pairs, separators=(",", ":"), sort_keys=False)


def decode_key(text: str) -> KeyValues:
    """Inverse of :func:`encode_key`."""
    try:
        pairs = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StoreCodecError(f"malformed key text {text!r}: {exc}") from exc
    return tuple((attr, decode_value(value)) for attr, value in pairs)


def encode_row(row: Mapping[str, Any]) -> str:
    """A row as canonical JSON text (attributes sorted, NULL-aware)."""
    return json.dumps(
        {name: encode_value(value) for name, value in row.items()},
        separators=(",", ":"),
        sort_keys=True,
    )


def decode_row(text: str) -> Row:
    """Inverse of :func:`encode_row`, always producing a :class:`Row`."""
    try:
        values = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StoreCodecError(f"malformed row text {text!r}: {exc}") from exc
    return Row({name: decode_value(value) for name, value in values.items()})


def encode_schema(schema: Schema) -> str:
    """A schema (names, dtypes, candidate keys) as JSON text.

    Enumerated domains are not preserved — checkpoints store the dtype
    only, which is what row validation on resume needs.
    """
    return json.dumps(
        {
            "names": list(schema.names),
            "dtypes": [attr.domain.dtype.__name__ for attr in schema.attributes],
            "keys": [sorted(key) for key in schema.keys],
        },
        separators=(",", ":"),
    )


def decode_schema(text: str) -> Schema:
    """Inverse of :func:`encode_schema`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StoreCodecError(f"malformed schema text {text!r}: {exc}") from exc
    try:
        attributes = [
            Attribute(name, Domain(_DTYPES[dtype]))
            for name, dtype in zip(data["names"], data["dtypes"])
        ]
        return Schema(attributes, data["keys"])
    except (KeyError, TypeError) as exc:
        raise StoreCodecError(f"malformed schema record {data!r}: {exc}") from exc

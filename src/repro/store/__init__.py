"""``repro.store`` — durable matching-table persistence.

The paper's matching table MT_RS and negative matching table NMT_RS are
artifacts meant to outlive one identification run and be reused across
integration sessions.  This package persists them:

- :class:`~repro.store.base.MatchStore` — the backend protocol,
- :class:`~repro.store.memory.MemoryStore` — dicts, the default
  (historical in-process behaviour),
- :class:`~repro.store.sqlite.SqliteStore` — one SQLite file (stdlib
  ``sqlite3``), durable across processes,
- the **derivation journal** (:mod:`repro.store.journal`) — an
  append-only log of every rule firing, so any persisted conclusion can
  be explained (``repro explain-pair``) and audited offline,
- **checkpoint/resume** (:mod:`repro.store.checkpoint`) — snapshot and
  reload whole incremental sessions, delta cursor included.

``make_store`` parses the CLI's ``--store`` spec: ``memory``,
``sqlite:PATH``, or a bare ``*.sqlite`` / ``*.db`` path.
"""

from __future__ import annotations

from typing import Optional

from repro.observability.tracer import Tracer
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.store.base import MatchStore
from repro.store.checkpoint import (
    CHECKPOINT_FORMAT,
    SalvageReport,
    checkpoint_incremental,
    resume_incremental,
    salvage_incremental,
)
from repro.store.codec import (
    decode_key,
    decode_row,
    decode_schema,
    encode_key,
    encode_row,
    encode_schema,
)
from repro.store.entity import (
    ENTITY_ID_PREFIX,
    EntityRecord,
    canonical_entity_id,
)
from repro.store.errors import StoreCodecError, StoreError, StoreIntegrityError
from repro.store.journal import (
    JOURNAL_KINDS,
    KIND_ASSERT,
    KIND_CHECKPOINT,
    KIND_DISTINCTNESS,
    KIND_ENTITY,
    KIND_IDENTITY,
    KIND_ILFD,
    KIND_REMOVE,
    JournalEntry,
    entry_checksum,
    explain_entity,
    explain_pair,
    replay_journal,
)
from repro.store.memory import MemoryStore
from repro.store.sqlite import SqliteStore

__all__ = [
    "CHECKPOINT_FORMAT",
    "ENTITY_ID_PREFIX",
    "EntityRecord",
    "JOURNAL_KINDS",
    "KIND_ASSERT",
    "KIND_CHECKPOINT",
    "KIND_DISTINCTNESS",
    "KIND_ENTITY",
    "KIND_IDENTITY",
    "KIND_ILFD",
    "KIND_REMOVE",
    "JournalEntry",
    "MatchStore",
    "MemoryStore",
    "SalvageReport",
    "SqliteStore",
    "StoreCodecError",
    "StoreError",
    "StoreIntegrityError",
    "canonical_entity_id",
    "checkpoint_incremental",
    "decode_key",
    "decode_row",
    "decode_schema",
    "encode_key",
    "encode_row",
    "encode_schema",
    "entry_checksum",
    "explain_entity",
    "explain_pair",
    "make_store",
    "replay_journal",
    "resume_incremental",
    "salvage_incremental",
]


def make_store(
    spec: str,
    *,
    tracer: Optional[Tracer] = None,
    retry_policy: Optional["RetryPolicy"] = None,
    fault_injector: Optional["FaultInjector"] = None,
) -> MatchStore:
    """Build a store from a CLI spec string.

    ``"memory"`` → :class:`MemoryStore`; ``"sqlite:PATH"`` (or a bare
    path ending in ``.sqlite`` / ``.sqlite3`` / ``.db``) →
    :class:`SqliteStore` at that path.  *retry_policy* (SQLite commits)
    and *fault_injector* are forwarded to the backend.
    """
    text = spec.strip()
    if not text:
        raise StoreError("empty store spec")
    if text == "memory":
        return MemoryStore(tracer=tracer, fault_injector=fault_injector)
    if text.startswith("sqlite:"):
        path = text[len("sqlite:"):]
        if not path:
            raise StoreError("sqlite store spec needs a path: sqlite:PATH")
        return SqliteStore(
            path,
            tracer=tracer,
            retry_policy=retry_policy,
            fault_injector=fault_injector,
        )
    if text.endswith((".sqlite", ".sqlite3", ".db")):
        return SqliteStore(
            text,
            tracer=tracer,
            retry_policy=retry_policy,
            fault_injector=fault_injector,
        )
    raise StoreError(
        f"unrecognised store spec {spec!r}; expected 'memory', 'sqlite:PATH', "
        "or a path ending in .sqlite/.sqlite3/.db"
    )

"""Checkpoint/resume for incremental identification sessions.

A checkpoint is one SQLite file carrying everything an
:class:`~repro.federation.incremental.IncrementalIdentifier` is: both
source relations (raw and ILFD-extended rows), the matched-pair set, the
derivation journal, the knowledge (extended key + ILFD set + policy),
and the **delta cursor** — the identifier's monotone ``version`` counter,
so a resumed session knows exactly how much update history the snapshot
covers and continues applying deltas without re-evaluating settled
pairs.

On load, the journal is replayed and must reproduce the stored matching
table (:meth:`~repro.store.base.MatchStore.verify_journal`), and the
paper's uniqueness/consistency constraints are audited
(:meth:`~repro.store.base.MatchStore.check_constraints`) — a checkpoint
whose provenance cannot explain its contents is rejected as corrupt
rather than silently trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import sqlite3
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.core.errors import CoreError
from repro.ilfd.conditions import Condition
from repro.ilfd.derivation import DerivationPolicy
from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.observability.tracer import NO_OP_TRACER, Tracer
from repro.resilience.faults import NO_OP_INJECTOR, SITE_CHECKPOINT, FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.store.base import SIDES, MatchStore
from repro.store.codec import (
    decode_row,
    decode_schema,
    decode_value,
    encode_key,
    encode_row,
    encode_schema,
    encode_value,
)
from repro.store.errors import StoreError, StoreIntegrityError
from repro.store.journal import entry_checksum, replay_journal
from repro.store.sqlite import SqliteStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.federation.incremental import IncrementalIdentifier
    from repro.relational.relation import Relation

__all__ = [
    "CHECKPOINT_FORMAT",
    "SalvageReport",
    "checkpoint_incremental",
    "resume_incremental",
    "salvage_incremental",
]

CHECKPOINT_FORMAT = "repro-store/1"

META_FORMAT = "format"
META_KIND = "kind"
META_CREATED = "created"
META_R_SCHEMA = "r_schema"
META_S_SCHEMA = "s_schema"
META_EXTENDED_KEY = "extended_key"
META_ILFDS = "ilfds"
META_POLICY = "policy"
META_VERSION = "version"

META_DIGEST_PREFIX = "section_digest."
_DIGEST_SECTIONS = ("rows_r", "rows_s", "matches", "journal")

_KIND_INCREMENTAL = "incremental-checkpoint"


def _encode_ilfds(ilfds: ILFDSet) -> str:
    """ILFDs as JSON — lossless, unlike the DBA-facing text format.

    ``repro.ilfd.io``'s knowledge-base syntax cannot represent every
    rule name (a name containing ``:`` re-parses differently), so
    checkpoints carry the structure itself: name plus (attribute,
    value) condition lists, values going through the store codec.
    """
    return json.dumps(
        [
            {
                "name": ilfd.name,
                "antecedent": [
                    [c.attribute, encode_value(c.value)]
                    for c in sorted(ilfd.antecedent)
                ],
                "consequent": [
                    [c.attribute, encode_value(c.value)]
                    for c in sorted(ilfd.consequent)
                ],
            }
            for ilfd in ilfds
        ],
        separators=(",", ":"),
    )


def _decode_ilfds(text: str) -> ILFDSet:
    """Inverse of :func:`_encode_ilfds`."""
    return ILFDSet(
        ILFD(
            [
                Condition(attr, decode_value(value))
                for attr, value in record["antecedent"]
            ],
            [
                Condition(attr, decode_value(value))
                for attr, value in record["consequent"]
            ],
            name=record["name"],
        )
        for record in json.loads(text or "[]")
    )


def _section_digest(parts: Iterable[str]) -> str:
    """Order-sensitive digest of one checkpoint section's canonical text."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:32]


def compute_section_digests(store: MatchStore) -> Dict[str, str]:
    """Content digests of a store's row, match, and journal sections.

    Built over the canonical codec encodings in each section's stable
    iteration order, so the digest of an untouched file reproduces
    exactly.  Checkpoints seal these into their metadata; resume
    recomputes and compares them before trusting anything
    (``docs/RESILIENCE.md``).
    """
    digests: Dict[str, str] = {}
    for side in SIDES:
        digests[f"rows_{side}"] = _section_digest(
            f"{encode_key(key)}|{encode_row(raw)}|{encode_row(extended)}"
            for key, raw, extended in store.row_items(side)
        )
    digests["matches"] = _section_digest(
        f"{encode_key(r_key)}|{encode_key(s_key)}"
        f"|{encode_row(r_row)}|{encode_row(s_row)}"
        for (r_key, s_key), (r_row, s_row) in store.match_items()
    )
    digests["journal"] = _section_digest(
        entry_checksum(entry) for entry in store.journal_entries()
    )
    return digests


def checkpoint_incremental(
    identifier: "IncrementalIdentifier",
    path: str,
    *,
    tracer: Optional[Tracer] = None,
    fault_injector: Optional[FaultInjector] = None,
) -> SqliteStore:
    """Snapshot *identifier* into a SQLite checkpoint at *path*.

    Overwrites any existing checkpoint at *path*.  Returns the (still
    open) destination store; callers that only want the file should
    ``close()`` it.

    The snapshot is **atomic at the file level**: it is written to
    ``path + ".tmp"`` and moved into place with :func:`os.replace` only
    once complete, so a crash (or ``kill -9``) mid-checkpoint leaves any
    previous checkpoint at *path* untouched and resumable.  Section
    digests (:func:`compute_section_digests`) are sealed into the
    metadata for resume to verify.  The optional *fault_injector* is
    consulted once at the ``store.checkpoint`` site before anything is
    written.
    """
    tracer = tracer if tracer is not None else NO_OP_TRACER
    injector = fault_injector if fault_injector is not None else NO_OP_INJECTOR
    injector.fire(SITE_CHECKPOINT)
    target = str(path)
    atomic = target != ":memory:"
    work_path = target + ".tmp" if atomic else target
    dest = SqliteStore(work_path, tracer=tracer)
    try:
        size = _write_checkpoint(identifier, dest, target, tracer)
    except BaseException:
        dest.close()
        if atomic and os.path.exists(work_path):
            os.remove(work_path)
        raise
    if atomic:
        dest.close()
        os.replace(work_path, target)
        dest = SqliteStore(target, tracer=tracer)
    if tracer.enabled:
        metrics = tracer.metrics
        metrics.inc("store.checkpoints")
        metrics.observe("store.checkpoint_bytes", size)
    return dest


def _write_checkpoint(
    identifier: "IncrementalIdentifier",
    dest: SqliteStore,
    target: str,
    tracer: Tracer,
) -> int:
    with tracer.span("store.checkpoint", path=target) as span:
        dest.clear()
        with dest.transaction():
            dest.set_meta(META_FORMAT, CHECKPOINT_FORMAT)
            dest.set_meta(META_KIND, _KIND_INCREMENTAL)
            dest.set_meta(META_CREATED, repr(time.time()))
            dest.set_meta(META_R_SCHEMA, encode_schema(identifier._r.schema))
            dest.set_meta(META_S_SCHEMA, encode_schema(identifier._s.schema))
            dest.set_meta(
                META_EXTENDED_KEY,
                json.dumps(list(identifier.extended_key.attributes)),
            )
            dest.set_meta(META_ILFDS, _encode_ilfds(identifier.ilfds))
            dest.set_meta(META_POLICY, identifier.policy.value)
            dest.set_meta(META_VERSION, str(identifier.version))
            dest.set_key_attributes(
                identifier._r.key_attrs, identifier._s.key_attrs
            )
            for side_name, side in (("r", identifier._r), ("s", identifier._s)):
                for key, raw in side.raw.items():
                    dest.put_row(side_name, key, raw, side.extended[key])
            for r_key, s_key in identifier.match_pairs():
                dest.put_match(
                    r_key,
                    s_key,
                    identifier._r.extended[r_key],
                    identifier._s.extended[s_key],
                )
            for entry in identifier.store.journal_entries():
                dest.append_journal(entry)
            dest.record_checkpoint_marker(
                note=f"version={identifier.version}"
            )
        # Seal the section digests last, once every section is final.
        with dest.transaction():
            for name, digest in compute_section_digests(dest).items():
                dest.set_meta(META_DIGEST_PREFIX + name, digest)
        size = dest.size_bytes()
        span.set("bytes", size)
        span.set("matches", len(identifier.match_pairs()))
    return size


def resume_incremental(
    path: str,
    *,
    tracer: Optional[Tracer] = None,
    verify: bool = True,
    retry_policy: Optional[RetryPolicy] = None,
    fault_injector: Optional[FaultInjector] = None,
) -> "IncrementalIdentifier":
    """Reload a checkpoint and return a live, continuable identifier.

    The resumed identifier owns the opened :class:`SqliteStore` (further
    updates persist into the same file) and its ``version`` continues
    from the checkpointed delta cursor.  With ``verify=True`` (default)
    the file is integrity-checked (truncation, malformed pages), the
    sealed section digests are recomputed and compared, the journal is
    replayed against the stored tables (checksums and seq contiguity
    included), and the uniqueness/consistency constraints are audited —
    all before any state is trusted; failures raise
    :class:`~repro.store.errors.StoreIntegrityError`, and
    :func:`salvage_incremental` is the recovery path.  Sealed digests
    are cleared after verification (the live session writes through this
    file, so they would immediately go stale).
    """
    from repro.federation.incremental import IncrementalIdentifier

    tracer = tracer if tracer is not None else NO_OP_TRACER
    start = time.perf_counter()
    store = SqliteStore(
        path,
        tracer=tracer,
        retry_policy=retry_policy,
        fault_injector=fault_injector,
    )
    with tracer.span("store.resume", path=str(path)) as span:
        try:
            fmt = store.get_meta(META_FORMAT)
        except sqlite3.DatabaseError as exc:
            raise StoreIntegrityError(
                f"checkpoint {path!r} is unreadable: {exc}"
            ) from exc
        if fmt != CHECKPOINT_FORMAT:
            raise StoreError(
                f"{path!r} is not a repro checkpoint "
                f"(format {fmt!r}, expected {CHECKPOINT_FORMAT!r})"
            )
        kind = store.get_meta(META_KIND)
        if kind != _KIND_INCREMENTAL:
            raise StoreError(f"{path!r} holds a {kind!r}, not an incremental checkpoint")
        if verify:
            store.integrity_check()
            sealed = {
                name: store.get_meta(META_DIGEST_PREFIX + name, "")
                for name in _DIGEST_SECTIONS
            }
            if any(sealed.values()):
                actual = compute_section_digests(store)
                for name, digest in sealed.items():
                    if digest and digest != actual.get(name, ""):
                        raise StoreIntegrityError(
                            f"checkpoint {path!r} section {name!r} fails its "
                            "sealed digest — the file was corrupted after it "
                            "was written"
                        )
            store.check_constraints()
            store.verify_journal()
        # Unseal: live updates write through this file, so the sealed
        # digests stop describing it the moment the session continues.
        with store.transaction():
            for name in _DIGEST_SECTIONS:
                if store.get_meta(META_DIGEST_PREFIX + name, ""):
                    store.set_meta(META_DIGEST_PREFIX + name, "")
        r_schema = decode_schema(store.get_meta(META_R_SCHEMA, ""))
        s_schema = decode_schema(store.get_meta(META_S_SCHEMA, ""))
        extended_key = json.loads(store.get_meta(META_EXTENDED_KEY, "[]"))
        ilfds = _decode_ilfds(store.get_meta(META_ILFDS, ""))
        policy = DerivationPolicy(
            store.get_meta(META_POLICY, DerivationPolicy.FIRST_MATCH.value)
        )
        identifier = IncrementalIdentifier(
            r_schema,
            s_schema,
            extended_key,
            ilfds=ilfds,
            policy=policy,
            tracer=tracer,
            store=store,
            retry_policy=retry_policy,
            fault_injector=fault_injector,
        )
        # Restore state directly (no journaling: these are not new events)
        # — settled pairs are *loaded*, never re-evaluated.
        for side_name, side in (("r", identifier._r), ("s", identifier._s)):
            for key, raw, extended in store.row_items(side_name):
                side.raw[key] = raw
                side.extended[key] = extended
                complete = identifier._complete_values(extended)
                if complete is not None:
                    side.index[complete].add(key)
        identifier._matches = store.match_pairs()
        identifier.version = int(store.get_meta(META_VERSION, "0"))
        span.set("matches", len(identifier._matches))
        span.set("rows", len(identifier._r.raw) + len(identifier._s.raw))
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    if tracer.enabled:
        metrics = tracer.metrics
        metrics.inc("store.resumes")
        metrics.observe("store.load_ms", elapsed_ms)
    return identifier


@dataclass
class SalvageReport:
    """What :func:`salvage_incremental` could and could not recover."""

    path: str
    checkpoint_readable: bool = False
    rows_recovered: Dict[str, int] = field(
        default_factory=lambda: {"r": 0, "s": 0}
    )
    journal_recovered: int = 0
    journal_total: int = 0
    matches_rebuilt: int = 0
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-paragraph human rendering (the CLI prints this)."""
        lines = [
            f"salvage of {self.path}:",
            "  checkpoint file "
            + ("partially readable" if self.checkpoint_readable else "unreadable"),
            f"  rows recovered: R={self.rows_recovered.get('r', 0)} "
            f"S={self.rows_recovered.get('s', 0)}",
            f"  journal prefix verified: {self.journal_recovered}"
            f"/{self.journal_total} entries",
            f"  matches re-derived: {self.matches_rebuilt}",
        ]
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def _fetch_surviving(
    conn: sqlite3.Connection, query: str, params: Tuple = ()
) -> Tuple[List[Tuple], Optional[str]]:
    """Fetch rows one at a time, keeping what came through before an error.

    ``fetchall`` on a damaged file is all-or-nothing; fetching row by
    row salvages every record that precedes the first corrupt page.
    """
    records: List[Tuple] = []
    try:
        cursor = conn.execute(query, params)
        while True:
            record = cursor.fetchone()
            if record is None:
                return records, None
            records.append(record)
    except sqlite3.DatabaseError as exc:
        return records, str(exc)


def _padded_scratch_copy(path: str) -> Optional[str]:
    """Zero-pad a scratch copy of a truncated database to its header size.

    SQLite refuses *every* read on a file shorter than the size its
    header declares, even though the leading pages are intact.  Padding
    a copy back out with zero bytes makes those pages readable again;
    queries that walk into the zeroed tail still fail, which the
    per-record fetch guards turn into partial recovery.  Returns the
    scratch path (caller removes it), or ``None`` when the file is not a
    short SQLite database.
    """
    try:
        with open(path, "rb") as handle:
            header = handle.read(100)
        if len(header) < 100 or not header.startswith(b"SQLite format 3\x00"):
            return None
        page_size = int.from_bytes(header[16:18], "big")
        if page_size == 1:
            page_size = 65536
        declared = int.from_bytes(header[28:32], "big") * page_size
        actual = os.path.getsize(path)
        # Short of the declared size, or tail-ragged (not page-aligned).
        target = max(declared, -(-actual // page_size) * page_size)
        if target <= actual:
            return None
        scratch = path + ".salvage-padded"
        shutil.copyfile(path, scratch)
        with open(scratch, "r+b") as handle:
            handle.truncate(target)
        return scratch
    except OSError:
        return None


def _read_damaged_checkpoint(path: str, report: SalvageReport):
    """Raw, read-only scavenge of whatever a damaged checkpoint yields.

    Deliberately bypasses :class:`SqliteStore` — even opening the store
    class touches the file (schema init), which a truncated database
    rejects wholesale.  Every section and every record is read under its
    own guard; losses become report notes, never exceptions.
    """
    recovered_rows: Dict[str, List] = {"r": [], "s": []}
    recovered_meta: Dict[str, str] = {}
    prefix_entries: List = []
    scratch: Optional[str] = None
    conn: Optional[sqlite3.Connection] = None
    try:
        conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
        conn.execute("SELECT 1 FROM sqlite_master LIMIT 1").fetchone()
    except sqlite3.Error as exc:
        if conn is not None:
            conn.close()
            conn = None
        scratch = _padded_scratch_copy(path)
        if scratch is not None:
            report.notes.append(
                f"file rejected wholesale ({exc}); reading a zero-padded copy"
            )
            try:
                conn = sqlite3.connect(f"file:{scratch}?mode=ro", uri=True)
            except sqlite3.Error as exc2:
                report.notes.append(f"padded copy unreadable too: {exc2}")
        else:
            report.notes.append(f"checkpoint cannot be opened: {exc}")
        if conn is None:
            if scratch is not None:
                os.remove(scratch)
            return recovered_rows, recovered_meta, prefix_entries
    try:
        meta_records, error = _fetch_surviving(
            conn, "SELECT key, value FROM meta"
        )
        report.checkpoint_readable = bool(meta_records) or error is None
        recovered_meta = {key: value for key, value in meta_records}
        if error:
            report.notes.append(f"metadata partially unreadable: {error}")
        for side in SIDES:
            records, error = _fetch_surviving(
                conn,
                "SELECT raw FROM source_rows WHERE side = ? ORDER BY key",
                (side,),
            )
            if error:
                report.notes.append(
                    f"{side.upper()} rows partially unreadable: {error}"
                )
            skipped = 0
            for (raw_text,) in records:
                try:
                    recovered_rows[side].append(decode_row(raw_text))
                except Exception:
                    skipped += 1
            if skipped:
                report.notes.append(
                    f"{skipped} {side.upper()} row(s) failed to decode"
                )
        journal_records, error = _fetch_surviving(
            conn,
            "SELECT seq, ts, kind, rule, r_key, s_key, payload, checksum "
            "FROM journal ORDER BY seq",
        )
        if error:
            # Files from before the checksum column: retry without it.
            journal_records, error = _fetch_surviving(
                conn,
                "SELECT seq, ts, kind, rule, r_key, s_key, payload "
                "FROM journal ORDER BY seq",
            )
            if error:
                report.notes.append(f"journal partially unreadable: {error}")
        report.journal_total = len(journal_records)
        previous = None
        for record in journal_records:
            try:
                entry = SqliteStore._entry_from_record(record[:7])
            except Exception:
                break
            stored = record[7] if len(record) > 7 else ""
            if previous is not None and entry.seq != previous + 1:
                break
            if stored and stored != entry_checksum(entry):
                break
            prefix_entries.append(entry)
            previous = entry.seq
        report.journal_recovered = len(prefix_entries)
        if report.journal_recovered < report.journal_total:
            last = prefix_entries[-1].seq if prefix_entries else 0
            report.notes.append(
                f"journal verifies only up to entry #{last}; later "
                "provenance is lost"
            )
    finally:
        conn.close()
        if scratch is not None:
            os.remove(scratch)
    return recovered_rows, recovered_meta, prefix_entries


def salvage_incremental(
    path: str,
    *,
    r: Optional["Relation"] = None,
    s: Optional["Relation"] = None,
    extended_key: Optional[Iterable[str]] = None,
    ilfds: Optional[ILFDSet] = None,
    policy: Optional[DerivationPolicy] = None,
    output: Optional[str] = None,
    tracer: Optional[Tracer] = None,
) -> Tuple["IncrementalIdentifier", SalvageReport]:
    """Best-effort recovery of a damaged checkpoint into a verified session.

    The salvage path documented in ``docs/RESILIENCE.md``: never trust
    the damaged file.  Instead,

    1. recover what still verifies — the longest valid journal prefix
       (:meth:`~repro.store.base.MatchStore.longest_valid_journal_prefix`)
       and every decodable raw source row, plus the knowledge (extended
       key, ILFDs, policy) from the metadata when readable;
    2. **re-derive** everything else: a fresh
       :class:`~repro.federation.incremental.IncrementalIdentifier` is
       built from the recovered raw rows (and any caller-supplied *r* /
       *s* relations filling in rows the file lost), re-running ILFD
       derivation and identification from scratch — matches are
       recomputed, never copied out of a corrupt file;
    3. cross-check the rebuilt matches against the matches the verified
       journal prefix asserts (discrepancies become report notes);
    4. verify the result (``check_constraints`` + ``verify_journal``)
       before returning it.

    When the file is unreadable, *extended_key* (and sources) must be
    supplied by the caller.  *output* persists the salvaged session into
    a fresh SQLite store at that path; the default keeps it in memory.
    Returns ``(identifier, report)``; raises
    :class:`~repro.store.errors.StoreError` only when too little
    survives to rebuild from (no knowledge, or no sources at all).
    """
    from repro.federation.incremental import IncrementalIdentifier

    tracer = tracer if tracer is not None else NO_OP_TRACER
    report = SalvageReport(path=str(path))
    with tracer.span("store.salvage", path=str(path)) as span:
        recovered_rows, recovered_meta, prefix_entries = _read_damaged_checkpoint(
            str(path), report
        )
        report.rows_recovered = {
            side: len(rows) for side, rows in recovered_rows.items()
        }

        # Knowledge: prefer the file's metadata, fall back to the caller.
        if extended_key is None:
            key_text = recovered_meta.get(META_EXTENDED_KEY, "")
            extended_key = json.loads(key_text) if key_text else None
        if extended_key is None:
            raise StoreError(
                f"cannot salvage {path!r}: the extended key is unrecoverable "
                "from the file and none was supplied"
            )
        if ilfds is None:
            ilfds = _decode_ilfds(recovered_meta.get(META_ILFDS, ""))
        if policy is None:
            policy = DerivationPolicy(
                recovered_meta.get(META_POLICY, DerivationPolicy.FIRST_MATCH.value)
            )
        r_schema = (
            r.schema
            if r is not None
            else decode_schema(recovered_meta.get(META_R_SCHEMA, ""))
        )
        s_schema = (
            s.schema
            if s is not None
            else decode_schema(recovered_meta.get(META_S_SCHEMA, ""))
        )

        fresh_store = None
        if output is not None:
            fresh_store = SqliteStore(str(output), tracer=tracer)
            fresh_store.clear()
        identifier = IncrementalIdentifier(
            r_schema,
            s_schema,
            list(extended_key),
            ilfds=ilfds,
            policy=policy,
            tracer=tracer,
            store=fresh_store,
        )
        # Re-derive: recovered file rows first, then caller-supplied rows
        # filling in whatever the file lost (duplicates skipped by key).
        for side, insert in (("r", identifier.insert_r), ("s", identifier.insert_s)):
            supplied = r if side == "r" else s
            for row in recovered_rows[side] + (list(supplied) if supplied else []):
                try:
                    insert(row)
                except CoreError:
                    pass  # key already recovered from the file
        report.matches_rebuilt = len(identifier.match_pairs())

        # Cross-check against the provenance that still verifies: every
        # match the valid journal prefix asserts between rows we still
        # have must be re-derived by the rebuild.
        prefix_matches, _ = replay_journal(prefix_entries)
        rebuilt = identifier.match_pairs()
        missing = sorted(
            pair
            for pair in prefix_matches
            if pair not in rebuilt
            and pair[0] in identifier._r.raw
            and pair[1] in identifier._s.raw
        )
        if missing:
            report.notes.append(
                f"{len(missing)} match(es) asserted by the verified journal "
                f"prefix did not re-derive, e.g. {missing[0]!r} — they may "
                "have come from user assertions or knowledge not recovered"
            )

        # Never return an unverified session.
        identifier.store.check_constraints()
        identifier.store.verify_journal()
        if fresh_store is not None:
            # Make the durable output a checkpoint in its own right, so
            # a later `resume` opens the rebuilt session directly.
            with fresh_store.transaction():
                fresh_store.set_meta(META_FORMAT, CHECKPOINT_FORMAT)
                fresh_store.set_meta(META_KIND, _KIND_INCREMENTAL)
                fresh_store.set_meta(META_CREATED, repr(time.time()))
                fresh_store.set_meta(META_R_SCHEMA, encode_schema(r_schema))
                fresh_store.set_meta(META_S_SCHEMA, encode_schema(s_schema))
                fresh_store.set_meta(
                    META_EXTENDED_KEY, json.dumps(list(extended_key))
                )
                fresh_store.set_meta(META_ILFDS, _encode_ilfds(identifier.ilfds))
                fresh_store.set_meta(META_POLICY, policy.value)
                fresh_store.set_meta(META_VERSION, str(identifier.version))
        span.set("matches", report.matches_rebuilt)
        span.set("journal_recovered", report.journal_recovered)
    if tracer.enabled:
        tracer.metrics.inc("resilience.salvages")
    return identifier, report

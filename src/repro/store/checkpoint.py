"""Checkpoint/resume for incremental identification sessions.

A checkpoint is one SQLite file carrying everything an
:class:`~repro.federation.incremental.IncrementalIdentifier` is: both
source relations (raw and ILFD-extended rows), the matched-pair set, the
derivation journal, the knowledge (extended key + ILFD set + policy),
and the **delta cursor** — the identifier's monotone ``version`` counter,
so a resumed session knows exactly how much update history the snapshot
covers and continues applying deltas without re-evaluating settled
pairs.

On load, the journal is replayed and must reproduce the stored matching
table (:meth:`~repro.store.base.MatchStore.verify_journal`), and the
paper's uniqueness/consistency constraints are audited
(:meth:`~repro.store.base.MatchStore.check_constraints`) — a checkpoint
whose provenance cannot explain its contents is rejected as corrupt
rather than silently trusted.
"""

from __future__ import annotations

import json
import time
from typing import TYPE_CHECKING, Optional

from repro.ilfd.conditions import Condition
from repro.ilfd.derivation import DerivationPolicy
from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.observability.tracer import NO_OP_TRACER, Tracer
from repro.store.codec import (
    decode_schema,
    decode_value,
    encode_schema,
    encode_value,
)
from repro.store.errors import StoreError
from repro.store.sqlite import SqliteStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.federation.incremental import IncrementalIdentifier

__all__ = [
    "CHECKPOINT_FORMAT",
    "checkpoint_incremental",
    "resume_incremental",
]

CHECKPOINT_FORMAT = "repro-store/1"

META_FORMAT = "format"
META_KIND = "kind"
META_CREATED = "created"
META_R_SCHEMA = "r_schema"
META_S_SCHEMA = "s_schema"
META_EXTENDED_KEY = "extended_key"
META_ILFDS = "ilfds"
META_POLICY = "policy"
META_VERSION = "version"

_KIND_INCREMENTAL = "incremental-checkpoint"


def _encode_ilfds(ilfds: ILFDSet) -> str:
    """ILFDs as JSON — lossless, unlike the DBA-facing text format.

    ``repro.ilfd.io``'s knowledge-base syntax cannot represent every
    rule name (a name containing ``:`` re-parses differently), so
    checkpoints carry the structure itself: name plus (attribute,
    value) condition lists, values going through the store codec.
    """
    return json.dumps(
        [
            {
                "name": ilfd.name,
                "antecedent": [
                    [c.attribute, encode_value(c.value)]
                    for c in sorted(ilfd.antecedent)
                ],
                "consequent": [
                    [c.attribute, encode_value(c.value)]
                    for c in sorted(ilfd.consequent)
                ],
            }
            for ilfd in ilfds
        ],
        separators=(",", ":"),
    )


def _decode_ilfds(text: str) -> ILFDSet:
    """Inverse of :func:`_encode_ilfds`."""
    return ILFDSet(
        ILFD(
            [
                Condition(attr, decode_value(value))
                for attr, value in record["antecedent"]
            ],
            [
                Condition(attr, decode_value(value))
                for attr, value in record["consequent"]
            ],
            name=record["name"],
        )
        for record in json.loads(text or "[]")
    )


def checkpoint_incremental(
    identifier: "IncrementalIdentifier",
    path: str,
    *,
    tracer: Optional[Tracer] = None,
) -> SqliteStore:
    """Snapshot *identifier* into a SQLite checkpoint at *path*.

    Overwrites any existing checkpoint at *path*.  Returns the (still
    open) destination store; callers that only want the file should
    ``close()`` it.
    """
    tracer = tracer if tracer is not None else NO_OP_TRACER
    dest = SqliteStore(path, tracer=tracer)
    with tracer.span("store.checkpoint", path=str(path)) as span:
        dest.clear()
        with dest.transaction():
            dest.set_meta(META_FORMAT, CHECKPOINT_FORMAT)
            dest.set_meta(META_KIND, _KIND_INCREMENTAL)
            dest.set_meta(META_CREATED, repr(time.time()))
            dest.set_meta(META_R_SCHEMA, encode_schema(identifier._r.schema))
            dest.set_meta(META_S_SCHEMA, encode_schema(identifier._s.schema))
            dest.set_meta(
                META_EXTENDED_KEY,
                json.dumps(list(identifier.extended_key.attributes)),
            )
            dest.set_meta(META_ILFDS, _encode_ilfds(identifier.ilfds))
            dest.set_meta(META_POLICY, identifier.policy.value)
            dest.set_meta(META_VERSION, str(identifier.version))
            dest.set_key_attributes(
                identifier._r.key_attrs, identifier._s.key_attrs
            )
            for side_name, side in (("r", identifier._r), ("s", identifier._s)):
                for key, raw in side.raw.items():
                    dest.put_row(side_name, key, raw, side.extended[key])
            for r_key, s_key in identifier.match_pairs():
                dest.put_match(
                    r_key,
                    s_key,
                    identifier._r.extended[r_key],
                    identifier._s.extended[s_key],
                )
            for entry in identifier.store.journal_entries():
                dest.append_journal(entry)
            dest.record_checkpoint_marker(
                note=f"version={identifier.version}"
            )
        size = dest.size_bytes()
        span.set("bytes", size)
        span.set("matches", len(identifier.match_pairs()))
    if tracer.enabled:
        metrics = tracer.metrics
        metrics.inc("store.checkpoints")
        metrics.observe("store.checkpoint_bytes", size)
    return dest


def resume_incremental(
    path: str,
    *,
    tracer: Optional[Tracer] = None,
    verify: bool = True,
) -> "IncrementalIdentifier":
    """Reload a checkpoint and return a live, continuable identifier.

    The resumed identifier owns the opened :class:`SqliteStore` (further
    updates persist into the same file) and its ``version`` continues
    from the checkpointed delta cursor.  With ``verify=True`` (default)
    the journal is replayed against the stored tables and the
    uniqueness/consistency constraints are audited before any state is
    trusted; failures raise
    :class:`~repro.store.errors.StoreIntegrityError`.
    """
    from repro.federation.incremental import IncrementalIdentifier

    tracer = tracer if tracer is not None else NO_OP_TRACER
    start = time.perf_counter()
    store = SqliteStore(path, tracer=tracer)
    with tracer.span("store.resume", path=str(path)) as span:
        fmt = store.get_meta(META_FORMAT)
        if fmt != CHECKPOINT_FORMAT:
            raise StoreError(
                f"{path!r} is not a repro checkpoint "
                f"(format {fmt!r}, expected {CHECKPOINT_FORMAT!r})"
            )
        kind = store.get_meta(META_KIND)
        if kind != _KIND_INCREMENTAL:
            raise StoreError(f"{path!r} holds a {kind!r}, not an incremental checkpoint")
        if verify:
            store.check_constraints()
            store.verify_journal()
        r_schema = decode_schema(store.get_meta(META_R_SCHEMA, ""))
        s_schema = decode_schema(store.get_meta(META_S_SCHEMA, ""))
        extended_key = json.loads(store.get_meta(META_EXTENDED_KEY, "[]"))
        ilfds = _decode_ilfds(store.get_meta(META_ILFDS, ""))
        policy = DerivationPolicy(
            store.get_meta(META_POLICY, DerivationPolicy.FIRST_MATCH.value)
        )
        identifier = IncrementalIdentifier(
            r_schema,
            s_schema,
            extended_key,
            ilfds=ilfds,
            policy=policy,
            tracer=tracer,
            store=store,
        )
        # Restore state directly (no journaling: these are not new events)
        # — settled pairs are *loaded*, never re-evaluated.
        for side_name, side in (("r", identifier._r), ("s", identifier._s)):
            for key, raw, extended in store.row_items(side_name):
                side.raw[key] = raw
                side.extended[key] = extended
                complete = identifier._complete_values(extended)
                if complete is not None:
                    side.index[complete].add(key)
        identifier._matches = store.match_pairs()
        identifier.version = int(store.get_meta(META_VERSION, "0"))
        span.set("matches", len(identifier._matches))
        span.set("rows", len(identifier._r.raw) + len(identifier._s.raw))
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    if tracer.enabled:
        metrics = tracer.metrics
        metrics.inc("store.resumes")
        metrics.observe("store.load_ms", elapsed_ms)
    return identifier

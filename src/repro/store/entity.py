"""Persisted canonical entities: the golden-record row of the store.

The identity graph (:mod:`repro.entities`) resolves N sources into
entity clusters and survivorship-merged golden records; this module is
their storage form.  An :class:`EntityRecord` is deliberately small —
an id, the cluster's canonical extended-key text, the golden row, and
the member tuples as ``(source, key)`` pairs — everything the serving
layer needs to answer ``/resolve`` from the persisted graph without the
sources.

Canonical entity ids are **content-derived**: the id is a prefixed
truncated SHA-256 over the sorted member identities, so the same
cluster gets the same id on every build, resume, or replay — ids are
stable references other systems may hold, never autoincrement rowids.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.relational.row import Row
from repro.store.codec import KeyValues, decode_key, decode_row, encode_key, encode_row
from repro.store.errors import StoreCodecError

__all__ = [
    "ENTITY_ID_PREFIX",
    "EntityRecord",
    "canonical_entity_id",
    "encode_members",
    "decode_members",
]

ENTITY_ID_PREFIX = "ent-"
"""Default canonical-id prefix (overridable per build)."""

Member = Tuple[str, KeyValues]


def canonical_entity_id(
    members: Iterable[Member], *, prefix: str = ENTITY_ID_PREFIX
) -> str:
    """Deterministic id for the cluster with these members.

    Hashes the **sorted** ``(source, canonical key text)`` pairs, so the
    id is independent of member order, run order, and resume history —
    two builds over the same sources always mint the same id for the
    same real-world entity.
    """
    material = json.dumps(
        sorted([source, encode_key(key)] for source, key in members),
        separators=(",", ":"),
    )
    digest = hashlib.sha256(material.encode("utf-8")).hexdigest()
    return f"{prefix}{digest[:16]}"


def encode_members(members: Iterable[Member]) -> str:
    """Members as canonical JSON text (order preserved)."""
    return json.dumps(
        [[source, encode_key(key)] for source, key in members],
        separators=(",", ":"),
    )


def decode_members(text: str) -> Tuple[Member, ...]:
    """Inverse of :func:`encode_members`."""
    try:
        pairs = json.loads(text)
        return tuple((source, decode_key(key)) for source, key in pairs)
    except (json.JSONDecodeError, TypeError, ValueError) as exc:
        raise StoreCodecError(f"malformed members text {text!r}: {exc}") from exc


@dataclass(frozen=True)
class EntityRecord:
    """One canonical entity as persisted by the store.

    Attributes
    ----------
    entity_id:
        Content-derived id (:func:`canonical_entity_id`).
    ext_key:
        Canonical text of the cluster's complete extended-key values —
        the lookup key ``/resolve`` probes (``None`` only for records
        built without a known extended key).
    golden:
        The survivorship-merged golden row.
    members:
        ``(source name, key values)`` per member tuple, in the graph's
        deterministic member order (source declaration, then row order).
    """

    entity_id: str
    ext_key: Optional[str]
    golden: Row
    members: Tuple[Member, ...]

    @property
    def sources(self) -> Tuple[str, ...]:
        """Source names contributing a member, in member order."""
        return tuple(source for source, _ in self.members)

    def member_keys(self, source: str) -> List[KeyValues]:
        """This entity's member keys from *source* (possibly empty)."""
        return [key for name, key in self.members if name == source]

    def __len__(self) -> int:
        return len(self.members)


def encode_entity(record: EntityRecord) -> Tuple[str, Optional[str], str, str]:
    """The record as its four storage columns."""
    return (
        record.entity_id,
        record.ext_key,
        encode_row(record.golden),
        encode_members(record.members),
    )


def decode_entity(
    entity_id: str, ext_key: Optional[str], golden: str, members: str
) -> EntityRecord:
    """Inverse of :func:`encode_entity`."""
    return EntityRecord(
        entity_id=entity_id,
        ext_key=ext_key,
        golden=decode_row(golden),
        members=decode_members(members),
    )

"""The ``MatchStore`` protocol: durable MT_RS / NMT_RS persistence.

The paper materialises identification results in a matching table and a
negative matching table that outlive one identification run — "those
pairs evaluating to 'true' or 'false' can be represented in a matching
table and a negative matching table" — and reuses them across
integration sessions.  :class:`MatchStore` is that persistence surface:

- the two pair tables, keyed by canonical key encodings,
- the append-only **derivation journal** (:mod:`repro.store.journal`),
- raw/extended source rows per side (what checkpoints snapshot),
- a string metadata table (schemas, extended key, ILFDs, delta cursor).

Backends implement a small primitive vocabulary; the shared recording
API (``record_match`` / ``record_non_match`` / ``remove_match`` /
``record_derivation``), table materialisation, and the offline audits
(``check_constraints``, ``verify_journal``) live here, identical across
:class:`~repro.store.memory.MemoryStore` and
:class:`~repro.store.sqlite.SqliteStore`.
"""

from __future__ import annotations

import abc
import json
import time
from typing import (
    Any,
    ContextManager,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.core.matching_table import (
    MatchEntry,
    MatchingTable,
    NegativeMatchingTable,
    check_consistency,
)
from repro.observability.tracer import NO_OP_TRACER, Tracer
from repro.relational.nulls import is_null
from repro.relational.row import Row
from repro.store.codec import KeyValues, encode_key
from repro.store.entity import EntityRecord
from repro.store.errors import StoreError, StoreIntegrityError
from repro.store.journal import (
    KIND_ASSERT,
    KIND_CHECKPOINT,
    KIND_DISTINCTNESS,
    KIND_ENTITY,
    KIND_IDENTITY,
    KIND_ILFD,
    KIND_REMOVE,
    JournalEntry,
    entry_checksum,
    replay_journal,
)

__all__ = ["MatchStore", "SIDES"]

Pair = Tuple[KeyValues, KeyValues]

SIDES = ("r", "s")

META_R_KEY_ATTRIBUTES = "r_key_attributes"
META_S_KEY_ATTRIBUTES = "s_key_attributes"
# Same key checkpoints already seal (store/checkpoint.py META_EXTENDED_KEY),
# so every existing checkpoint file carries its extended-key attributes.
META_EXTENDED_KEY_ATTRIBUTES = "extended_key"
# N-source stores (entity builds) register their source names here; absent,
# the store keeps the paper's pairwise ("r", "s") vocabulary unchanged.
META_SIDES = "store_sides"


class MatchStore(abc.ABC):
    """Abstract persistence backend for matching state.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.observability.Tracer`; when given, the
        store emits ``store.*`` metrics (writes, removes, journal
        entries, transactions).
    """

    def __init__(self, *, tracer: Optional[Tracer] = None) -> None:
        self._tracer = tracer if tracer is not None else NO_OP_TRACER
        self._metric_buffer: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # Transactional metric buffering
    # ------------------------------------------------------------------
    # Metrics must tell the same story as the data: a rolled-back write
    # never happened, so its counters must not land either.  Backends
    # open a buffer when the outermost transaction begins, flush it after
    # a successful commit, and discard it on rollback; outside a
    # transaction `_metric_inc` hits the tracer directly.
    def _metric_inc(self, name: str, value: int = 1) -> None:
        if self._metric_buffer is not None:
            self._metric_buffer[name] = self._metric_buffer.get(name, 0) + value
        elif self._tracer.enabled:
            self._tracer.metrics.inc(name, value)

    def _begin_metric_buffer(self) -> None:
        if self._tracer.enabled and self._metric_buffer is None:
            self._metric_buffer = {}

    def _commit_metric_buffer(self) -> None:
        buffer, self._metric_buffer = self._metric_buffer, None
        if buffer:
            for name, value in buffer.items():
                self._tracer.metrics.inc(name, value)

    def _discard_metric_buffer(self) -> None:
        self._metric_buffer = None

    # ------------------------------------------------------------------
    # Backend primitives
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def put_match(
        self, r_key: KeyValues, s_key: KeyValues, r_row: Row, s_row: Row
    ) -> None:
        """Insert/replace one matching-table entry (no journal write)."""

    @abc.abstractmethod
    def put_non_match(
        self, r_key: KeyValues, s_key: KeyValues, r_row: Row, s_row: Row
    ) -> None:
        """Insert/replace one negative-table entry (no journal write)."""

    @abc.abstractmethod
    def delete_match(self, r_key: KeyValues, s_key: KeyValues) -> bool:
        """Remove one matching-table entry; True iff it existed."""

    @abc.abstractmethod
    def match_items(self) -> Iterator[Tuple[Pair, Tuple[Row, Row]]]:
        """All matching entries as ``((r_key, s_key), (r_row, s_row))``."""

    @abc.abstractmethod
    def non_match_items(self) -> Iterator[Tuple[Pair, Tuple[Row, Row]]]:
        """All negative entries, same shape as :meth:`match_items`."""

    @abc.abstractmethod
    def has_match(self, r_key: KeyValues, s_key: KeyValues) -> bool:
        """True iff the pair is in the matching table."""

    @abc.abstractmethod
    def has_non_match(self, r_key: KeyValues, s_key: KeyValues) -> bool:
        """True iff the pair is in the negative matching table."""

    @abc.abstractmethod
    def append_journal(self, entry: JournalEntry) -> JournalEntry:
        """Append *entry*, assigning its ``seq``; returns the stored entry."""

    @abc.abstractmethod
    def journal_entries(
        self,
        *,
        r_key: Optional[KeyValues] = None,
        s_key: Optional[KeyValues] = None,
    ) -> List[JournalEntry]:
        """Journal entries in seq order, optionally filtered to a pair.

        With a key filter, returns exactly the entries for which
        :meth:`JournalEntry.concerns` holds — two-sided entries for the
        pair plus one-sided ILFD entries for either tuple.
        """

    def _journal_checksums(self) -> Mapping[int, str]:
        """``seq → stored content checksum`` for checksummed entries.

        Backends that persist :func:`~repro.store.journal.entry_checksum`
        alongside each entry override this; entries absent from the map
        (or mapped to ``""``) predate checksumming and verify as
        *unknown* rather than failing.
        """
        return {}

    @abc.abstractmethod
    def set_meta(self, key: str, value: str) -> None:
        """Set one metadata string."""

    @abc.abstractmethod
    def get_meta(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """Read one metadata string."""

    @abc.abstractmethod
    def meta_items(self) -> Iterator[Tuple[str, str]]:
        """All metadata entries."""

    @abc.abstractmethod
    def put_row(self, side: str, key: KeyValues, raw: Row, extended: Row) -> None:
        """Persist one source tuple (raw and extended forms)."""

    @abc.abstractmethod
    def delete_row(self, side: str, key: KeyValues) -> bool:
        """Forget one source tuple; True iff it existed."""

    @abc.abstractmethod
    def row_items(self, side: str) -> Iterator[Tuple[KeyValues, Row, Row]]:
        """All persisted tuples of *side* as ``(key, raw, extended)``."""

    @abc.abstractmethod
    def put_entity(self, record: EntityRecord) -> None:
        """Insert/replace one canonical entity (no journal write)."""

    @abc.abstractmethod
    def delete_entity(self, entity_id: str) -> bool:
        """Remove one canonical entity; True iff it existed."""

    @abc.abstractmethod
    def get_entity(self, entity_id: str) -> Optional[EntityRecord]:
        """One canonical entity by id, or None."""

    @abc.abstractmethod
    def entity_items(self) -> Iterator[EntityRecord]:
        """All canonical entities in deterministic (entity-id) order."""

    def entity_by_ext_key(self, ext_key: str) -> Optional[EntityRecord]:
        """The canonical entity whose cluster key encodes to *ext_key*.

        Scan fallback (SqliteStore overrides with an indexed probe); at
        most one entity can own an extended-key text because equal
        complete extended keys put tuples in the same cluster.
        """
        for record in self.entity_items():
            if record.ext_key == ext_key:
                return record
        return None

    @abc.abstractmethod
    def transaction(self) -> ContextManager["MatchStore"]:
        """Group writes atomically (all-or-nothing on the backend)."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop all persisted state (tables, journal, rows, metadata)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release backend resources; the store is unusable afterwards."""

    def size_bytes(self) -> int:
        """Storage footprint in bytes (0 when not backed by a file)."""
        return 0

    # Context-manager support: ``with SqliteStore(path) as store`` closes
    # the backend on every exit path — how the serving layer and the CLI
    # guarantee no leaked connections when an error unwinds.
    def __enter__(self) -> "MatchStore":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _check_side(self, side: str) -> str:
        # Fast path first: the pairwise vocabulary never needs a meta read.
        if side in SIDES:
            return side
        registered = self.sides()
        if side not in registered:
            raise StoreError(
                f"unknown side {side!r}; expected one of {registered}"
            )
        return side

    # ------------------------------------------------------------------
    # Recording (shared journaling glue)
    # ------------------------------------------------------------------
    def record_match(
        self,
        r_key: KeyValues,
        s_key: KeyValues,
        r_row: Row,
        s_row: Row,
        *,
        rule: str = "",
        kind: str = KIND_IDENTITY,
        payload: Optional[Mapping[str, Any]] = None,
        timestamp: Optional[float] = None,
    ) -> None:
        """Persist a match and journal the rule firing behind it."""
        if kind not in (KIND_IDENTITY, KIND_ASSERT):
            raise StoreError(f"matches are journaled as identity/assert, not {kind!r}")
        self.put_match(r_key, s_key, r_row, s_row)
        self.append_journal(
            JournalEntry(
                seq=0,
                timestamp=timestamp if timestamp is not None else time.time(),
                kind=kind,
                rule=rule,
                r_key=r_key,
                s_key=s_key,
                payload=dict(payload or {}),
            )
        )
        self._metric_inc("store.writes")
        self._metric_inc("store.journal_entries")

    def record_non_match(
        self,
        r_key: KeyValues,
        s_key: KeyValues,
        r_row: Row,
        s_row: Row,
        *,
        rule: str = "",
        payload: Optional[Mapping[str, Any]] = None,
        timestamp: Optional[float] = None,
    ) -> None:
        """Persist a non-match and journal the distinctness firing."""
        self.put_non_match(r_key, s_key, r_row, s_row)
        self.append_journal(
            JournalEntry(
                seq=0,
                timestamp=timestamp if timestamp is not None else time.time(),
                kind=KIND_DISTINCTNESS,
                rule=rule,
                r_key=r_key,
                s_key=s_key,
                payload=dict(payload or {}),
            )
        )
        self._metric_inc("store.writes")
        self._metric_inc("store.journal_entries")

    def remove_match(
        self,
        r_key: KeyValues,
        s_key: KeyValues,
        *,
        reason: str = "source delete",
        timestamp: Optional[float] = None,
    ) -> bool:
        """Retract a match, journaling the retraction; True iff present."""
        existed = self.delete_match(r_key, s_key)
        if existed:
            self.append_journal(
                JournalEntry(
                    seq=0,
                    timestamp=timestamp if timestamp is not None else time.time(),
                    kind=KIND_REMOVE,
                    r_key=r_key,
                    s_key=s_key,
                    payload={"reason": reason},
                )
            )
            self._metric_inc("store.removes")
            self._metric_inc("store.journal_entries")
        return existed

    def record_derivation(
        self,
        side: str,
        key: KeyValues,
        *,
        rule: str,
        derived: Mapping[str, Any],
        timestamp: Optional[float] = None,
    ) -> None:
        """Journal one ILFD firing for the tuple *key* on *side*."""
        self._check_side(side)
        self.append_journal(
            JournalEntry(
                seq=0,
                timestamp=timestamp if timestamp is not None else time.time(),
                kind=KIND_ILFD,
                rule=rule,
                r_key=key if side == "r" else None,
                s_key=key if side == "s" else None,
                payload={"derived": dict(derived)},
            )
        )
        self._metric_inc("store.journal_entries")

    def record_checkpoint_marker(
        self, *, note: str = "", timestamp: Optional[float] = None
    ) -> None:
        """Journal a snapshot boundary."""
        self.append_journal(
            JournalEntry(
                seq=0,
                timestamp=timestamp if timestamp is not None else time.time(),
                kind=KIND_CHECKPOINT,
                payload={"note": note} if note else {},
            )
        )
        self._metric_inc("store.journal_entries")

    def record_entity(
        self,
        record: EntityRecord,
        *,
        rule: str = "",
        payload: Optional[Mapping[str, Any]] = None,
        timestamp: Optional[float] = None,
    ) -> None:
        """Persist a canonical entity and journal its formation.

        The journal entry is the head of the entity's resolution log: a
        ``golden`` event naming the member tuples the cluster closed
        over.  Per-attribute survivorship decisions follow via
        :meth:`record_entity_decision`.
        """
        self.put_entity(record)
        event = {
            "entity_id": record.entity_id,
            "event": "golden",
            "members": [
                f"{source}:{encode_key(key)}" for source, key in record.members
            ],
        }
        event.update(payload or {})
        self.append_journal(
            JournalEntry(
                seq=0,
                timestamp=timestamp if timestamp is not None else time.time(),
                kind=KIND_ENTITY,
                rule=rule,
                payload=event,
            )
        )
        self._metric_inc("store.entity_writes")
        self._metric_inc("store.journal_entries")

    def record_entity_decision(
        self,
        entity_id: str,
        *,
        rule: str,
        payload: Mapping[str, Any],
        timestamp: Optional[float] = None,
    ) -> None:
        """Journal one entity-resolution decision (no table write).

        *payload* carries the kind-specific detail — ``event`` is
        ``"decision"`` for a survivorship pick (attribute, value, source,
        contested) or ``"violation"`` for a generalized-uniqueness
        breach (source, count).  Entries carry no pair keys, so journal
        replay and the matching-table audit are unaffected.
        """
        event = {"entity_id": entity_id}
        event.update(payload)
        self.append_journal(
            JournalEntry(
                seq=0,
                timestamp=timestamp if timestamp is not None else time.time(),
                kind=KIND_ENTITY,
                rule=rule,
                payload=event,
            )
        )
        self._metric_inc("store.journal_entries")

    def entity_log(self, entity_id: str) -> List[JournalEntry]:
        """All resolution-log entries for one entity, in journal order."""
        return [
            entry
            for entry in self.journal_entries()
            if entry.kind == KIND_ENTITY
            and entry.payload.get("entity_id") == entity_id
        ]

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def match_pairs(self) -> Set[Pair]:
        """All matching pairs."""
        return {pair for pair, _ in self.match_items()}

    def non_match_pairs(self) -> Set[Pair]:
        """All negative pairs."""
        return {pair for pair, _ in self.non_match_items()}

    def set_sides(self, names: Tuple[str, ...]) -> None:
        """Register the store's source-side vocabulary (entity builds).

        Pairwise stores never call this and keep the paper's ``("r",
        "s")``.  Names must be unique and non-empty; the declaration
        order given here is the deterministic source-priority order
        survivorship and cluster rendering use.
        """
        names = tuple(names)
        if len(names) < 2:
            raise StoreError("a store needs at least two sides")
        if len(set(names)) != len(names) or any(not name for name in names):
            raise StoreError(f"side names must be unique and non-empty: {names!r}")
        self.set_meta(META_SIDES, json.dumps(list(names)))

    def sides(self) -> Tuple[str, ...]:
        """The store's registered side names (default: paper's R/S)."""
        text = self.get_meta(META_SIDES)
        return tuple(json.loads(text)) if text else SIDES

    def set_key_attributes(
        self, r_attributes: Tuple[str, ...], s_attributes: Tuple[str, ...]
    ) -> None:
        """Persist the per-side key attribute lists the tables render with."""
        self.set_meta(META_R_KEY_ATTRIBUTES, json.dumps(list(r_attributes)))
        self.set_meta(META_S_KEY_ATTRIBUTES, json.dumps(list(s_attributes)))

    def key_attributes(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """The persisted key attribute lists ((), () when never set)."""
        r_text = self.get_meta(META_R_KEY_ATTRIBUTES)
        s_text = self.get_meta(META_S_KEY_ATTRIBUTES)
        return (
            tuple(json.loads(r_text)) if r_text else (),
            tuple(json.loads(s_text)) if s_text else (),
        )

    def set_extended_key_attributes(self, attributes: Tuple[str, ...]) -> None:
        """Persist the extended-key attribute list the lookups index by."""
        self.set_meta(META_EXTENDED_KEY_ATTRIBUTES, json.dumps(list(attributes)))

    def extended_key_attributes(self) -> Tuple[str, ...]:
        """The persisted extended-key attributes (() when never set)."""
        text = self.get_meta(META_EXTENDED_KEY_ATTRIBUTES)
        return tuple(json.loads(text)) if text else ()

    def extended_key_text(self, extended: Row) -> Optional[str]:
        """Canonical text of *extended*'s complete extended-key values.

        The lookup key behind ``resolve`` and search-before-insert: two
        tuples model the same entity under the paper's identity rule
        exactly when their complete extended-key values agree, so equal
        text ⇔ candidate match.  Returns ``None`` when the store does
        not know the extended-key attributes, or when any value is
        missing or NULL — Section 6.2's "NULL is not equal to NULL"
        means an incomplete tuple can never be found by equality lookup.
        """
        attributes = self.extended_key_attributes()
        if not attributes:
            return None
        pairs = []
        for attribute in sorted(attributes):
            if attribute not in extended:
                return None
            value = extended[attribute]
            if is_null(value):
                return None
            pairs.append((attribute, value))
        return encode_key(tuple(pairs))

    # ------------------------------------------------------------------
    # Point lookups (the serving layer's read vocabulary)
    # ------------------------------------------------------------------
    # Scan fallbacks keep every backend correct; SqliteStore overrides
    # them with indexed SQL so the serving hot path never scans.
    def get_row(self, side: str, key: KeyValues) -> Optional[Tuple[Row, Row]]:
        """One persisted tuple of *side* as ``(raw, extended)``, or None."""
        self._check_side(side)
        for row_key, raw, extended in self.row_items(side):
            if row_key == key:
                return raw, extended
        return None

    def rows_by_extended_key(
        self, side: str, ext_key: str
    ) -> List[Tuple[KeyValues, Row, Row]]:
        """All tuples of *side* whose complete extended key encodes to *ext_key*."""
        self._check_side(side)
        return [
            (key, raw, extended)
            for key, raw, extended in self.row_items(side)
            if self.extended_key_text(extended) == ext_key
        ]

    def matches_for_key(
        self, side: str, key: KeyValues
    ) -> List[Tuple[Pair, Tuple[Row, Row]]]:
        """Matching-table entries whose *side* key equals *key*."""
        position = 0 if self._check_side(side) == "r" else 1
        return [
            (pair, rows)
            for pair, rows in self.match_items()
            if pair[position] == key
        ]

    def _build_table(self, items: Iterator[Tuple[Pair, Tuple[Row, Row]]], cls):
        r_attrs, s_attrs = self.key_attributes()
        entries = []
        for (r_key, s_key), (r_row, s_row) in items:
            if not r_attrs:
                r_attrs = tuple(attr for attr, _ in r_key)
            if not s_attrs:
                s_attrs = tuple(attr for attr, _ in s_key)
            entries.append(MatchEntry(r_row, s_row, r_key, s_key))
        table = cls(r_key_attributes=r_attrs, s_key_attributes=s_attrs)
        for entry in sorted(entries, key=lambda e: e.pair):
            table.add(entry)
        return table

    def matching_table(self) -> MatchingTable:
        """MT_RS materialised from the store (deterministic pair order)."""
        return self._build_table(self.match_items(), MatchingTable)

    def negative_matching_table(self) -> NegativeMatchingTable:
        """NMT_RS materialised from the store (deterministic pair order)."""
        return self._build_table(self.non_match_items(), NegativeMatchingTable)

    # ------------------------------------------------------------------
    # Offline audits
    # ------------------------------------------------------------------
    def check_constraints(self) -> None:
        """Audit the paper's constraints over the persisted tables.

        Raises :class:`StoreIntegrityError` when the uniqueness
        constraint (no tuple matched twice) or the consistency constraint
        (MT ∩ NMT = ∅) fails — the offline counterpart of the pipeline's
        ``verify`` step, runnable against a store with no sources loaded.
        """
        matching = self.matching_table()
        violations = matching.uniqueness_violations()
        if violations["R"] or violations["S"]:
            raise StoreIntegrityError(
                "stored matching table violates the uniqueness constraint: "
                f"R={violations['R']!r} S={violations['S']!r}"
            )
        try:
            check_consistency(matching, self.negative_matching_table())
        except Exception as exc:
            raise StoreIntegrityError(
                f"stored tables violate the consistency constraint: {exc}"
            ) from exc

    def verify_journal(self) -> Tuple[int, int]:
        """Audit the journal and require it to reproduce the tables.

        Three checks, cheapest first:

        1. every entry whose stored content checksum is known must still
           hash to it (bit-rot / tampering detection),
        2. sequence numbers must be contiguous (a gap means entries were
           lost — truncation of the persisted journal),
        3. replaying the journal must reproduce the stored matching and
           negative tables exactly.

        Returns ``(match_count, non_match_count)`` on success; raises
        :class:`StoreIntegrityError` otherwise — a store whose provenance
        cannot explain its contents is treated as corrupt on load.  For
        the recovery path over a journal that *fails* here, see
        :meth:`longest_valid_journal_prefix`.
        """
        entries = self.journal_entries()
        checksums = self._journal_checksums()
        for entry in entries:
            stored = checksums.get(entry.seq, "")
            if stored and stored != entry_checksum(entry):
                raise StoreIntegrityError(
                    f"journal entry #{entry.seq} fails its content checksum "
                    "— the persisted journal is corrupted"
                )
        seqs = [entry.seq for entry in entries]
        if seqs and seqs != list(range(seqs[0], seqs[0] + len(seqs))):
            raise StoreIntegrityError(
                "journal sequence numbers are not contiguous — entries "
                "were lost (journal truncation or partial write)"
            )
        matches, negatives = replay_journal(entries)
        stored_matches = self.match_pairs()
        stored_negatives = self.non_match_pairs()
        if matches != stored_matches:
            missing = sorted(stored_matches - matches)[:3]
            phantom = sorted(matches - stored_matches)[:3]
            raise StoreIntegrityError(
                "journal replay does not reproduce the matching table "
                f"(unexplained entries: {missing!r}; journal-only: {phantom!r})"
            )
        if negatives != stored_negatives:
            raise StoreIntegrityError(
                "journal replay does not reproduce the negative matching table"
            )
        return len(stored_matches), len(stored_negatives)

    def longest_valid_journal_prefix(self) -> List[JournalEntry]:
        """The leading run of journal entries that still verifies.

        Walks the journal in seq order and stops at the first entry that
        fails its content checksum or breaks seq contiguity.  This is the
        provenance a salvage can still trust when :meth:`verify_journal`
        rejects the whole journal — the documented recovery path
        (``docs/RESILIENCE.md``) keeps this prefix and re-derives the
        rest from the sources.
        """
        checksums = self._journal_checksums()
        prefix: List[JournalEntry] = []
        previous: Optional[int] = None
        for entry in self.journal_entries():
            if previous is not None and entry.seq != previous + 1:
                break
            stored = checksums.get(entry.seq, "")
            if stored and stored != entry_checksum(entry):
                break
            prefix.append(entry)
            previous = entry.seq
        return prefix

    def corrupt_journal_seqs(self) -> List[int]:
        """Seqs of entries whose stored checksum no longer matches."""
        checksums = self._journal_checksums()
        return [
            entry.seq
            for entry in self.journal_entries()
            if checksums.get(entry.seq, "")
            and checksums[entry.seq] != entry_checksum(entry)
        ]

    # ------------------------------------------------------------------
    # Bulk copy (checkpointing)
    # ------------------------------------------------------------------
    def copy_into(self, dest: "MatchStore") -> None:
        """Copy all persisted state into *dest* (journal order preserved).

        ``seq`` values are reassigned by *dest*'s append; relative order
        — all provenance semantics the journal carries — is unchanged.
        """
        with dest.transaction():
            # Meta first: a registered side vocabulary (META_SIDES) must
            # land before the per-side rows it legitimises.
            for key, value in self.meta_items():
                dest.set_meta(key, value)
            for side in self.sides():
                for key, raw, extended in self.row_items(side):
                    dest.put_row(side, key, raw, extended)
            for (r_key, s_key), (r_row, s_row) in self.match_items():
                dest.put_match(r_key, s_key, r_row, s_row)
            for (r_key, s_key), (r_row, s_row) in self.non_match_items():
                dest.put_non_match(r_key, s_key, r_row, s_row)
            for record in self.entity_items():
                dest.put_entity(record)
            for entry in self.journal_entries():
                dest.append_journal(entry)

    def counts(self) -> Mapping[str, int]:
        """Entry counts per table (diagnostics and the CLI summary)."""
        return {
            "matches": sum(1 for _ in self.match_items()),
            "non_matches": sum(1 for _ in self.non_match_items()),
            "journal": len(self.journal_entries()),
            "r_rows": sum(1 for _ in self.row_items("r")),
            "s_rows": sum(1 for _ in self.row_items("s")),
            "entities": sum(1 for _ in self.entity_items()),
        }

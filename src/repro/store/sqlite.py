"""The durable backend: stdlib ``sqlite3``, no new dependencies.

One SQLite file holds the matching table, the negative matching table,
the derivation journal, the per-side source rows, and a metadata table —
the full state a checkpoint needs and the full provenance ``repro
explain-pair`` reads back.  Keys and rows are stored as the canonical
JSON text of :mod:`repro.store.codec`, so equality of encoded text is
equality of keys and a load reproduces the in-memory tables
bit-identically.

The connection runs in autocommit (``isolation_level=None``); writes are
grouped explicitly by :meth:`SqliteStore.transaction`, which issues
``BEGIN IMMEDIATE``/``COMMIT``/``ROLLBACK`` with nesting support — this
is what makes the blocking executor's batch merge all-or-nothing.

File-backed stores run in **WAL mode** (``journal_mode=WAL``,
``synchronous=NORMAL``): readers on separate connections see a
consistent snapshot while one writer commits, which is what lets the
serving layer (:mod:`repro.serving`) open read-only replica connections
against a store that is still being written to.  When the store knows
the extended-key attributes (:meth:`MatchStore.set_extended_key_attributes`),
every persisted source row also carries the canonical encoding of its
complete extended-key values in the ``ext_key`` column, covered by the
``source_rows_ext`` index — the ``resolve(source, key)`` and
search-before-insert lookups are index-only scans.
"""

from __future__ import annotations

import contextlib
import json
import os
import sqlite3
from dataclasses import replace
from typing import Iterator, List, Optional, Tuple

from repro.observability.tracer import Tracer
from repro.relational.row import Row
from repro.resilience.errors import InjectedFault
from repro.resilience.faults import NO_OP_INJECTOR, SITE_STORE_COMMIT, FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.store.base import (
    META_EXTENDED_KEY_ATTRIBUTES,
    META_SIDES,
    MatchStore,
    Pair,
)
from repro.store.codec import (
    KeyValues,
    decode_key,
    decode_row,
    encode_key,
    encode_row,
)
from repro.store.entity import EntityRecord, decode_entity, encode_entity
from repro.store.errors import StoreError, StoreIntegrityError
from repro.store.journal import JournalEntry, entry_checksum

__all__ = ["SqliteStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS matches (
    r_key TEXT NOT NULL,
    s_key TEXT NOT NULL,
    r_row TEXT NOT NULL,
    s_row TEXT NOT NULL,
    PRIMARY KEY (r_key, s_key)
);
CREATE TABLE IF NOT EXISTS non_matches (
    r_key TEXT NOT NULL,
    s_key TEXT NOT NULL,
    r_row TEXT NOT NULL,
    s_row TEXT NOT NULL,
    PRIMARY KEY (r_key, s_key)
);
CREATE TABLE IF NOT EXISTS journal (
    seq      INTEGER PRIMARY KEY AUTOINCREMENT,
    ts       REAL NOT NULL,
    kind     TEXT NOT NULL,
    rule     TEXT NOT NULL DEFAULT '',
    r_key    TEXT,
    s_key    TEXT,
    payload  TEXT NOT NULL DEFAULT '{}',
    checksum TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS journal_r_key ON journal (r_key);
CREATE INDEX IF NOT EXISTS journal_s_key ON journal (s_key);
CREATE TABLE IF NOT EXISTS source_rows (
    side     TEXT NOT NULL,
    key      TEXT NOT NULL,
    raw      TEXT NOT NULL,
    extended TEXT NOT NULL,
    ext_key  TEXT,
    PRIMARY KEY (side, key)
);
CREATE TABLE IF NOT EXISTS entities (
    entity_id TEXT PRIMARY KEY,
    ext_key   TEXT,
    golden    TEXT NOT NULL,
    members   TEXT NOT NULL
);
"""

# Created after the column migrations (an old file's source_rows gains
# ext_key via ALTER TABLE first, or the index DDL would not parse).
_SCHEMA_INDEXES = """
CREATE INDEX IF NOT EXISTS source_rows_ext
    ON source_rows (side, ext_key, key) WHERE ext_key IS NOT NULL;
CREATE INDEX IF NOT EXISTS matches_s_key ON matches (s_key, r_key);
CREATE INDEX IF NOT EXISTS entities_ext
    ON entities (ext_key) WHERE ext_key IS NOT NULL;
"""


class SqliteStore(MatchStore):
    """SQLite-backed :class:`~repro.store.base.MatchStore`.

    Parameters
    ----------
    path:
        Database file path, or ``":memory:"`` for an ephemeral store
        (useful in tests: full SQL semantics, no file).
    tracer:
        Optional tracer for ``store.*`` metrics.
    retry_policy:
        Optional :class:`~repro.resilience.RetryPolicy` applied to the
        transactional ``COMMIT`` itself — a commit that fails with a
        transient :class:`sqlite3.OperationalError` (a locked database)
        or an injected fault is re-issued per the policy while the
        transaction data is still intact; only after the budget is spent
        does the store roll back and raise.
    fault_injector:
        Optional :class:`~repro.resilience.FaultInjector` consulted at
        the ``store.commit`` site immediately before each ``COMMIT``.
    check_same_thread:
        Forwarded to :func:`sqlite3.connect`, explicitly.  The default
        ``True`` keeps SQLite's guard: this connection may only be used
        from the thread that created it.  Pass ``False`` **only** when
        the caller enforces its own single-writer discipline — the
        serving layer does, funnelling every write through one dedicated
        writer thread (see :class:`repro.serving.MatchLookupService`).
        Concurrent *readers* never share this connection either way;
        they open their own read-only connections
        (:class:`repro.serving.ReplicaPool`).
    read_only:
        Open a **replica**: the file is attached with ``mode=ro`` and
        ``PRAGMA query_only=ON``, no schema DDL or migration runs, and
        every write raises ``sqlite3.OperationalError``.  Under WAL,
        such a connection reads a consistent snapshot while a separate
        writer connection commits — the serving layer opens one replica
        per worker thread.  Requires a file path (``":memory:"`` has
        nothing to share).
    """

    def __init__(
        self,
        path: str = ":memory:",
        *,
        tracer: Optional[Tracer] = None,
        retry_policy: Optional[RetryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
        check_same_thread: bool = True,
        read_only: bool = False,
    ) -> None:
        super().__init__(tracer=tracer)
        self._path = str(path)
        self._closed = False
        self._read_only = read_only
        self._ext_key_attrs: Optional[Tuple[str, ...]] = None
        self._sides_cache: Optional[Tuple[str, ...]] = None
        if read_only and self._path == ":memory:":
            raise StoreError("a read-only store needs a file to share")
        try:
            if read_only:
                self._conn = sqlite3.connect(
                    f"file:{self._path}?mode=ro",
                    uri=True,
                    isolation_level=None,
                    check_same_thread=check_same_thread,
                )
            else:
                self._conn = sqlite3.connect(
                    self._path,
                    isolation_level=None,
                    check_same_thread=check_same_thread,
                )
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open SQLite store at {path!r}: {exc}") from exc
        try:
            if read_only:
                # Belt and braces on top of mode=ro, and a cheap probe
                # that the file really is an initialised store.
                self._conn.execute("PRAGMA query_only=ON")
                self._conn.execute("SELECT 1 FROM meta LIMIT 1")
            else:
                self._apply_pragmas()
                self._conn.executescript(_SCHEMA)
                self._migrate_journal_checksums()
                self._migrate_source_ext_key()
                self._conn.executescript(_SCHEMA_INDEXES)
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            self._closed = True
            raise StoreIntegrityError(
                f"cannot initialise SQLite store at {path!r} "
                f"(corrupt or not a database): {exc}"
            ) from exc
        self._txn_depth = 0
        self._retry = retry_policy
        self._injector = (
            fault_injector if fault_injector is not None else NO_OP_INJECTOR
        )

    def _apply_pragmas(self) -> None:
        """WAL + NORMAL for file-backed stores (durable, reader-friendly).

        WAL lets read-only replica connections see a consistent snapshot
        while a writer commits; ``synchronous=NORMAL`` is WAL's
        recommended pairing (fsync on checkpoint, not on every commit —
        a power loss can lose the tail of the WAL but never corrupt the
        database).  ``:memory:`` stores have no WAL to speak of and keep
        SQLite's defaults.
        """
        if self._path == ":memory:":
            return
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")

    def _migrate_journal_checksums(self) -> None:
        """Add the checksum column to journals from before checksumming.

        Legacy entries keep an empty checksum (verified as *unknown*);
        everything appended from now on is content-checksummed.
        """
        columns = {
            record[1]
            for record in self._conn.execute("PRAGMA table_info(journal)")
        }
        if "checksum" not in columns:
            self._conn.execute(
                "ALTER TABLE journal ADD COLUMN checksum TEXT NOT NULL DEFAULT ''"
            )

    def _migrate_source_ext_key(self) -> None:
        """Add the ext_key lookup column to stores from before serving.

        Legacy rows keep ``ext_key`` NULL (invisible to the partial
        index) until :meth:`reindex_extended_keys` backfills them.
        """
        columns = {
            record[1]
            for record in self._conn.execute("PRAGMA table_info(source_rows)")
        }
        if "ext_key" not in columns:
            self._conn.execute("ALTER TABLE source_rows ADD COLUMN ext_key TEXT")

    @property
    def path(self) -> str:
        """The database file path (``":memory:"`` when ephemeral)."""
        return self._path

    @property
    def read_only(self) -> bool:
        """True for a ``mode=ro`` replica connection."""
        return self._read_only

    def size_bytes(self) -> int:
        if self._path == ":memory:":
            page_count = self._conn.execute("PRAGMA page_count").fetchone()[0]
            page_size = self._conn.execute("PRAGMA page_size").fetchone()[0]
            return int(page_count) * int(page_size)
        try:
            return os.path.getsize(self._path)
        except OSError:
            return 0

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def put_match(
        self, r_key: KeyValues, s_key: KeyValues, r_row: Row, s_row: Row
    ) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO matches (r_key, s_key, r_row, s_row) "
            "VALUES (?, ?, ?, ?)",
            (encode_key(r_key), encode_key(s_key), encode_row(r_row), encode_row(s_row)),
        )

    def put_non_match(
        self, r_key: KeyValues, s_key: KeyValues, r_row: Row, s_row: Row
    ) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO non_matches (r_key, s_key, r_row, s_row) "
            "VALUES (?, ?, ?, ?)",
            (encode_key(r_key), encode_key(s_key), encode_row(r_row), encode_row(s_row)),
        )

    def delete_match(self, r_key: KeyValues, s_key: KeyValues) -> bool:
        cursor = self._conn.execute(
            "DELETE FROM matches WHERE r_key = ? AND s_key = ?",
            (encode_key(r_key), encode_key(s_key)),
        )
        return cursor.rowcount > 0

    def _items(self, table: str) -> Iterator[Tuple[Pair, Tuple[Row, Row]]]:
        cursor = self._conn.execute(
            f"SELECT r_key, s_key, r_row, s_row FROM {table} "  # noqa: S608 - fixed names
            "ORDER BY r_key, s_key"
        )
        for r_key, s_key, r_row, s_row in cursor.fetchall():
            yield (
                (decode_key(r_key), decode_key(s_key)),
                (decode_row(r_row), decode_row(s_row)),
            )

    def match_items(self) -> Iterator[Tuple[Pair, Tuple[Row, Row]]]:
        return self._items("matches")

    def non_match_items(self) -> Iterator[Tuple[Pair, Tuple[Row, Row]]]:
        return self._items("non_matches")

    def _has(self, table: str, r_key: KeyValues, s_key: KeyValues) -> bool:
        cursor = self._conn.execute(
            f"SELECT 1 FROM {table} WHERE r_key = ? AND s_key = ?",  # noqa: S608
            (encode_key(r_key), encode_key(s_key)),
        )
        return cursor.fetchone() is not None

    def has_match(self, r_key: KeyValues, s_key: KeyValues) -> bool:
        return self._has("matches", r_key, s_key)

    def has_non_match(self, r_key: KeyValues, s_key: KeyValues) -> bool:
        return self._has("non_matches", r_key, s_key)

    def append_journal(self, entry: JournalEntry) -> JournalEntry:
        cursor = self._conn.execute(
            "INSERT INTO journal (ts, kind, rule, r_key, s_key, payload, checksum) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                entry.timestamp,
                entry.kind,
                entry.rule,
                encode_key(entry.r_key) if entry.r_key is not None else None,
                encode_key(entry.s_key) if entry.s_key is not None else None,
                json.dumps(dict(entry.payload), sort_keys=True),
                entry_checksum(entry),
            ),
        )
        return replace(entry, seq=int(cursor.lastrowid))

    def _journal_checksums(self) -> dict:
        cursor = self._conn.execute("SELECT seq, checksum FROM journal")
        return {
            int(seq): checksum
            for seq, checksum in cursor.fetchall()
            if checksum
        }

    @staticmethod
    def _entry_from_record(record: Tuple) -> JournalEntry:
        seq, ts, kind, rule, r_key, s_key, payload = record
        return JournalEntry(
            seq=int(seq),
            timestamp=float(ts),
            kind=kind,
            rule=rule,
            r_key=decode_key(r_key) if r_key is not None else None,
            s_key=decode_key(s_key) if s_key is not None else None,
            payload=json.loads(payload),
        )

    def journal_entries(
        self,
        *,
        r_key: Optional[KeyValues] = None,
        s_key: Optional[KeyValues] = None,
    ) -> List[JournalEntry]:
        base = "SELECT seq, ts, kind, rule, r_key, s_key, payload FROM journal"
        if r_key is None and s_key is None:
            cursor = self._conn.execute(base + " ORDER BY seq")
            return [self._entry_from_record(record) for record in cursor.fetchall()]
        # Pull the superset touching either key, then apply the exact
        # `concerns` semantics in Python (ILFD entries are one-sided).
        encoded = [encode_key(k) for k in (r_key, s_key) if k is not None]
        placeholders = ", ".join("?" for _ in encoded)
        cursor = self._conn.execute(
            base
            + f" WHERE r_key IN ({placeholders}) OR s_key IN ({placeholders})"
            + " ORDER BY seq",
            encoded + encoded,
        )
        entries = [self._entry_from_record(record) for record in cursor.fetchall()]
        return [entry for entry in entries if entry.concerns(r_key, s_key)]

    def set_meta(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", (key, value)
        )
        if key == META_EXTENDED_KEY_ATTRIBUTES:
            # The cached attribute tuple feeds every put_row's ext_key
            # computation; a direct meta write (checkpointing writes the
            # key without going through the setter) must not leave it
            # stale.
            self._ext_key_attrs = None
        elif key == META_SIDES:
            self._sides_cache = None

    def get_meta(self, key: str, default: Optional[str] = None) -> Optional[str]:
        cursor = self._conn.execute("SELECT value FROM meta WHERE key = ?", (key,))
        record = cursor.fetchone()
        return record[0] if record is not None else default

    def meta_items(self) -> Iterator[Tuple[str, str]]:
        cursor = self._conn.execute("SELECT key, value FROM meta ORDER BY key")
        return iter(cursor.fetchall())

    def put_row(self, side: str, key: KeyValues, raw: Row, extended: Row) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO source_rows "
            "(side, key, raw, extended, ext_key) VALUES (?, ?, ?, ?, ?)",
            (
                self._check_side(side),
                encode_key(key),
                encode_row(raw),
                encode_row(extended),
                self.extended_key_text(extended),
            ),
        )

    def delete_row(self, side: str, key: KeyValues) -> bool:
        cursor = self._conn.execute(
            "DELETE FROM source_rows WHERE side = ? AND key = ?",
            (self._check_side(side), encode_key(key)),
        )
        return cursor.rowcount > 0

    def row_items(self, side: str) -> Iterator[Tuple[KeyValues, Row, Row]]:
        cursor = self._conn.execute(
            "SELECT key, raw, extended FROM source_rows WHERE side = ? "
            "ORDER BY key",
            (self._check_side(side),),
        )
        for key, raw, extended in cursor.fetchall():
            yield decode_key(key), decode_row(raw), decode_row(extended)

    # ------------------------------------------------------------------
    # Indexed point lookups (the serving layer's read path)
    # ------------------------------------------------------------------
    def extended_key_attributes(self) -> Tuple[str, ...]:
        # Cached: put_row consults this per persisted row, and a bulk
        # load must not pay one meta query per tuple.
        if self._ext_key_attrs is None:
            self._ext_key_attrs = super().extended_key_attributes()
        return self._ext_key_attrs

    def sides(self) -> Tuple[str, ...]:
        # Cached for the same reason: _check_side runs per put_row.
        if self._sides_cache is None:
            self._sides_cache = super().sides()
        return self._sides_cache

    def get_row(self, side: str, key: KeyValues) -> Optional[Tuple[Row, Row]]:
        cursor = self._conn.execute(
            "SELECT raw, extended FROM source_rows WHERE side = ? AND key = ?",
            (self._check_side(side), encode_key(key)),
        )
        record = cursor.fetchone()
        if record is None:
            return None
        return decode_row(record[0]), decode_row(record[1])

    def rows_by_extended_key(
        self, side: str, ext_key: str
    ) -> List[Tuple[KeyValues, Row, Row]]:
        cursor = self._conn.execute(
            "SELECT key, raw, extended FROM source_rows "
            "WHERE side = ? AND ext_key = ? ORDER BY key",
            (self._check_side(side), ext_key),
        )
        return [
            (decode_key(key), decode_row(raw), decode_row(extended))
            for key, raw, extended in cursor.fetchall()
        ]

    def put_entity(self, record: EntityRecord) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO entities "
            "(entity_id, ext_key, golden, members) VALUES (?, ?, ?, ?)",
            encode_entity(record),
        )

    def delete_entity(self, entity_id: str) -> bool:
        cursor = self._conn.execute(
            "DELETE FROM entities WHERE entity_id = ?", (entity_id,)
        )
        return cursor.rowcount > 0

    def get_entity(self, entity_id: str) -> Optional[EntityRecord]:
        record = self._entity_select(
            "WHERE entity_id = ?", (entity_id,)
        )
        return record[0] if record else None

    def entity_by_ext_key(self, ext_key: str) -> Optional[EntityRecord]:
        record = self._entity_select("WHERE ext_key = ?", (ext_key,))
        return record[0] if record else None

    def entity_items(self) -> Iterator[EntityRecord]:
        return iter(self._entity_select())

    def _entity_select(
        self, where: str = "", params: Tuple = ()
    ) -> List[EntityRecord]:
        # Replicas opened against a pre-entities store file have no
        # entities table; report "none persisted" rather than erroring —
        # resolve-only serving over legacy stores must keep working.
        try:
            cursor = self._conn.execute(
                "SELECT entity_id, ext_key, golden, members FROM entities "
                f"{where} ORDER BY entity_id",  # noqa: S608 - fixed names
                params,
            )
        except sqlite3.OperationalError:
            if self._read_only:
                return []
            raise
        return [decode_entity(*record) for record in cursor.fetchall()]

    def matches_for_key(
        self, side: str, key: KeyValues
    ) -> List[Tuple[Pair, Tuple[Row, Row]]]:
        column = "r_key" if self._check_side(side) == "r" else "s_key"
        cursor = self._conn.execute(
            "SELECT r_key, s_key, r_row, s_row FROM matches "
            f"WHERE {column} = ? ORDER BY r_key, s_key",  # noqa: S608 - fixed names
            (encode_key(key),),
        )
        return [
            (
                (decode_key(r_key), decode_key(s_key)),
                (decode_row(r_row), decode_row(s_row)),
            )
            for r_key, s_key, r_row, s_row in cursor.fetchall()
        ]

    def counts(self) -> dict:
        """Entry counts straight from ``COUNT(*)`` — O(1) decode work.

        The base implementation materialises and decodes every row; at
        serving scale (1M matches) that is seconds of work per ``/stats``
        call, so SQLite counts its own tables instead.
        """
        count = lambda table, where="", params=(): int(  # noqa: E731
            self._conn.execute(
                f"SELECT COUNT(*) FROM {table} {where}",  # noqa: S608 - fixed names
                params,
            ).fetchone()[0]
        )
        try:
            entities = count("entities")
        except sqlite3.OperationalError:
            entities = 0  # replica over a pre-entities store file
        return {
            "matches": count("matches"),
            "non_matches": count("non_matches"),
            "journal": count("journal"),
            "r_rows": count("source_rows", "WHERE side = ?", ("r",)),
            "s_rows": count("source_rows", "WHERE side = ?", ("s",)),
            "entities": entities,
        }

    def reindex_extended_keys(self) -> int:
        """Backfill ``ext_key`` for rows persisted before the column.

        Requires the extended-key attributes to be known
        (:meth:`~repro.store.base.MatchStore.set_extended_key_attributes`,
        or checkpoint metadata).  Only rows whose ``ext_key`` is NULL are
        touched, so re-running is cheap; returns the number of rows that
        gained an index entry.
        """
        if not self.extended_key_attributes():
            raise StoreError(
                "cannot reindex extended keys: the store does not know the "
                "extended-key attributes (set_extended_key_attributes first)"
            )
        updated = 0
        with self.transaction():
            records = self._conn.execute(
                "SELECT side, key, extended FROM source_rows "
                "WHERE ext_key IS NULL"
            ).fetchall()
            for side, key, extended in records:
                text = self.extended_key_text(decode_row(extended))
                if text is None:
                    continue
                self._conn.execute(
                    "UPDATE source_rows SET ext_key = ? "
                    "WHERE side = ? AND key = ?",
                    (text, side, key),
                )
                updated += 1
        return updated

    @contextlib.contextmanager
    def transaction(self):
        if self._txn_depth:
            self._txn_depth += 1
            try:
                yield self
            finally:
                self._txn_depth -= 1
            return
        self._conn.execute("BEGIN IMMEDIATE")
        self._txn_depth = 1
        self._begin_metric_buffer()
        try:
            yield self
        except BaseException:
            self._rollback()
            raise
        else:
            self._commit()
        finally:
            self._txn_depth = 0

    def _rollback(self) -> None:
        """Abandon the open transaction; its metrics never happened."""
        self._discard_metric_buffer()
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.OperationalError:
            pass  # a failed COMMIT may already have rolled back

    def _commit(self) -> None:
        """Commit the open transaction, retrying transient failures.

        The ``store.commit`` injector site fires before each ``COMMIT``.
        A transient :class:`sqlite3.OperationalError` (or an injected
        fault standing in for one) leaves the transaction data intact,
        so the ``COMMIT`` alone is re-issued per the retry policy; once
        the budget is spent the transaction is rolled back — journal
        appends and sequence numbers included — and the failure raised,
        leaving metrics consistent with the (unchanged) data.
        """

        def do_commit() -> None:
            self._injector.fire(SITE_STORE_COMMIT)
            self._conn.execute("COMMIT")

        try:
            if self._retry is not None and self._retry.max_attempts > 1:
                self._retry.call(
                    do_commit,
                    operation="store.commit",
                    retry_on=(sqlite3.OperationalError, InjectedFault),
                    tracer=self._tracer,
                )
            else:
                do_commit()
        except BaseException:
            if self._tracer.enabled:
                self._tracer.metrics.inc("resilience.commit_failures")
            self._rollback()
            raise
        self._commit_metric_buffer()
        if self._tracer.enabled:
            self._tracer.metrics.inc("store.transactions")

    def integrity_check(self) -> None:
        """Detect file-level corruption: truncation, malformed pages.

        Compares the on-disk size against SQLite's own page accounting —
        a file shorter than ``page_count × page_size`` has lost its tail,
        which SQLite itself only notices when a read happens to touch a
        missing page — then runs ``PRAGMA integrity_check``.  Raises
        :class:`~repro.store.errors.StoreIntegrityError` on any finding.
        """
        try:
            if self._path != ":memory:":
                # Under WAL, committed pages may still live in the -wal
                # sidecar, making the main file legitimately shorter than
                # page_count × page_size; checkpoint them into the main
                # file first so the size comparison only ever fires on
                # genuine truncation.
                with contextlib.suppress(sqlite3.OperationalError):
                    self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            page_count = int(
                self._conn.execute("PRAGMA page_count").fetchone()[0]
            )
            page_size = int(
                self._conn.execute("PRAGMA page_size").fetchone()[0]
            )
            if self._path != ":memory:":
                try:
                    actual = os.path.getsize(self._path)
                except OSError as exc:
                    raise StoreIntegrityError(
                        f"cannot stat SQLite store {self._path!r}: {exc}"
                    ) from exc
                expected = page_count * page_size
                if actual < expected:
                    raise StoreIntegrityError(
                        f"SQLite store {self._path!r} is truncated: "
                        f"{actual} bytes on disk, the header accounts for "
                        f"{expected}"
                    )
            findings = self._conn.execute("PRAGMA integrity_check").fetchall()
            if not findings or findings[0][0] != "ok":
                detail = "; ".join(str(row[0]) for row in findings[:3])
                raise StoreIntegrityError(
                    f"SQLite store {self._path!r} fails integrity_check: "
                    f"{detail or 'no verdict'}"
                )
        except sqlite3.DatabaseError as exc:
            raise StoreIntegrityError(
                f"SQLite store {self._path!r} is unreadable: {exc}"
            ) from exc

    def clear(self) -> None:
        with self.transaction():
            for table in (
                "matches",
                "non_matches",
                "journal",
                "meta",
                "source_rows",
                "entities",
            ):
                self._conn.execute(f"DELETE FROM {table}")  # noqa: S608 - fixed names
            try:
                self._conn.execute(
                    "DELETE FROM sqlite_sequence WHERE name = 'journal'"
                )
            except sqlite3.OperationalError:
                pass  # sqlite_sequence only exists after the first insert
        self._ext_key_attrs = None  # the meta rows they mirrored are gone
        self._sides_cache = None

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._conn.close()

    def __repr__(self) -> str:
        return f"<SqliteStore path={self._path!r}>"

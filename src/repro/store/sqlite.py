"""The durable backend: stdlib ``sqlite3``, no new dependencies.

One SQLite file holds the matching table, the negative matching table,
the derivation journal, the per-side source rows, and a metadata table —
the full state a checkpoint needs and the full provenance ``repro
explain-pair`` reads back.  Keys and rows are stored as the canonical
JSON text of :mod:`repro.store.codec`, so equality of encoded text is
equality of keys and a load reproduces the in-memory tables
bit-identically.

The connection runs in autocommit (``isolation_level=None``); writes are
grouped explicitly by :meth:`SqliteStore.transaction`, which issues
``BEGIN IMMEDIATE``/``COMMIT``/``ROLLBACK`` with nesting support — this
is what makes the blocking executor's batch merge all-or-nothing.
"""

from __future__ import annotations

import contextlib
import json
import os
import sqlite3
from dataclasses import replace
from typing import Iterator, List, Optional, Tuple

from repro.observability.tracer import Tracer
from repro.relational.row import Row
from repro.resilience.errors import InjectedFault
from repro.resilience.faults import NO_OP_INJECTOR, SITE_STORE_COMMIT, FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.store.base import MatchStore, Pair
from repro.store.codec import (
    KeyValues,
    decode_key,
    decode_row,
    encode_key,
    encode_row,
)
from repro.store.errors import StoreError, StoreIntegrityError
from repro.store.journal import JournalEntry, entry_checksum

__all__ = ["SqliteStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS matches (
    r_key TEXT NOT NULL,
    s_key TEXT NOT NULL,
    r_row TEXT NOT NULL,
    s_row TEXT NOT NULL,
    PRIMARY KEY (r_key, s_key)
);
CREATE TABLE IF NOT EXISTS non_matches (
    r_key TEXT NOT NULL,
    s_key TEXT NOT NULL,
    r_row TEXT NOT NULL,
    s_row TEXT NOT NULL,
    PRIMARY KEY (r_key, s_key)
);
CREATE TABLE IF NOT EXISTS journal (
    seq      INTEGER PRIMARY KEY AUTOINCREMENT,
    ts       REAL NOT NULL,
    kind     TEXT NOT NULL,
    rule     TEXT NOT NULL DEFAULT '',
    r_key    TEXT,
    s_key    TEXT,
    payload  TEXT NOT NULL DEFAULT '{}',
    checksum TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS journal_r_key ON journal (r_key);
CREATE INDEX IF NOT EXISTS journal_s_key ON journal (s_key);
CREATE TABLE IF NOT EXISTS source_rows (
    side     TEXT NOT NULL,
    key      TEXT NOT NULL,
    raw      TEXT NOT NULL,
    extended TEXT NOT NULL,
    PRIMARY KEY (side, key)
);
"""


class SqliteStore(MatchStore):
    """SQLite-backed :class:`~repro.store.base.MatchStore`.

    Parameters
    ----------
    path:
        Database file path, or ``":memory:"`` for an ephemeral store
        (useful in tests: full SQL semantics, no file).
    tracer:
        Optional tracer for ``store.*`` metrics.
    retry_policy:
        Optional :class:`~repro.resilience.RetryPolicy` applied to the
        transactional ``COMMIT`` itself — a commit that fails with a
        transient :class:`sqlite3.OperationalError` (a locked database)
        or an injected fault is re-issued per the policy while the
        transaction data is still intact; only after the budget is spent
        does the store roll back and raise.
    fault_injector:
        Optional :class:`~repro.resilience.FaultInjector` consulted at
        the ``store.commit`` site immediately before each ``COMMIT``.
    """

    def __init__(
        self,
        path: str = ":memory:",
        *,
        tracer: Optional[Tracer] = None,
        retry_policy: Optional[RetryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        super().__init__(tracer=tracer)
        self._path = str(path)
        try:
            self._conn = sqlite3.connect(self._path, isolation_level=None)
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open SQLite store at {path!r}: {exc}") from exc
        try:
            self._conn.executescript(_SCHEMA)
            self._migrate_journal_checksums()
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            raise StoreIntegrityError(
                f"cannot initialise SQLite store at {path!r} "
                f"(corrupt or not a database): {exc}"
            ) from exc
        self._txn_depth = 0
        self._retry = retry_policy
        self._injector = (
            fault_injector if fault_injector is not None else NO_OP_INJECTOR
        )

    def _migrate_journal_checksums(self) -> None:
        """Add the checksum column to journals from before checksumming.

        Legacy entries keep an empty checksum (verified as *unknown*);
        everything appended from now on is content-checksummed.
        """
        columns = {
            record[1]
            for record in self._conn.execute("PRAGMA table_info(journal)")
        }
        if "checksum" not in columns:
            self._conn.execute(
                "ALTER TABLE journal ADD COLUMN checksum TEXT NOT NULL DEFAULT ''"
            )

    @property
    def path(self) -> str:
        """The database file path (``":memory:"`` when ephemeral)."""
        return self._path

    def size_bytes(self) -> int:
        if self._path == ":memory:":
            page_count = self._conn.execute("PRAGMA page_count").fetchone()[0]
            page_size = self._conn.execute("PRAGMA page_size").fetchone()[0]
            return int(page_count) * int(page_size)
        try:
            return os.path.getsize(self._path)
        except OSError:
            return 0

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def put_match(
        self, r_key: KeyValues, s_key: KeyValues, r_row: Row, s_row: Row
    ) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO matches (r_key, s_key, r_row, s_row) "
            "VALUES (?, ?, ?, ?)",
            (encode_key(r_key), encode_key(s_key), encode_row(r_row), encode_row(s_row)),
        )

    def put_non_match(
        self, r_key: KeyValues, s_key: KeyValues, r_row: Row, s_row: Row
    ) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO non_matches (r_key, s_key, r_row, s_row) "
            "VALUES (?, ?, ?, ?)",
            (encode_key(r_key), encode_key(s_key), encode_row(r_row), encode_row(s_row)),
        )

    def delete_match(self, r_key: KeyValues, s_key: KeyValues) -> bool:
        cursor = self._conn.execute(
            "DELETE FROM matches WHERE r_key = ? AND s_key = ?",
            (encode_key(r_key), encode_key(s_key)),
        )
        return cursor.rowcount > 0

    def _items(self, table: str) -> Iterator[Tuple[Pair, Tuple[Row, Row]]]:
        cursor = self._conn.execute(
            f"SELECT r_key, s_key, r_row, s_row FROM {table} "  # noqa: S608 - fixed names
            "ORDER BY r_key, s_key"
        )
        for r_key, s_key, r_row, s_row in cursor.fetchall():
            yield (
                (decode_key(r_key), decode_key(s_key)),
                (decode_row(r_row), decode_row(s_row)),
            )

    def match_items(self) -> Iterator[Tuple[Pair, Tuple[Row, Row]]]:
        return self._items("matches")

    def non_match_items(self) -> Iterator[Tuple[Pair, Tuple[Row, Row]]]:
        return self._items("non_matches")

    def _has(self, table: str, r_key: KeyValues, s_key: KeyValues) -> bool:
        cursor = self._conn.execute(
            f"SELECT 1 FROM {table} WHERE r_key = ? AND s_key = ?",  # noqa: S608
            (encode_key(r_key), encode_key(s_key)),
        )
        return cursor.fetchone() is not None

    def has_match(self, r_key: KeyValues, s_key: KeyValues) -> bool:
        return self._has("matches", r_key, s_key)

    def has_non_match(self, r_key: KeyValues, s_key: KeyValues) -> bool:
        return self._has("non_matches", r_key, s_key)

    def append_journal(self, entry: JournalEntry) -> JournalEntry:
        cursor = self._conn.execute(
            "INSERT INTO journal (ts, kind, rule, r_key, s_key, payload, checksum) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                entry.timestamp,
                entry.kind,
                entry.rule,
                encode_key(entry.r_key) if entry.r_key is not None else None,
                encode_key(entry.s_key) if entry.s_key is not None else None,
                json.dumps(dict(entry.payload), sort_keys=True),
                entry_checksum(entry),
            ),
        )
        return replace(entry, seq=int(cursor.lastrowid))

    def _journal_checksums(self) -> dict:
        cursor = self._conn.execute("SELECT seq, checksum FROM journal")
        return {
            int(seq): checksum
            for seq, checksum in cursor.fetchall()
            if checksum
        }

    @staticmethod
    def _entry_from_record(record: Tuple) -> JournalEntry:
        seq, ts, kind, rule, r_key, s_key, payload = record
        return JournalEntry(
            seq=int(seq),
            timestamp=float(ts),
            kind=kind,
            rule=rule,
            r_key=decode_key(r_key) if r_key is not None else None,
            s_key=decode_key(s_key) if s_key is not None else None,
            payload=json.loads(payload),
        )

    def journal_entries(
        self,
        *,
        r_key: Optional[KeyValues] = None,
        s_key: Optional[KeyValues] = None,
    ) -> List[JournalEntry]:
        base = "SELECT seq, ts, kind, rule, r_key, s_key, payload FROM journal"
        if r_key is None and s_key is None:
            cursor = self._conn.execute(base + " ORDER BY seq")
            return [self._entry_from_record(record) for record in cursor.fetchall()]
        # Pull the superset touching either key, then apply the exact
        # `concerns` semantics in Python (ILFD entries are one-sided).
        encoded = [encode_key(k) for k in (r_key, s_key) if k is not None]
        placeholders = ", ".join("?" for _ in encoded)
        cursor = self._conn.execute(
            base
            + f" WHERE r_key IN ({placeholders}) OR s_key IN ({placeholders})"
            + " ORDER BY seq",
            encoded + encoded,
        )
        entries = [self._entry_from_record(record) for record in cursor.fetchall()]
        return [entry for entry in entries if entry.concerns(r_key, s_key)]

    def set_meta(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", (key, value)
        )

    def get_meta(self, key: str, default: Optional[str] = None) -> Optional[str]:
        cursor = self._conn.execute("SELECT value FROM meta WHERE key = ?", (key,))
        record = cursor.fetchone()
        return record[0] if record is not None else default

    def meta_items(self) -> Iterator[Tuple[str, str]]:
        cursor = self._conn.execute("SELECT key, value FROM meta ORDER BY key")
        return iter(cursor.fetchall())

    def put_row(self, side: str, key: KeyValues, raw: Row, extended: Row) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO source_rows (side, key, raw, extended) "
            "VALUES (?, ?, ?, ?)",
            (
                self._check_side(side),
                encode_key(key),
                encode_row(raw),
                encode_row(extended),
            ),
        )

    def delete_row(self, side: str, key: KeyValues) -> bool:
        cursor = self._conn.execute(
            "DELETE FROM source_rows WHERE side = ? AND key = ?",
            (self._check_side(side), encode_key(key)),
        )
        return cursor.rowcount > 0

    def row_items(self, side: str) -> Iterator[Tuple[KeyValues, Row, Row]]:
        cursor = self._conn.execute(
            "SELECT key, raw, extended FROM source_rows WHERE side = ? "
            "ORDER BY key",
            (self._check_side(side),),
        )
        for key, raw, extended in cursor.fetchall():
            yield decode_key(key), decode_row(raw), decode_row(extended)

    @contextlib.contextmanager
    def transaction(self):
        if self._txn_depth:
            self._txn_depth += 1
            try:
                yield self
            finally:
                self._txn_depth -= 1
            return
        self._conn.execute("BEGIN IMMEDIATE")
        self._txn_depth = 1
        self._begin_metric_buffer()
        try:
            yield self
        except BaseException:
            self._rollback()
            raise
        else:
            self._commit()
        finally:
            self._txn_depth = 0

    def _rollback(self) -> None:
        """Abandon the open transaction; its metrics never happened."""
        self._discard_metric_buffer()
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.OperationalError:
            pass  # a failed COMMIT may already have rolled back

    def _commit(self) -> None:
        """Commit the open transaction, retrying transient failures.

        The ``store.commit`` injector site fires before each ``COMMIT``.
        A transient :class:`sqlite3.OperationalError` (or an injected
        fault standing in for one) leaves the transaction data intact,
        so the ``COMMIT`` alone is re-issued per the retry policy; once
        the budget is spent the transaction is rolled back — journal
        appends and sequence numbers included — and the failure raised,
        leaving metrics consistent with the (unchanged) data.
        """

        def do_commit() -> None:
            self._injector.fire(SITE_STORE_COMMIT)
            self._conn.execute("COMMIT")

        try:
            if self._retry is not None and self._retry.max_attempts > 1:
                self._retry.call(
                    do_commit,
                    operation="store.commit",
                    retry_on=(sqlite3.OperationalError, InjectedFault),
                    tracer=self._tracer,
                )
            else:
                do_commit()
        except BaseException:
            if self._tracer.enabled:
                self._tracer.metrics.inc("resilience.commit_failures")
            self._rollback()
            raise
        self._commit_metric_buffer()
        if self._tracer.enabled:
            self._tracer.metrics.inc("store.transactions")

    def integrity_check(self) -> None:
        """Detect file-level corruption: truncation, malformed pages.

        Compares the on-disk size against SQLite's own page accounting —
        a file shorter than ``page_count × page_size`` has lost its tail,
        which SQLite itself only notices when a read happens to touch a
        missing page — then runs ``PRAGMA integrity_check``.  Raises
        :class:`~repro.store.errors.StoreIntegrityError` on any finding.
        """
        try:
            page_count = int(
                self._conn.execute("PRAGMA page_count").fetchone()[0]
            )
            page_size = int(
                self._conn.execute("PRAGMA page_size").fetchone()[0]
            )
            if self._path != ":memory:":
                try:
                    actual = os.path.getsize(self._path)
                except OSError as exc:
                    raise StoreIntegrityError(
                        f"cannot stat SQLite store {self._path!r}: {exc}"
                    ) from exc
                expected = page_count * page_size
                if actual < expected:
                    raise StoreIntegrityError(
                        f"SQLite store {self._path!r} is truncated: "
                        f"{actual} bytes on disk, the header accounts for "
                        f"{expected}"
                    )
            findings = self._conn.execute("PRAGMA integrity_check").fetchall()
            if not findings or findings[0][0] != "ok":
                detail = "; ".join(str(row[0]) for row in findings[:3])
                raise StoreIntegrityError(
                    f"SQLite store {self._path!r} fails integrity_check: "
                    f"{detail or 'no verdict'}"
                )
        except sqlite3.DatabaseError as exc:
            raise StoreIntegrityError(
                f"SQLite store {self._path!r} is unreadable: {exc}"
            ) from exc

    def clear(self) -> None:
        with self.transaction():
            for table in ("matches", "non_matches", "journal", "meta", "source_rows"):
                self._conn.execute(f"DELETE FROM {table}")  # noqa: S608 - fixed names
            try:
                self._conn.execute(
                    "DELETE FROM sqlite_sequence WHERE name = 'journal'"
                )
            except sqlite3.OperationalError:
                pass  # sqlite_sequence only exists after the first insert

    def close(self) -> None:
        self._conn.close()

    def __repr__(self) -> str:
        return f"<SqliteStore path={self._path!r}>"

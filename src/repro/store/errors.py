"""Errors raised by the persistence subsystem."""

from __future__ import annotations

__all__ = ["StoreError", "StoreCodecError", "StoreIntegrityError"]


class StoreError(Exception):
    """Base class for matching-store failures."""


class StoreCodecError(StoreError):
    """A value, key, or row cannot be (de)serialised canonically."""


class StoreIntegrityError(StoreError):
    """Persisted state violates the paper's constraints or the journal.

    Raised when a loaded store fails the uniqueness constraint, the
    consistency constraint (matching/negative overlap), or when replaying
    the derivation journal does not reproduce the stored tables.
    """

"""Bench history and the performance-regression gate.

``BENCH_*.json`` files are overwritten in place, so by themselves they
cannot answer "did this PR make the hot path slower?".  The history file
(default ``BENCH_HISTORY.jsonl``) fixes that: every bench run *appends*
one record per tracked series — keyed by bench name, series name, and
size — and :func:`check_history` compares each series' newest value
against its recorded baseline (the series' first record, or the last
record explicitly flagged ``"baseline": true``).

``repro report bench-check --threshold 0.15`` is the CI gate built on
this: exit 1 when any latency series got more than 15% slower or any
throughput series more than 15% smaller than its baseline.  Records
carry the full environment header from
:mod:`repro.telemetry.environment`; by default series compare across
environments (so a committed baseline gates CI runners), and
``same_env=True`` restricts each series to records whose environment
fingerprint matches the newest record's.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.environment import (
    capture_environment,
    environment_fingerprint,
)
from repro.telemetry.errors import HistoryError

__all__ = [
    "KIND_LATENCY",
    "KIND_THROUGHPUT",
    "SeriesVerdict",
    "make_record",
    "append_history",
    "load_history",
    "check_history",
    "format_verdicts",
]

KIND_LATENCY = "latency"
KIND_THROUGHPUT = "throughput"
_KINDS = (KIND_LATENCY, KIND_THROUGHPUT)


@dataclass
class SeriesVerdict:
    """The gate's judgement of one tracked series."""

    bench: str
    series: str
    size: Optional[int]
    kind: str
    baseline: float
    latest: float
    change: float  # signed fraction: +0.2 = latest is 20% above baseline
    regressed: bool
    records: int

    def label(self) -> str:
        suffix = f"@{self.size}" if self.size is not None else ""
        return f"{self.bench}/{self.series}{suffix}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bench": self.bench,
            "series": self.series,
            "size": self.size,
            "kind": self.kind,
            "baseline": self.baseline,
            "latest": self.latest,
            "change": self.change,
            "regressed": self.regressed,
            "records": self.records,
        }


def make_record(
    bench: str,
    series: str,
    kind: str,
    value: float,
    *,
    size: Optional[int] = None,
    environment: Optional[Dict[str, Any]] = None,
    baseline: bool = False,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One history record (the JSONL line's dict form)."""
    if kind not in _KINDS:
        raise ValueError(f"kind must be one of {_KINDS}, not {kind!r}")
    record: Dict[str, Any] = {
        "bench": bench,
        "series": series,
        "kind": kind,
        "value": float(value),
        "env": environment if environment is not None else capture_environment(),
    }
    if size is not None:
        record["size"] = int(size)
    if baseline:
        record["baseline"] = True
    if extra:
        record["extra"] = dict(extra)
    return record


def append_history(path: str, records: List[Dict[str, Any]]) -> int:
    """Append *records* to the JSONL history at *path* (created if absent)."""
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return len(records)


def load_history(path: str) -> List[Dict[str, Any]]:
    """Parse the JSONL history file (file order == chronological order)."""
    if not os.path.exists(path):
        raise HistoryError(f"no bench history at {path!r}")
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise HistoryError(
                    f"{path}:{number}: not valid JSON: {exc}"
                ) from exc
            if not isinstance(record, dict) or "series" not in record:
                raise HistoryError(
                    f"{path}:{number}: record lacks a 'series' field"
                )
            records.append(record)
    return records


def _series_key(record: Dict[str, Any]) -> Tuple[str, str, Optional[int]]:
    return (
        str(record.get("bench", "")),
        str(record["series"]),
        record.get("size"),
    )


def check_history(
    records: List[Dict[str, Any]],
    *,
    threshold: float = 0.15,
    same_env: bool = False,
) -> List[SeriesVerdict]:
    """Judge every tracked series against its baseline.

    The baseline is the last record flagged ``"baseline": true``, or the
    series' first record when none is flagged.  A series with a single
    record has nothing to compare and produces no verdict.
    """
    if threshold <= 0:
        raise ValueError("threshold must be > 0")
    by_series: Dict[Tuple[str, str, Optional[int]], List[Dict[str, Any]]] = {}
    for record in records:
        by_series.setdefault(_series_key(record), []).append(record)
    verdicts: List[SeriesVerdict] = []
    for (bench, series, size), entries in sorted(by_series.items()):
        if same_env:
            newest_env = environment_fingerprint(entries[-1].get("env", {}))
            entries = [
                e
                for e in entries
                if environment_fingerprint(e.get("env", {})) == newest_env
            ]
        if len(entries) < 2:
            continue
        baseline_entry = entries[0]
        for entry in entries[:-1]:
            if entry.get("baseline"):
                baseline_entry = entry
        latest_entry = entries[-1]
        kind = str(latest_entry.get("kind", KIND_LATENCY))
        baseline = float(baseline_entry["value"])
        latest = float(latest_entry["value"])
        change = (latest - baseline) / baseline if baseline else 0.0
        if kind == KIND_THROUGHPUT:
            regressed = change < -threshold
        else:
            regressed = change > threshold
        verdicts.append(
            SeriesVerdict(
                bench=bench,
                series=series,
                size=size,
                kind=kind,
                baseline=baseline,
                latest=latest,
                change=round(change, 4),
                regressed=regressed,
                records=len(entries),
            )
        )
    return verdicts


def format_verdicts(
    verdicts: List[SeriesVerdict], threshold: float
) -> str:
    """The ``repro report bench-check`` rendering."""
    if not verdicts:
        return (
            "bench-check: no comparable series "
            "(each tracked series needs at least two records)"
        )
    width = max(len(v.label()) for v in verdicts)
    lines = []
    for verdict in verdicts:
        unit = "ms" if verdict.kind == KIND_LATENCY else "/s"
        marker = "REGRESSED" if verdict.regressed else "ok"
        lines.append(
            f"  {verdict.label():<{width}}  {verdict.baseline:g}{unit} -> "
            f"{verdict.latest:g}{unit}  ({verdict.change:+.1%})  {marker}"
        )
    regressions = sum(1 for v in verdicts if v.regressed)
    header = (
        f"bench-check: {len(verdicts)} series against baseline "
        f"(threshold {threshold:.0%}): "
        + (f"{regressions} REGRESSED" if regressions else "all within budget")
    )
    return "\n".join([header] + lines)

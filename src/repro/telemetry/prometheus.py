"""Prometheus text-exposition and JSONL emitters for metrics snapshots.

``repro report prom`` renders a stored run's metrics in the Prometheus
text exposition format (version 0.0.4 — the ``# HELP``/``# TYPE`` lines
plus one sample per line) so an external scraper, a Pushgateway, or a
node-exporter textfile collector can consume identification telemetry
without this package growing a client dependency.  ``repro report
jsonl`` emits the same snapshots as one flat JSON record per metric for
ad-hoc scripting (jq, pandas).

Counter names map ``blocking.pairs_generated`` →
``repro_blocking_pairs_generated_total``; histograms become the
``_count``/``_sum`` pair plus ``_min``/``_max``/``_mean`` gauges (the
registry keeps streaming summaries, not buckets).
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.observability.metrics import MetricsRegistry
from repro.telemetry.report import RunReport

__all__ = [
    "sanitize_metric_name",
    "format_labels",
    "metrics_to_prometheus",
    "report_to_prometheus",
    "metrics_to_jsonl_records",
    "write_metrics_jsonl",
]

_INVALID = re.compile(r"[^a-zA-Z0-9_]")
_PREFIX = "repro"


def sanitize_metric_name(name: str, suffix: str = "") -> str:
    """A dotted registry name as a valid Prometheus metric name."""
    cleaned = _INVALID.sub("_", name.strip())
    cleaned = re.sub(r"__+", "_", cleaned).strip("_")
    return f"{_PREFIX}_{cleaned}{suffix}"


def format_labels(labels: Optional[Mapping[str, Any]]) -> str:
    """``{key="value",...}`` with escaped values ("" when no labels)."""
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        value = str(labels[key]).replace("\\", r"\\").replace('"', r"\"")
        parts.append(f'{_INVALID.sub("_", key)}="{value}"')
    return "{" + ",".join(parts) + "}"


def metrics_to_prometheus(
    snapshot: Mapping[str, Any],
    labels: Optional[Mapping[str, Any]] = None,
) -> str:
    """One metrics snapshot in the Prometheus text exposition format."""
    label_text = format_labels(labels)
    lines: List[str] = []
    counters: Mapping[str, int] = snapshot.get("counters", {}) or {}
    for name in sorted(counters):
        metric = sanitize_metric_name(name, "_total")
        description = MetricsRegistry.description(name)
        if description:
            lines.append(f"# HELP {metric} {description}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{label_text} {counters[name]}")
    histograms: Mapping[str, Mapping[str, float]] = (
        snapshot.get("histograms", {}) or {}
    )
    for name in sorted(histograms):
        summary = histograms[name]
        base = sanitize_metric_name(name)
        description = MetricsRegistry.description(name)
        if description:
            lines.append(f"# HELP {base} {description}")
        lines.append(f"# TYPE {base} summary")
        lines.append(f"{base}_count{label_text} {summary.get('count', 0)}")
        lines.append(f"{base}_sum{label_text} {summary.get('sum', 0.0)}")
        for stat in ("min", "max", "mean"):
            metric = f"{base}_{stat}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric}{label_text} {summary.get(stat, 0.0)}")
    return "\n".join(lines) + ("\n" if lines else "")


def report_to_prometheus(report: RunReport) -> str:
    """A stored run as Prometheus text: run-level gauges + its metrics.

    Every sample carries ``command`` and (when ledgered) ``run`` labels
    so scrapes of different runs stay distinguishable series.
    """
    labels: Dict[str, Any] = {"command": report.command}
    if report.run_id is not None:
        labels["run"] = report.run_id
    label_text = format_labels(labels)
    gauges = [
        ("repro_run_wall_seconds", report.wall_s, "run wall-clock seconds"),
        ("repro_run_cpu_seconds", report.cpu_s, "run CPU seconds"),
        (
            "repro_run_peak_memory_kb",
            report.peak_mem_kb,
            "run peak memory in KiB",
        ),
        ("repro_run_pairs", report.pairs, "tuple pairs processed by the run"),
    ]
    if report.throughput_pairs_per_s is not None:
        gauges.append(
            (
                "repro_run_throughput_pairs_per_second",
                report.throughput_pairs_per_s,
                "pairs evaluated per wall-clock second",
            )
        )
    lines: List[str] = []
    for metric, value, help_text in gauges:
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{label_text} {value}")
    for phase in report.phases:
        metric = "repro_run_phase_wall_ms"
        if not any(line.startswith(f"# TYPE {metric} ") for line in lines):
            lines.append(f"# HELP {metric} per-phase wall milliseconds")
            lines.append(f"# TYPE {metric} gauge")
        phase_labels = format_labels({**labels, "phase": phase["name"]})
        lines.append(f"{metric}{phase_labels} {phase['wall_ms']}")
    body = "\n".join(lines) + "\n"
    return body + metrics_to_prometheus(report.metrics, labels)


def metrics_to_jsonl_records(report: RunReport) -> Iterator[Dict[str, Any]]:
    """Flat JSONL records for one run: a header, then one row per metric."""
    base = {
        "run": report.run_id,
        "command": report.command,
        "timestamp": report.timestamp,
    }
    yield {
        **base,
        "kind": "run",
        "wall_s": report.wall_s,
        "cpu_s": report.cpu_s,
        "peak_mem_kb": report.peak_mem_kb,
        "pairs": report.pairs,
        "throughput_pairs_per_s": report.throughput_pairs_per_s,
        "environment": report.environment,
        "outcome": report.outcome,
    }
    counters: Mapping[str, int] = report.metrics.get("counters", {}) or {}
    for name in sorted(counters):
        yield {**base, "kind": "counter", "name": name, "value": counters[name]}
    histograms: Mapping[str, Mapping[str, float]] = (
        report.metrics.get("histograms", {}) or {}
    )
    for name in sorted(histograms):
        yield {
            **base,
            "kind": "histogram",
            "name": name,
            **{k: v for k, v in histograms[name].items()},
        }


def write_metrics_jsonl(reports: List[RunReport], path: str) -> int:
    """Dump *reports* as JSONL to *path*; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for report in reports:
            for record in metrics_to_jsonl_records(report):
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
                count += 1
    return count

"""Run ledger and performance-regression telemetry.

The observability layer (PR 1) records what one run did — and loses it
when the process exits.  This package makes that record *durable* and
*comparable*:

- :mod:`repro.telemetry.environment` — the one producer of the
  environment header (python, platform, cpu_count, git SHA) every run
  and bench record carries, so any two numbers can be traced to where
  they were measured.
- :mod:`repro.telemetry.report` — :class:`RunReport` assembles one CLI
  invocation's full cost picture (config, phase timings from the span
  tree, wall/CPU/peak-memory, throughput, metrics snapshot, resilience
  events); :func:`diff_reports` renders run-vs-run deltas.
- :mod:`repro.telemetry.ledger` — :class:`RunLedger`, the append-only
  SQLite history behind ``repro identify --ledger runs.db`` and
  ``repro report list/show/diff``.
- :mod:`repro.telemetry.prometheus` — Prometheus text-exposition and
  JSONL emitters (``repro report prom`` / ``repro report jsonl``) for
  external scrapers.
- :mod:`repro.telemetry.benchcheck` — the bench-history file
  (``BENCH_HISTORY.jsonl``) and the regression gate behind
  ``repro report bench-check``, CI's standing answer to "did this PR
  make the hot path slower?".

Telemetry is strictly read-only with respect to identification: it
observes through the tracer and never touches tables, journals, or
rule evaluation — the conformance matrix stays bit-identical with a
ledger attached.
"""

from repro.telemetry.benchcheck import (
    KIND_LATENCY,
    KIND_THROUGHPUT,
    SeriesVerdict,
    append_history,
    check_history,
    format_verdicts,
    load_history,
    make_record,
)
from repro.telemetry.environment import (
    capture_environment,
    environment_fingerprint,
    git_sha,
)
from repro.telemetry.errors import HistoryError, LedgerError, TelemetryError
from repro.telemetry.ledger import LEDGER_SCHEMA_VERSION, RunLedger
from repro.telemetry.prometheus import (
    metrics_to_jsonl_records,
    metrics_to_prometheus,
    report_to_prometheus,
    sanitize_metric_name,
    write_metrics_jsonl,
)
from repro.telemetry.report import (
    RunRecorder,
    RunReport,
    aggregate_phases,
    diff_reports,
)

__all__ = [
    "KIND_LATENCY",
    "KIND_THROUGHPUT",
    "LEDGER_SCHEMA_VERSION",
    "HistoryError",
    "LedgerError",
    "RunLedger",
    "RunRecorder",
    "RunReport",
    "SeriesVerdict",
    "TelemetryError",
    "aggregate_phases",
    "append_history",
    "capture_environment",
    "check_history",
    "diff_reports",
    "environment_fingerprint",
    "format_verdicts",
    "git_sha",
    "load_history",
    "make_record",
    "metrics_to_jsonl_records",
    "metrics_to_prometheus",
    "report_to_prometheus",
    "sanitize_metric_name",
    "write_metrics_jsonl",
]

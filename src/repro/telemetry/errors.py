"""Telemetry-layer exceptions."""

from __future__ import annotations

__all__ = ["TelemetryError", "LedgerError", "HistoryError"]


class TelemetryError(Exception):
    """Base class for run-ledger and regression-tracking failures."""


class LedgerError(TelemetryError):
    """The run ledger cannot be opened, read, or appended to."""


class HistoryError(TelemetryError):
    """The bench-history file is unreadable or malformed."""

"""Structured run reports: what one CLI invocation did, and at what cost.

A :class:`RunReport` is the durable record of one ``repro
identify/resume/conform`` run — environment header, full configuration,
wall/CPU time, peak memory, throughput, per-phase timings derived from
the tracer's span tree, the complete metrics snapshot, and any
resilience events.  :class:`RunRecorder` brackets the run (start the
clocks, then :meth:`RunRecorder.finish` assembles the report);
:func:`diff_reports` renders the phase-timing and metrics deltas between
two reports, which is the whole point of keeping them: "did PR N make
``identify`` slower than PR N-1?" becomes a query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.observability.export import span_to_record
from repro.observability.tracer import Tracer, peak_rss_kb
from repro.telemetry.environment import capture_environment

__all__ = [
    "RunReport",
    "RunRecorder",
    "aggregate_phases",
    "diff_reports",
]

_THROUGHPUT_COUNTERS = ("pipeline.pairs", "executor.pairs_evaluated")


@dataclass
class RunReport:
    """One run's durable telemetry record (plain-data, JSON-round-trips)."""

    command: str
    timestamp: float
    environment: Dict[str, Any]
    config: Dict[str, Any]
    wall_s: float
    cpu_s: float
    peak_mem_kb: float
    pairs: int
    throughput_pairs_per_s: Optional[float]
    phases: List[Dict[str, Any]]
    spans: List[Dict[str, Any]]
    metrics: Dict[str, Any]
    resilience: Dict[str, int]
    outcome: Dict[str, Any]
    run_id: Optional[int] = field(default=None)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the ledger's storage format)."""
        return {
            "command": self.command,
            "timestamp": self.timestamp,
            "environment": dict(self.environment),
            "config": dict(self.config),
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "peak_mem_kb": self.peak_mem_kb,
            "pairs": self.pairs,
            "throughput_pairs_per_s": self.throughput_pairs_per_s,
            "phases": [dict(p) for p in self.phases],
            "spans": [dict(s) for s in self.spans],
            "metrics": dict(self.metrics),
            "resilience": dict(self.resilience),
            "outcome": dict(self.outcome),
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], run_id: Optional[int] = None
    ) -> "RunReport":
        """Inverse of :meth:`to_dict` (*run_id* comes from the ledger row)."""
        return cls(
            command=data["command"],
            timestamp=float(data["timestamp"]),
            environment=dict(data.get("environment", {})),
            config=dict(data.get("config", {})),
            wall_s=float(data.get("wall_s", 0.0)),
            cpu_s=float(data.get("cpu_s", 0.0)),
            peak_mem_kb=float(data.get("peak_mem_kb", 0.0)),
            pairs=int(data.get("pairs", 0)),
            throughput_pairs_per_s=data.get("throughput_pairs_per_s"),
            phases=list(data.get("phases", [])),
            spans=list(data.get("spans", [])),
            metrics=dict(data.get("metrics", {})),
            resilience=dict(data.get("resilience", {})),
            outcome=dict(data.get("outcome", {})),
            run_id=run_id,
        )

    def summary(self) -> str:
        """The ``repro report show`` rendering."""
        label = f"run {self.run_id}" if self.run_id is not None else "run"
        when = time.strftime(
            "%Y-%m-%d %H:%M:%SZ", time.gmtime(self.timestamp)
        )
        lines = [
            f"{label}: repro {self.command} at {when}",
            f"  environment  python {self.environment.get('python', '?')} "
            f"on {self.environment.get('platform', '?')} "
            f"({self.environment.get('cpu_count', '?')} cpu)",
        ]
        sha = self.environment.get("git_sha")
        if sha:
            lines.append(f"  git sha      {sha[:12]}")
        config = {k: v for k, v in sorted(self.config.items()) if v not in (None, False)}
        if config:
            lines.append(
                "  config       "
                + " ".join(f"{k}={v}" for k, v in config.items())
            )
        lines.append(
            f"  cost         wall {self.wall_s * 1e3:.1f} ms, "
            f"cpu {self.cpu_s * 1e3:.1f} ms, "
            f"peak mem {self.peak_mem_kb:.0f} KiB"
        )
        if self.throughput_pairs_per_s:
            lines.append(
                f"  throughput   {self.pairs} pairs, "
                f"{self.throughput_pairs_per_s:.0f} pairs/s"
            )
        if self.phases:
            lines.append("  phases:")
            width = max(len(p["name"]) for p in self.phases)
            for phase in self.phases:
                entry = (
                    f"    {phase['name']:<{width}}  n={phase['count']}  "
                    f"total={phase['wall_ms']:.3f} ms"
                )
                if phase.get("mem_delta_kb") is not None:
                    entry += f"  mem {phase['mem_delta_kb']:+.1f} KiB"
                lines.append(entry)
        if self.resilience:
            lines.append("  resilience events:")
            for name, value in sorted(self.resilience.items()):
                lines.append(f"    {name}  {value}")
        outcome = {k: v for k, v in sorted(self.outcome.items())}
        if outcome:
            lines.append(
                "  outcome      "
                + " ".join(f"{k}={v}" for k, v in outcome.items())
            )
        return "\n".join(lines)


def aggregate_phases(spans: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-span-name wall-time (and memory, when profiled) aggregates.

    The report's quick "where did the time go" table, ordered by total
    wall time descending — the same aggregation ``repro stats`` prints,
    in plain-data form.
    """
    totals: Dict[str, Dict[str, Any]] = {}
    for record in spans:
        entry = totals.setdefault(
            record["name"],
            {"name": record["name"], "count": 0, "wall_ms": 0.0},
        )
        entry["count"] += 1
        entry["wall_ms"] += record.get("duration", 0.0) * 1e3
        memory = record.get("memory") or {}
        if "delta_kb" in memory:
            entry["mem_delta_kb"] = (
                entry.get("mem_delta_kb", 0.0) + memory["delta_kb"]
            )
    phases = sorted(totals.values(), key=lambda e: -e["wall_ms"])
    for phase in phases:
        phase["wall_ms"] = round(phase["wall_ms"], 3)
        phase["mean_ms"] = round(phase["wall_ms"] / phase["count"], 3)
        if "mem_delta_kb" in phase:
            phase["mem_delta_kb"] = round(phase["mem_delta_kb"], 1)
    return phases


class RunRecorder:
    """Brackets one CLI run: start the clocks, then :meth:`finish`.

    ``RunRecorder`` deliberately knows nothing about subcommand
    internals — it reads everything from the tracer it is handed, so
    attaching a ledger to a new subcommand is three lines.
    """

    def __init__(self, command: str, config: Dict[str, Any]) -> None:
        self.command = command
        self.config = dict(config)
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        self._epoch = time.time()

    def finish(
        self,
        tracer: Optional[Tracer] = None,
        outcome: Optional[Dict[str, Any]] = None,
    ) -> RunReport:
        """Stop the clocks and assemble the report from *tracer*."""
        wall_s = time.perf_counter() - self._wall_start
        cpu_s = time.process_time() - self._cpu_start
        snapshot: Dict[str, Any] = {"counters": {}, "histograms": {}}
        spans: List[Dict[str, Any]] = []
        if tracer is not None:
            snapshot = tracer.metrics.snapshot()
            spans = [span_to_record(s) for s in tracer.finished_spans()]
        counters: Dict[str, int] = snapshot.get("counters", {})
        pairs = 0
        for name in _THROUGHPUT_COUNTERS:
            if counters.get(name):
                pairs = int(counters[name])
                break
        peak_kb = peak_rss_kb()
        try:
            import tracemalloc

            if tracemalloc.is_tracing():
                peak_kb = tracemalloc.get_traced_memory()[1] / 1024.0
        except Exception:
            pass
        return RunReport(
            command=self.command,
            timestamp=self._epoch,
            environment=capture_environment(),
            config=self.config,
            wall_s=wall_s,
            cpu_s=cpu_s,
            peak_mem_kb=round(peak_kb, 1),
            pairs=pairs,
            throughput_pairs_per_s=(
                round(pairs / wall_s, 3) if pairs and wall_s > 0 else None
            ),
            phases=aggregate_phases(spans),
            spans=spans,
            metrics=snapshot,
            resilience={
                name: value
                for name, value in counters.items()
                if name.startswith("resilience.") and value
            },
            outcome=dict(outcome or {}),
        )


def _percent(before: float, after: float) -> str:
    if before == 0:
        return "n/a" if after else "±0.0%"
    return f"{(after - before) / before:+.1%}"


def diff_reports(a: RunReport, b: RunReport) -> str:
    """Phase-timing and metrics deltas between two runs (A → B)."""
    label_a = f"run {a.run_id}" if a.run_id is not None else "A"
    label_b = f"run {b.run_id}" if b.run_id is not None else "B"
    lines = [
        f"diff {label_a} ({a.command}) -> {label_b} ({b.command}):",
        f"  wall      {a.wall_s * 1e3:.1f} ms -> {b.wall_s * 1e3:.1f} ms  "
        f"({_percent(a.wall_s, b.wall_s)})",
        f"  cpu       {a.cpu_s * 1e3:.1f} ms -> {b.cpu_s * 1e3:.1f} ms  "
        f"({_percent(a.cpu_s, b.cpu_s)})",
        f"  peak mem  {a.peak_mem_kb:.0f} KiB -> {b.peak_mem_kb:.0f} KiB  "
        f"({_percent(a.peak_mem_kb, b.peak_mem_kb)})",
    ]
    if a.throughput_pairs_per_s and b.throughput_pairs_per_s:
        lines.append(
            f"  pairs/s   {a.throughput_pairs_per_s:.0f} -> "
            f"{b.throughput_pairs_per_s:.0f}  "
            f"({_percent(a.throughput_pairs_per_s, b.throughput_pairs_per_s)})"
        )
    phases_a = {p["name"]: p for p in a.phases}
    phases_b = {p["name"]: p for p in b.phases}
    names = sorted(
        set(phases_a) | set(phases_b),
        key=lambda n: -(
            phases_a.get(n, {}).get("wall_ms", 0.0)
            + phases_b.get(n, {}).get("wall_ms", 0.0)
        ),
    )
    if names:
        lines.append("  phases:")
        width = max(len(n) for n in names)
        for name in names:
            wall_a = phases_a.get(name, {}).get("wall_ms", 0.0)
            wall_b = phases_b.get(name, {}).get("wall_ms", 0.0)
            lines.append(
                f"    {name:<{width}}  {wall_a:.3f} ms -> {wall_b:.3f} ms  "
                f"({_percent(wall_a, wall_b)})"
            )
    counters_a: Dict[str, int] = a.metrics.get("counters", {})
    counters_b: Dict[str, int] = b.metrics.get("counters", {})
    changed = sorted(
        name
        for name in set(counters_a) | set(counters_b)
        if counters_a.get(name, 0) != counters_b.get(name, 0)
    )
    if changed:
        lines.append("  counters (changed):")
        width = max(len(n) for n in changed)
        for name in changed:
            lines.append(
                f"    {name:<{width}}  {counters_a.get(name, 0)} -> "
                f"{counters_b.get(name, 0)}"
            )
    else:
        lines.append("  counters: identical")
    return "\n".join(lines)

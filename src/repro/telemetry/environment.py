"""Environment capture: one comparable header for every run record.

Benchmark JSON, ledger rows, and bench-history records all need to say
*where* a number was measured before two numbers can be compared — the
same identification run is a different measurement on a 1-CPU CI runner
than on an 8-core workstation.  :func:`capture_environment` is the one
producer of that header (the bench scripts re-export it through
``benchmarks/conftest.py``), and :func:`environment_fingerprint` reduces
it to the short comparability key the regression gate groups series by.

The git SHA is read straight from ``.git`` (HEAD → ref file or
packed-refs) — no subprocess, so capture stays cheap and works in
sandboxes without a ``git`` binary.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Any, Dict, Optional

__all__ = [
    "capture_environment",
    "environment_fingerprint",
    "git_sha",
]


def git_sha(start: Optional[str] = None) -> str:
    """The current commit SHA, or "" outside a git work tree.

    Walks up from *start* (default: the current directory) to the
    nearest ``.git`` directory and resolves ``HEAD`` by hand: a detached
    HEAD is the SHA itself, a symbolic ref is looked up first as a loose
    ref file, then in ``packed-refs``.
    """
    directory = os.path.abspath(start or os.getcwd())
    while True:
        git_dir = os.path.join(directory, ".git")
        if os.path.isdir(git_dir):
            break
        parent = os.path.dirname(directory)
        if parent == directory:
            return ""
        directory = parent
    try:
        with open(os.path.join(git_dir, "HEAD"), "r", encoding="utf-8") as handle:
            head = handle.read().strip()
    except OSError:
        return ""
    if not head.startswith("ref:"):
        return head
    ref = head[len("ref:"):].strip()
    ref_path = os.path.join(git_dir, *ref.split("/"))
    try:
        with open(ref_path, "r", encoding="utf-8") as handle:
            return handle.read().strip()
    except OSError:
        pass
    try:
        with open(
            os.path.join(git_dir, "packed-refs"), "r", encoding="utf-8"
        ) as handle:
            for line in handle:
                line = line.strip()
                if line.startswith("#") or line.startswith("^") or not line:
                    continue
                sha, _, name = line.partition(" ")
                if name == ref:
                    return sha
    except OSError:
        pass
    return ""


def capture_environment() -> Dict[str, Any]:
    """The full environment header stamped on every run/bench record."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "git_sha": git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def environment_fingerprint(environment: Dict[str, Any]) -> str:
    """The comparability key of an environment header.

    Only what changes a measurement's *meaning* goes in — interpreter
    major.minor, machine architecture, CPU count.  Timestamps and git
    SHAs are provenance, not comparability, so a committed bench
    baseline stays comparable across commits on an equivalent runner.
    """
    python = str(environment.get("python", ""))
    major_minor = ".".join(python.split(".")[:2])
    return (
        f"py{major_minor}-"
        f"{environment.get('machine', '?')}-"
        f"cpu{environment.get('cpu_count', '?')}"
    )

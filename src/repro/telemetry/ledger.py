"""The run ledger: an append-only SQLite history of run reports.

Where ``repro.store`` persists *what the pipeline concluded*, the ledger
persists *what each run cost* — one row per CLI invocation, holding the
canonical-JSON :class:`~repro.telemetry.report.RunReport`.  Append-only
by design: rows are never updated, so the ledger is the repo's perf
trajectory and ``repro report diff 3 7`` can compare any two runs ever
recorded against the same file.

Storage follows the :mod:`repro.store` codec conventions — reports are
serialised as canonical JSON text (sorted keys, compact separators), so
identical reports encode identically and the file diffs cleanly.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Any, Dict, List, Optional

from repro.telemetry.errors import LedgerError
from repro.telemetry.report import RunReport

__all__ = ["RunLedger", "LEDGER_SCHEMA_VERSION"]

LEDGER_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id      INTEGER PRIMARY KEY AUTOINCREMENT,
    ts      REAL NOT NULL,
    command TEXT NOT NULL,
    report  TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_command ON runs (command);
"""


def _encode_report(report: RunReport) -> str:
    """Canonical JSON text (the store codec's determinism conventions)."""
    return json.dumps(
        report.to_dict(), sort_keys=True, separators=(",", ":")
    )


class RunLedger:
    """SQLite-backed append-only store of :class:`RunReport` rows.

    Usable as a context manager; ``RunLedger(":memory:")`` gives an
    ephemeral ledger for tests.
    """

    def __init__(self, path: str) -> None:
        self._path = str(path)
        try:
            self._conn = sqlite3.connect(self._path, isolation_level=None)
            self._conn.executescript(_SCHEMA)
        except sqlite3.Error as exc:
            raise LedgerError(
                f"cannot open run ledger at {path!r}: {exc}"
            ) from exc
        version = self._get_meta("schema_version")
        if version is None:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(LEDGER_SCHEMA_VERSION)),
            )
        elif int(version) > LEDGER_SCHEMA_VERSION:
            raise LedgerError(
                f"run ledger {path!r} has schema version {version}; this "
                f"build reads up to {LEDGER_SCHEMA_VERSION}"
            )

    def _get_meta(self, key: str) -> Optional[str]:
        record = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return record[0] if record is not None else None

    @property
    def path(self) -> str:
        """The ledger file path."""
        return self._path

    def append(self, report: RunReport) -> int:
        """Append one report; returns its ledger run id."""
        try:
            cursor = self._conn.execute(
                "INSERT INTO runs (ts, command, report) VALUES (?, ?, ?)",
                (report.timestamp, report.command, _encode_report(report)),
            )
        except sqlite3.Error as exc:
            raise LedgerError(
                f"cannot append to run ledger {self._path!r}: {exc}"
            ) from exc
        run_id = int(cursor.lastrowid)
        report.run_id = run_id
        return run_id

    def get(self, run_id: int) -> RunReport:
        """The report stored under *run_id*; raises on an unknown id."""
        record = self._conn.execute(
            "SELECT id, report FROM runs WHERE id = ?", (int(run_id),)
        ).fetchone()
        if record is None:
            raise LedgerError(
                f"run ledger {self._path!r} has no run {run_id}"
            )
        try:
            data = json.loads(record[1])
        except json.JSONDecodeError as exc:
            raise LedgerError(
                f"run {run_id} in {self._path!r} is malformed: {exc}"
            ) from exc
        return RunReport.from_dict(data, run_id=int(record[0]))

    def latest_id(self) -> Optional[int]:
        """The newest run id, or None for an empty ledger."""
        record = self._conn.execute("SELECT MAX(id) FROM runs").fetchone()
        return int(record[0]) if record and record[0] is not None else None

    def run_ids(self) -> List[int]:
        """All run ids, oldest first."""
        return [
            int(row[0])
            for row in self._conn.execute("SELECT id FROM runs ORDER BY id")
        ]

    def list_runs(self) -> List[Dict[str, Any]]:
        """Light per-run rows for the ``repro report list`` table."""
        rows = []
        for run_id in self.run_ids():
            report = self.get(run_id)
            counters = report.metrics.get("counters", {})
            rows.append(
                {
                    "id": run_id,
                    "timestamp": report.timestamp,
                    "command": report.command,
                    "wall_s": report.wall_s,
                    "pairs": report.pairs,
                    "matches": counters.get("pipeline.matches", 0),
                    "sound": report.outcome.get("sound"),
                    "git_sha": report.environment.get("git_sha", ""),
                }
            )
        return rows

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RunLedger path={self._path!r}>"

"""Adversarial scenario matrix and ILFD drift detection.

ROADMAP item 4: a parameterized grid of adversarial workloads — N
sources, Zipf-skewed cluster sizes, conflicting ILFDs across sources,
schema drift (renamed/split attributes), out-of-order deltas,
duplicate-heavy feeds, seeded noise — each cell carrying ground-truth
cluster labels through every transformation.  The runner pushes every
cell through the real blocker × identifier × entity-graph pipeline,
keeps the Section-3 conformance oracles green, scores precision/recall
against the generated truth, and mines-then-rechecks exceptionless
ILFDs across delta arrival to surface :class:`ConstraintDrift`
findings.  Reports are canonical JSON with committed baselines, exactly
like the golden corpus gate.

- :mod:`repro.scenarios.grid` — :class:`ScenarioSpec` and the named grids,
- :mod:`repro.scenarios.generate` — the labeled adversarial generator,
- :mod:`repro.scenarios.runner` — pipeline execution and per-cell checks,
- :mod:`repro.scenarios.drift` — the ILFD drift detector,
- :mod:`repro.scenarios.report` — canonical reports and baselines.
"""

from repro.scenarios.errors import ScenarioBaselineError, ScenarioError
from repro.scenarios.grid import (
    GRIDS,
    ScenarioSpec,
    default_grid,
    expand_grid,
    grid_by_name,
    reduced_grid,
    smoke_grid,
)
from repro.scenarios.generate import (
    ScenarioData,
    SchemaDrift,
    generate_scenario,
)
from repro.scenarios.drift import (
    DEFAULT_WATCH,
    ConstraintDrift,
    DriftReport,
    WatchFamily,
    detect_constraint_drift,
)
from repro.scenarios.runner import (
    CellResult,
    PairOutcome,
    ScenarioRunner,
    run_cell,
)
from repro.scenarios.report import (
    SCENARIO_FORMAT,
    ScenarioReport,
    check_baseline,
    load_baseline,
    update_baseline,
    write_baseline,
)
from repro.observability.metrics import register_metric

__all__ = [
    "CellResult",
    "ConstraintDrift",
    "DEFAULT_WATCH",
    "DriftReport",
    "GRIDS",
    "PairOutcome",
    "SCENARIO_FORMAT",
    "ScenarioBaselineError",
    "ScenarioData",
    "ScenarioError",
    "ScenarioReport",
    "ScenarioRunner",
    "ScenarioSpec",
    "SchemaDrift",
    "WatchFamily",
    "check_baseline",
    "default_grid",
    "detect_constraint_drift",
    "expand_grid",
    "generate_scenario",
    "grid_by_name",
    "load_baseline",
    "reduced_grid",
    "run_cell",
    "smoke_grid",
    "update_baseline",
    "write_baseline",
]

for _name, _description in (
    ("scenarios.cells", "scenario grid cells executed"),
    ("scenarios.cells_failed", "scenario cells that missed their contract"),
    ("scenarios.pairs", "pairwise identification runs across scenario cells"),
    ("scenarios.oracle_violations", "conformance oracle violations across cells"),
    ("scenarios.drift_findings", "constraint-drift findings (expected + not)"),
    ("scenarios.unexpected_drift", "constraint-drift findings no axis asked for"),
    ("scenarios.clusters", "entity clusters produced across scenario cells"),
    ("scenarios.impure_clusters", "clusters mixing ground-truth labels"),
    ("scenarios.baseline_drift", "cells diverging from the committed baseline"),
    ("scenarios.precision", "per-cell micro-averaged match precision"),
    ("scenarios.recall", "per-cell micro-averaged match recall"),
):
    register_metric(_name, _description)
del _name, _description

"""The scenario grid: parameterized adversarial workload cells.

A :class:`ScenarioSpec` names one adversarial configuration along the
axes ROADMAP item 4 calls for — number of sources, skewed (Zipf) cluster
sizes, conflicting ILFDs across sources, schema drift (renamed or split
attributes), out-of-order deltas, duplicate-heavy feeds, and noise level.
A *grid* is a list of specs; :func:`default_grid` is the committed
≥24-cell matrix ``repro scenarios`` runs, :func:`reduced_grid` the small
CI/test subset covering every mechanism at least once.

Every cell derives its own PRNG seed from a CRC over its cell id, so
cells are independent, reproducible streams: re-ordering or filtering
the grid never changes what any one cell generates.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.scenarios.errors import ScenarioError

__all__ = [
    "GRIDS",
    "ScenarioSpec",
    "default_grid",
    "expand_grid",
    "grid_by_name",
    "reduced_grid",
    "smoke_grid",
]

SKEWS = ("uniform", "zipf")
NOISES = ("clean", "light", "heavy")
DELTAS = ("none", "ordered", "shuffled")
SCHEMA_DRIFTS = ("none", "rename", "split")
BLOCKERS = ("exact", "hash")


@dataclass(frozen=True)
class ScenarioSpec:
    """One adversarial workload configuration (a grid cell).

    Attributes
    ----------
    n_sources:
        Number of overlapping source relations (≥ 2).
    skew:
        ``uniform`` — every entity is equally likely to appear in every
        source; ``zipf`` — entity presence (and duplicate pressure)
        follows a Zipf-style rank profile, so a few entities are
        everywhere and the tail is sparse.
    conflict:
        Seed conflicting ILFDs across sources: the delta rows of one
        source carry consequent values contradicting the family another
        source's data (and the baseline snapshot) obeys.  Requires
        ``deltas != "none"``.
    schema_drift:
        ``rename`` — one source's feed arrives with renamed attributes;
        ``split`` — one attribute arrives split in two.  The runner must
        undo the drift (schema integration) before identification.
    deltas:
        ``none`` — the whole feed is one batch; ``ordered`` — a held-out
        fraction arrives later as in-order delta batches; ``shuffled`` —
        the same batches land out of order.
    duplicates:
        Duplicate-heavy feeds: entities contribute extra near-duplicate
        tuples (variant key values) within a source.
    noise:
        The :class:`~repro.workloads.noise.NoiseSpec` profile applied to
        non-key attributes (``clean`` / ``light`` / ``heavy``).
    blocker:
        Candidate-pair generation for the pairwise runs: ``exact`` keeps
        the proven default paths, ``hash`` routes through the
        extended-key hash blocker.
    entities:
        Universe size (ground-truth cluster count upper bound).
    seed:
        Base seed; the effective per-cell seed also folds in the cell id.
    """

    n_sources: int = 2
    skew: str = "uniform"
    conflict: bool = False
    schema_drift: str = "none"
    deltas: str = "none"
    duplicates: bool = False
    noise: str = "clean"
    blocker: str = "exact"
    entities: int = 18
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_sources < 2:
            raise ScenarioError("a scenario needs at least two sources")
        if self.skew not in SKEWS:
            raise ScenarioError(f"unknown skew {self.skew!r}; expected {SKEWS}")
        if self.noise not in NOISES:
            raise ScenarioError(f"unknown noise {self.noise!r}; expected {NOISES}")
        if self.deltas not in DELTAS:
            raise ScenarioError(f"unknown deltas {self.deltas!r}; expected {DELTAS}")
        if self.schema_drift not in SCHEMA_DRIFTS:
            raise ScenarioError(
                f"unknown schema_drift {self.schema_drift!r}; "
                f"expected {SCHEMA_DRIFTS}"
            )
        if self.blocker not in BLOCKERS:
            raise ScenarioError(
                f"unknown blocker {self.blocker!r}; expected {BLOCKERS}"
            )
        if self.conflict and self.deltas == "none":
            raise ScenarioError(
                "conflicting ILFDs are delta-borne: conflict=True needs "
                "deltas='ordered' or 'shuffled'"
            )
        if self.entities < 4:
            raise ScenarioError("entities must be >= 4")

    @property
    def cell_id(self) -> str:
        """Stable human-readable identifier, unique within a grid."""
        parts = [f"s{self.n_sources}", self.skew, self.noise]
        if self.conflict:
            parts.append("conflict")
        if self.schema_drift != "none":
            parts.append(self.schema_drift)
        if self.deltas != "none":
            parts.append(f"d-{self.deltas}")
        if self.duplicates:
            parts.append("dup")
        if self.blocker != "exact":
            parts.append(self.blocker)
        return "-".join(parts)

    @property
    def cell_seed(self) -> int:
        """The effective PRNG seed: base seed folded with the cell id."""
        return (self.seed * 1_000_003 + zlib.crc32(self.cell_id.encode())) % (2**31)


def expand_grid(
    axes: Dict[str, Sequence[object]], **fixed: object
) -> List[ScenarioSpec]:
    """Cross-product grid expansion over *axes*, with *fixed* overrides.

    ``axes`` maps :class:`ScenarioSpec` field names to value sequences;
    the result enumerates the full cross product in axis-declaration
    order.  Invalid combinations (e.g. conflict without deltas) raise,
    so a mis-specified grid fails loudly at build time, not cell time.
    """
    specs: List[ScenarioSpec] = [ScenarioSpec(**fixed)]  # type: ignore[arg-type]
    for field_name, values in axes.items():
        specs = [
            replace(spec, **{field_name: value})
            for spec in specs
            for value in values
        ]
    ids = [spec.cell_id for spec in specs]
    duplicates = {cid for cid in ids if ids.count(cid) > 1}
    if duplicates:
        raise ScenarioError(f"grid produces duplicate cell ids: {sorted(duplicates)}")
    return specs


_VARIANTS = ("plain", "conflict", "drift", "dup")


def _variant_fields(variant: str, skew: str) -> Dict[str, object]:
    if variant == "plain":
        return {"deltas": "ordered"}
    if variant == "conflict":
        return {"conflict": True, "deltas": "ordered"}
    if variant == "drift":
        # Alternate the two schema-drift mechanics across the skew axis
        # so one 32-cell grid covers both renames and splits.
        return {"schema_drift": "rename" if skew == "uniform" else "split"}
    if variant == "dup":
        return {"duplicates": True, "deltas": "shuffled", "blocker": "hash"}
    raise ScenarioError(f"unknown variant {variant!r}")


def default_grid(*, entities: int = 18, seed: int = 7) -> List[ScenarioSpec]:
    """The committed adversarial matrix: 2×2×2×4 = 32 cells.

    Axes: sources {2, 3} × skew {uniform, zipf} × noise {clean, light} ×
    variant {plain, conflict, schema-drift, duplicate-heavy}.  Every
    variant exists at every source count, skew, and noise level; the
    duplicate cells additionally run through the hash blocker and land
    their deltas out of order.
    """
    specs: List[ScenarioSpec] = []
    for n_sources in (2, 3):
        for skew in ("uniform", "zipf"):
            for noise in ("clean", "light"):
                for variant in _VARIANTS:
                    specs.append(
                        ScenarioSpec(
                            n_sources=n_sources,
                            skew=skew,
                            noise=noise,
                            entities=entities,
                            seed=seed,
                            **_variant_fields(variant, skew),  # type: ignore[arg-type]
                        )
                    )
    return specs


def reduced_grid(*, entities: int = 14, seed: int = 7) -> List[ScenarioSpec]:
    """The CI subset: 6 cells covering every mechanism at least once."""
    return [
        ScenarioSpec(entities=entities, seed=seed),
        ScenarioSpec(
            skew="zipf", noise="light", deltas="ordered",
            entities=entities, seed=seed,
        ),
        ScenarioSpec(
            conflict=True, deltas="ordered", noise="light",
            entities=entities, seed=seed,
        ),
        ScenarioSpec(schema_drift="rename", entities=entities, seed=seed),
        ScenarioSpec(
            n_sources=3, schema_drift="split", skew="zipf",
            entities=entities, seed=seed,
        ),
        ScenarioSpec(
            n_sources=3, duplicates=True, deltas="shuffled", blocker="hash",
            noise="heavy", entities=entities, seed=seed,
        ),
    ]


def smoke_grid(*, entities: int = 10, seed: int = 7) -> List[ScenarioSpec]:
    """Two cells (one clean, one conflicted) for the fastest sanity run."""
    return [
        ScenarioSpec(entities=entities, seed=seed),
        ScenarioSpec(
            conflict=True, deltas="shuffled", entities=entities, seed=seed
        ),
    ]


GRIDS: Dict[str, Callable[..., List[ScenarioSpec]]] = {
    "default": default_grid,
    "reduced": reduced_grid,
    "smoke": smoke_grid,
}
"""Named grids accepted by ``repro scenarios --grid``."""


def grid_by_name(name: str, *, entities: int | None = None, seed: int | None = None) -> List[ScenarioSpec]:
    """Build a named grid, optionally overriding size and seed."""
    try:
        factory = GRIDS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown grid {name!r}; expected one of {sorted(GRIDS)}"
        ) from None
    kwargs: Dict[str, int] = {}
    if entities is not None:
        kwargs["entities"] = entities
    if seed is not None:
        kwargs["seed"] = seed
    return factory(**kwargs)

"""The scenario runner: every grid cell through the real pipeline.

:class:`ScenarioRunner` takes a grid of specs and, per cell: generates
the adversarial data, undoes any schema drift (the integration step),
builds an :class:`~repro.entities.graph.IdentityGraph` over the real
blocker × identifier × entity-build stack, runs the Section-3
conformance oracles on every pairwise result, scores declared matches
against the generated ground truth, checks cluster purity and graph
soundness, and runs the ILFD drift detector over the cell's baseline
snapshot and delta batches.  No mocks anywhere: a cell that passes has
pushed real adversarial data through the same code paths production
callers use.

Two structural checks ride on specific axes: schema-drift cells assert
the un-drift round-trips losslessly back to the unified relations, and
shuffled-delta cells assert drift findings are arrival-order-independent
(same fingerprints when the batches are replayed reversed).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.baselines.evaluation import MatchQuality, evaluate_pairs
from repro.blocking.strategies import ExtendedKeyHashBlocker
from repro.conformance.oracles import (
    ConformanceReport,
    Knowledge,
    check_consistency,
    check_soundness,
    check_uniqueness,
    run_oracles,
)
from repro.core.matching_table import KeyValues, key_values
from repro.entities.graph import IdentityGraph
from repro.relational.relation import Relation
from repro.scenarios.drift import (
    DEFAULT_WATCH,
    DriftReport,
    WatchFamily,
    detect_constraint_drift,
)
from repro.scenarios.errors import ScenarioError
from repro.scenarios.generate import (
    ScenarioData,
    generate_scenario,
    street_merger,
)
from repro.scenarios.grid import ScenarioSpec
from repro.workloads.generator import merge_attributes, rename_attributes

__all__ = [
    "CellResult",
    "PairOutcome",
    "ScenarioRunner",
    "run_cell",
]


def _round(value: float) -> float:
    return round(value, 6)


@dataclass
class PairOutcome:
    """One pairwise identification run, scored and oracle-checked."""

    pair: Tuple[str, str]
    candidate_pairs: int
    declared: int
    truth: int
    quality: MatchQuality
    conformance: ConformanceReport
    completeness_checked: bool

    @property
    def oracle_violations(self) -> int:
        return len(self.conformance.violations)

    def to_json(self) -> Dict[str, Any]:
        return {
            "pair": list(self.pair),
            "candidate_pairs": self.candidate_pairs,
            "declared": self.declared,
            "truth": self.truth,
            "true_positives": self.quality.true_positives,
            "false_positives": self.quality.false_positives,
            "false_negatives": self.quality.false_negatives,
            "precision": _round(self.quality.precision),
            "recall": _round(self.quality.recall),
            "f1": _round(self.quality.f1),
            "oracle_violations": self.oracle_violations,
            "completeness_checked": self.completeness_checked,
        }


@dataclass
class CellResult:
    """Everything one grid cell produced."""

    spec: ScenarioSpec
    pairs: List[PairOutcome]
    clusters: int
    impure_clusters: int
    unlabeled_members: int
    graph_violations: int
    drift: DriftReport
    roundtrip_ok: Optional[bool]
    order_independent: Optional[bool]
    injected: bool = False

    @property
    def cell_id(self) -> str:
        return self.spec.cell_id

    @property
    def quality(self) -> MatchQuality:
        """Micro-averaged match quality over all source pairs."""
        return MatchQuality(
            matcher_name=self.cell_id,
            true_positives=sum(p.quality.true_positives for p in self.pairs),
            false_positives=sum(p.quality.false_positives for p in self.pairs),
            false_negatives=sum(p.quality.false_negatives for p in self.pairs),
            uniqueness_violations=sum(
                p.quality.uniqueness_violations for p in self.pairs
            ),
        )

    @property
    def oracle_violations(self) -> int:
        return sum(p.oracle_violations for p in self.pairs)

    @property
    def ok(self) -> bool:
        """Green iff oracles, graph soundness, cluster purity, drift
        expectations, and the structural axis checks all hold."""
        return (
            self.oracle_violations == 0
            and self.graph_violations == 0
            and self.impure_clusters == 0
            and self.unlabeled_members == 0
            and not self.drift.unexpected
            and self.roundtrip_ok is not False
            and self.order_independent is not False
            and self._drift_contract_met
        )

    @property
    def _drift_contract_met(self) -> bool:
        # A conflict cell that fails to surface its seeded drift is as
        # broken as an unexpected finding: the detector went blind.
        if self.spec.conflict and not self.injected:
            return any(f.expected for f in self.drift.findings)
        return True

    def to_json(self) -> Dict[str, Any]:
        quality = self.quality
        return {
            "cell": self.cell_id,
            "ok": self.ok,
            "injected": self.injected,
            "pairs": [p.to_json() for p in self.pairs],
            "clusters": self.clusters,
            "impure_clusters": self.impure_clusters,
            "unlabeled_members": self.unlabeled_members,
            "graph_violations": self.graph_violations,
            "oracle_violations": self.oracle_violations,
            "roundtrip_ok": self.roundtrip_ok,
            "order_independent": self.order_independent,
            "precision": _round(quality.precision),
            "recall": _round(quality.recall),
            "f1": _round(quality.f1),
            "drift": {
                "rules_watched": self.drift.rules_watched,
                "findings": [f.to_json() for f in self.drift.findings],
                "unexpected": len(self.drift.unexpected),
            },
        }


def _canonical_rows(relation: Relation) -> List[Tuple[Tuple[str, Any], ...]]:
    rows = [tuple(sorted(row.items(), key=lambda kv: kv[0])) for row in relation]
    return sorted(rows, key=repr)


def _undrift(data: ScenarioData) -> Tuple[Dict[str, Relation], Optional[bool]]:
    """Undo schema drift on the feeds; report round-trip fidelity."""
    working = dict(data.feeds)
    drift = data.drift
    if drift is None:
        return working, None
    feed = working[drift.source]
    if drift.kind == "rename":
        inverse = {new: old for old, new in drift.renames.items()}
        restored = rename_attributes(feed, inverse, name=feed.name)
    elif drift.kind == "split":
        assert drift.split_into is not None and drift.split_attribute is not None
        restored = merge_attributes(
            feed,
            drift.split_into,
            drift.split_attribute,
            street_merger,
            name=feed.name,
        )
    else:  # pragma: no cover - SchemaDrift constrains kind
        raise ScenarioError(f"unknown drift kind {drift.kind!r}")
    working[drift.source] = restored
    reference = data.sources[drift.source]
    roundtrip_ok = (
        tuple(restored.schema.names) == tuple(reference.schema.names)
        and _canonical_rows(restored) == _canonical_rows(reference)
    )
    return working, roundtrip_ok


def _pair_conformance(
    result, knowledge: Knowledge, *, with_completeness: bool
) -> ConformanceReport:
    if with_completeness:
        return run_oracles(
            result.matching,
            result.negative,
            result.extended_r,
            result.extended_s,
            knowledge,
        )
    # A restrictive blocker prunes candidate pairs, so the NMT is not
    # the full complement and the completeness oracle would report the
    # pruned pairs as missing classifications.  Soundness, uniqueness,
    # and consistency remain exact obligations.
    reports = (
        check_soundness(result.matching, knowledge),
        check_uniqueness(result.matching),
        check_consistency(result.matching, result.negative),
    )
    return ConformanceReport(reports=reports)


def _cluster_purity(
    graph: IdentityGraph, data: ScenarioData
) -> Tuple[int, int, int]:
    """(clusters, clusters mixing labels, members with no label)."""
    clusters = graph.clusters()
    impure = 0
    unlabeled = 0
    for cluster in clusters:
        labels = set()
        for source_name, row in cluster.members:
            key_attrs = data.key_attributes[source_name]
            key = key_values(dict(row), key_attrs)
            label = data.labels[source_name].get(key)
            if label is None:
                unlabeled += 1
            else:
                labels.add(label)
        if len(labels) > 1:
            impure += 1
    return len(clusters), impure, unlabeled


def _detect_drift(
    data: ScenarioData,
    *,
    watch: WatchFamily,
    expect_conflict: bool,
    reverse: bool = False,
) -> DriftReport:
    """Run the drift detector over every watch-capable source."""
    findings: List = []
    rules_watched = 0
    batch_range = range(len(data.delta_batches))
    order = list(reversed(batch_range)) if reverse else list(batch_range)
    for name, baseline in data.base.items():
        if not watch.covers(baseline.schema.names):
            continue
        batches = [
            data.delta_batches[i].get(name, ()) for i in order
        ]
        report = detect_constraint_drift(
            name,
            baseline,
            batches,
            key_attributes=data.key_attributes[name],
            watch=watch,
            expected=expect_conflict and name == data.conflict_source,
        )
        findings.extend(report.findings)
        rules_watched += report.rules_watched
    findings.sort(key=lambda f: (f.source, f.rule))
    return DriftReport(findings=tuple(findings), rules_watched=rules_watched)


def run_cell(
    spec: ScenarioSpec,
    *,
    watch: WatchFamily = DEFAULT_WATCH,
    inject_drift: bool = False,
    tracer=None,
) -> CellResult:
    """Generate and execute one grid cell end to end.

    With ``inject_drift``, a delta-bearing non-conflict cell generates
    *as if* ``conflict=True`` while the detector still treats findings
    as unexpected — a deliberate canary proving the unexpected-drift
    path fails loudly (exit 1 through the CLI).
    """
    injected = False
    generation_spec = spec
    if inject_drift and not spec.conflict and spec.deltas != "none":
        generation_spec = replace(spec, conflict=True)
        injected = True
    data = generate_scenario(generation_spec)

    working, roundtrip_ok = _undrift(data)
    blocker_factory = None
    if spec.blocker == "hash":
        blocker_factory = ExtendedKeyHashBlocker
    graph = IdentityGraph(
        working,
        data.extended_key,
        ilfds=data.ilfds,
        blocker_factory=blocker_factory,
        tracer=tracer,
    )

    knowledge = Knowledge(
        extended_key=tuple(data.extended_key), ilfds=data.ilfds
    )
    with_completeness = spec.blocker == "exact"
    pairs: List[PairOutcome] = []
    for first, second in graph.pair_names():
        result = graph.pair_result(first, second)
        conformance = _pair_conformance(
            result, knowledge, with_completeness=with_completeness
        )
        declared = graph.pairwise_pairs(first, second)
        truth = data.truth[(first, second)]
        quality = evaluate_pairs(
            f"{spec.cell_id}:{first}+{second}", declared, truth
        )
        pairs.append(
            PairOutcome(
                pair=(first, second),
                candidate_pairs=result.pair_count,
                declared=len(declared),
                truth=len(truth),
                quality=quality,
                conformance=conformance,
                completeness_checked=with_completeness,
            )
        )

    graph_violations = len(graph.verify().violations)
    clusters, impure, unlabeled = _cluster_purity(graph, data)

    expect_conflict = spec.conflict and not injected
    drift = _detect_drift(data, watch=watch, expect_conflict=expect_conflict)
    order_independent: Optional[bool] = None
    if spec.deltas == "shuffled":
        reversed_drift = _detect_drift(
            data, watch=watch, expect_conflict=expect_conflict, reverse=True
        )
        order_independent = (
            drift.fingerprints() == reversed_drift.fingerprints()
        )

    result = CellResult(
        spec=spec,
        pairs=pairs,
        clusters=clusters,
        impure_clusters=impure,
        unlabeled_members=unlabeled,
        graph_violations=graph_violations,
        drift=drift,
        roundtrip_ok=roundtrip_ok,
        order_independent=order_independent,
        injected=injected,
    )
    _record_metrics(result, tracer)
    return result


def _record_metrics(result: CellResult, tracer) -> None:
    if tracer is None or not tracer.enabled:
        return
    metrics = tracer.metrics
    metrics.inc("scenarios.cells")
    if not result.ok:
        metrics.inc("scenarios.cells_failed")
    metrics.inc("scenarios.pairs", len(result.pairs))
    metrics.inc("scenarios.oracle_violations", result.oracle_violations)
    metrics.inc("scenarios.drift_findings", len(result.drift.findings))
    metrics.inc("scenarios.unexpected_drift", len(result.drift.unexpected))
    metrics.inc("scenarios.clusters", result.clusters)
    metrics.inc("scenarios.impure_clusters", result.impure_clusters)
    quality = result.quality
    metrics.observe("scenarios.precision", quality.precision)
    metrics.observe("scenarios.recall", quality.recall)


@dataclass
class ScenarioRunner:
    """Execute a grid of scenario specs through the pipeline."""

    specs: Sequence[ScenarioSpec]
    watch: WatchFamily = DEFAULT_WATCH
    inject_drift: bool = False
    tracer: Any = None

    def run(self) -> List[CellResult]:
        """Run every cell, in grid order."""
        seen: Dict[str, ScenarioSpec] = {}
        for spec in self.specs:
            if spec.cell_id in seen:
                raise ScenarioError(
                    f"duplicate cell id {spec.cell_id!r} in grid"
                )
            seen[spec.cell_id] = spec
        return [
            run_cell(
                spec,
                watch=self.watch,
                inject_drift=self.inject_drift,
                tracer=self.tracer,
            )
            for spec in self.specs
        ]

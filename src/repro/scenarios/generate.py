"""Adversarial workload generation with ground-truth labels.

:func:`generate_scenario` turns one :class:`~repro.scenarios.grid.ScenarioSpec`
into a :class:`ScenarioData`: N overlapping source relations carved out
of one restaurant universe (:func:`~repro.workloads.restaurants.restaurant_universe`),
with every adversarial transformation the spec asks for applied on top —
Zipf-skewed membership, duplicate-heavy feeds, delta batches (in or out
of order), conflicting ILFD consequents seeded into one source's deltas,
schema drift (renamed or split attributes), and seeded noise via the
extended :mod:`repro.workloads.noise` corruption kinds.

The invariant every transformation preserves: **ground-truth cluster
labels survive**.  Each universe entity is its own cluster label (its
index); every generated tuple — duplicates, conflicted rows, and noisy
rows included — knows which entity it models, keyed by the tuple's
candidate-key values.  That is what lets the runner score precision and
recall against truth on every cell, no matter how hostile the feed.

Key attributes are never corrupted (the paper's footnote-3 assumption),
so key-based labels stay stable by construction; noise lands where it
causes information loss, not contradiction — value mutations on the
derivation input (street) in partial-K_Ext sources, NULL drops on
non-key attributes everywhere (see :data:`MUTATION_ATTRIBUTES` and
:data:`DROPPABLE_ATTRIBUTES` for why this split is load-bearing).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.matching_table import KeyValues
from repro.ilfd.ilfd import ILFDSet
from repro.relational.attribute import Attribute
from repro.relational.nulls import is_null
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.scenarios.errors import ScenarioError
from repro.scenarios.grid import ScenarioSpec
from repro.workloads.generator import rename_attributes, split_attribute
from repro.workloads.noise import Corruption, NoiseSpec, apply_noise
from repro.workloads.restaurants import (
    RestaurantWorkloadSpec,
    restaurant_universe,
)

__all__ = [
    "CONFLICT_CUISINE",
    "EXTENDED_KEY",
    "ScenarioData",
    "SchemaDrift",
    "SourceShape",
    "generate_scenario",
    "street_merger",
    "street_splitter",
]

Pair = Tuple[KeyValues, KeyValues]

EXTENDED_KEY: Tuple[str, ...] = ("name", "cuisine", "speciality")
"""The extended key shared by every scenario source."""

CONFLICT_CUISINE = "Fusion"
"""The out-of-vocabulary consequent seeded by the conflict axis."""

DUP_SUFFIX = "-b"
"""Name suffix of duplicate variant rows (same entity, re-keyed)."""

MUTATION_ATTRIBUTES: Tuple[str, ...] = ("street",)
"""Attributes value mutations (typo/transpose/format drift) may touch —
and only in sources that do *not* store the full extended key.

The identifier treats ILFDs as hard knowledge, so a mutated value that
still participates in a rule can classify a true pair as *distinct*
(e.g. a typo'd county contradicting a ``street → county`` rule's
consequent) while extended-key equality says *match* — a consistency
violation the core rightly refuses.  Mutating only the derivation input
(street) in sources whose K_Ext is incomplete turns every corruption
into **information loss** (a derivation that no longer fires, an
identity that stays unknown) instead of **contradiction** — the latter
is the conflict axis's job, handled at the drift-detection layer.
"""

DROPPABLE_ATTRIBUTES: Tuple[str, ...] = ("street", "county", "cuisine")
"""Attributes the drop stage may NULL out (minus each source's key
attributes).  Dropped values only ever *remove* rule firings — NULL
predicates evaluate unknown, never false — so drops are always safe and
purely recall-degrading (a dropped cuisine even exercises re-derivation
through the speciality → cuisine family)."""

NOISE_PROFILES: Dict[str, NoiseSpec] = {
    "clean": NoiseSpec(),
    "light": NoiseSpec(typo=0.08, format_drift=0.08, drop=0.05),
    "heavy": NoiseSpec(typo=0.18, transpose=0.12, format_drift=0.12, drop=0.12),
}
"""Named corruption profiles for the grid's noise axis."""


@dataclass(frozen=True)
class SourceShape:
    """Schema template of one source relation."""

    attributes: Tuple[str, ...]
    key: Tuple[str, ...]


SHAPES: Tuple[SourceShape, ...] = (
    SourceShape(("name", "cuisine", "street"), ("name", "cuisine")),
    SourceShape(("name", "speciality", "cuisine", "county"), ("name", "speciality")),
    SourceShape(
        ("name", "cuisine", "speciality", "street", "county"),
        ("name", "speciality"),
    ),
)
"""Source shapes, cycled across ``src1..srcN``: the paper's R-shape, an
S-shape that also stores cuisine (making the speciality → cuisine family
minable inside one source), and a full feed."""


def street_splitter(value: str) -> Tuple[str, Optional[str]]:
    """Split ``"12 LakeSt."`` into number and road (lossless inverse of
    :func:`street_merger`, including values without a space)."""
    parts = value.split(" ", 1)
    if len(parts) == 1:
        return value, None
    return parts[0], parts[1]


def street_merger(left: str, right: Optional[str]) -> str:
    """Rejoin a split street value (inverse of :func:`street_splitter`)."""
    return left if right is None else f"{left} {right}"


@dataclass(frozen=True)
class SchemaDrift:
    """How one source's feed drifted away from the unified schema."""

    source: str
    kind: str  # "rename" | "split"
    renames: Dict[str, str] = field(default_factory=dict)  # unified -> drifted
    split_attribute: Optional[str] = None
    split_into: Optional[Tuple[str, str]] = None


@dataclass
class ScenarioData:
    """One generated cell: relations, deltas, truth, and change logs.

    Attributes
    ----------
    spec:
        The generating :class:`~repro.scenarios.grid.ScenarioSpec`.
    sources:
        Final source relations in the unified namespace (base + all
        deltas applied) — the ground-truth view.
    feeds:
        The as-delivered relations: identical to ``sources`` except for
        the schema-drifted source, which arrives renamed or split.  The
        runner must undo the drift before identification.
    drift:
        The drift descriptor (``None`` when ``schema_drift == "none"``).
    base:
        The baseline snapshot per source (rows present before any delta
        lands) — what the ILFD drift detector mines.
    delta_batches:
        Delta batches **in application order** (possibly shuffled); each
        batch maps source name → tuple of row dicts.
    ilfds:
        The clean ILFD knowledge of the generating universe (what the
        identifier runs with; conflicted rows contradict it by design).
    extended_key / key_attributes:
        K_Ext and each source's candidate-key attributes.
    labels:
        Ground-truth cluster labels: source → (candidate-key values →
        universe entity index).  Every tuple of every source is labeled.
    truth:
        Per source pair, the co-reference ground truth as (key, key)
        pairs — all cross-source tuple pairs sharing a label, duplicate
        variants included.
    corruptions:
        The noise change log per source (JSON-round-trippable).
    conflict_source / conflict_speciality:
        Where and on which antecedent value the conflicting consequent
        was seeded (``None`` without the conflict axis).
    """

    spec: ScenarioSpec
    sources: Dict[str, Relation]
    feeds: Dict[str, Relation]
    drift: Optional[SchemaDrift]
    base: Dict[str, Relation]
    delta_batches: Tuple[Dict[str, Tuple[Dict[str, Any], ...]], ...]
    ilfds: ILFDSet
    extended_key: Tuple[str, ...]
    key_attributes: Dict[str, Tuple[str, ...]]
    labels: Dict[str, Dict[KeyValues, int]]
    truth: Dict[Tuple[str, str], FrozenSet[Pair]]
    corruptions: Dict[str, List[Corruption]]
    conflict_source: Optional[str]
    conflict_speciality: Optional[str]

    @property
    def source_names(self) -> Tuple[str, ...]:
        """Source names in declaration order."""
        return tuple(self.sources)

    def pair_names(self) -> List[Tuple[str, str]]:
        """All source pairs, in declaration order."""
        names = self.source_names
        return [
            (names[i], names[j])
            for i in range(len(names))
            for j in range(i + 1, len(names))
        ]


def _key_values_of(row: Dict[str, Any], attributes: Sequence[str]) -> KeyValues:
    return tuple((attr, row[attr]) for attr in sorted(attributes))


def _membership(spec: ScenarioSpec, rank: int) -> float:
    if spec.skew == "uniform":
        return 0.8
    return max(0.3, min(1.0, 1.0 / (rank + 1) ** 0.55))


def _duplicate_probability(spec: ScenarioSpec, rank: int) -> float:
    if not spec.duplicates:
        return 0.0
    if spec.skew == "uniform":
        return 0.3
    return max(0.1, min(0.6, 0.6 / (rank + 1) ** 0.4))


def _shape_of(index: int) -> SourceShape:
    return SHAPES[index % len(SHAPES)]


@dataclass
class _SourceRows:
    """Working state for one source: labeled row dicts, keyed uniquely."""

    name: str
    shape: SourceShape
    rows: List[Dict[str, Any]] = field(default_factory=list)
    labels: List[int] = field(default_factory=list)
    keys: Set[Tuple[Any, ...]] = field(default_factory=set)

    def try_add(self, row: Dict[str, Any], label: int) -> bool:
        key = tuple(row[attr] for attr in self.shape.key)
        if key in self.keys:
            return False
        self.keys.add(key)
        self.rows.append(row)
        self.labels.append(label)
        return True


def _populate_sources(
    spec: ScenarioSpec,
    universe: Sequence[Dict[str, Any]],
    rng: random.Random,
) -> List[_SourceRows]:
    sources = [
        _SourceRows(name=f"src{i + 1}", shape=_shape_of(i))
        for i in range(spec.n_sources)
    ]
    for rank, entity in enumerate(universe):
        for source in sources:
            if rng.random() >= _membership(spec, rank):
                continue
            row = {attr: entity[attr] for attr in source.shape.attributes}
            source.try_add(row, rank)
            if rng.random() < _duplicate_probability(spec, rank):
                # A duplicate-heavy feed models the same entity again
                # under a variant name (branch office / re-keyed record).
                variant = dict(row)
                variant["name"] = f"{row['name']}{DUP_SUFFIX}"
                source.try_add(variant, rank)
    for source in sources:
        if len(source.rows) < 2:
            raise ScenarioError(
                f"cell {spec.cell_id!r}: source {source.name} ended up with "
                f"{len(source.rows)} row(s); enlarge entities or change seed"
            )
    return sources


def _split_deltas(
    spec: ScenarioSpec,
    sources: List[_SourceRows],
    rng: random.Random,
    *,
    delta_fraction: float = 0.3,
    batches: int = 3,
) -> Tuple[Dict[str, List[int]], List[List[Dict[str, List[int]]]]]:
    """Pick per-source delta row indices and group them into batches.

    Returns (base indices per source, batch list where each batch maps
    source → row indices), batches in **application order**.
    """
    base: Dict[str, List[int]] = {}
    batch_members: List[Dict[str, List[int]]] = [
        {source.name: [] for source in sources} for _ in range(batches)
    ]
    for source in sources:
        indices = list(range(len(source.rows)))
        if spec.deltas == "none":
            base[source.name] = indices
            continue
        n_delta = max(1, int(len(indices) * delta_fraction))
        chosen = sorted(rng.sample(indices, n_delta))
        chosen_set = set(chosen)
        base[source.name] = [i for i in indices if i not in chosen_set]
        for position, index in enumerate(chosen):
            batch_members[position % batches][source.name].append(index)
    order = list(range(batches))
    if spec.deltas == "shuffled":
        rng.shuffle(order)
    ordered = [batch_members[i] for i in order]
    return base, [ordered]


def _seed_conflict(
    spec: ScenarioSpec,
    sources: List[_SourceRows],
    delta_indices: Dict[str, Set[int]],
    taken: Dict[str, Set[Tuple[str, str]]],
    *,
    min_support: int = 2,
) -> Tuple[Optional[str], Optional[str]]:
    """Rewrite the conflict source's delta rows to contradict the
    speciality → cuisine family its own baseline snapshot obeys."""
    if not spec.conflict:
        return None, None
    target_source: Optional[_SourceRows] = None
    for source in reversed(sources):
        attrs = set(source.shape.attributes)
        if {"speciality", "cuisine"} <= attrs:
            target_source = source
            break
    if target_source is None:
        raise ScenarioError(
            f"cell {spec.cell_id!r}: no source stores both speciality and "
            "cuisine; the conflict axis needs one"
        )
    deltas = delta_indices[target_source.name]
    base_counts: Dict[str, int] = {}
    for index, row in enumerate(target_source.rows):
        # Only rows whose cuisine survived the noise stage back a
        # minable rule — a NULL consequent contributes no confidence.
        if index not in deltas and not is_null(row["cuisine"]):
            base_counts[row["speciality"]] = base_counts.get(row["speciality"], 0) + 1
    supported = sorted(
        s for s, count in base_counts.items() if count >= min_support
    )
    if not supported:
        supported = [
            _create_support(
                spec, target_source, delta_indices[target_source.name], taken
            )
        ]
    delta_specialities = {
        target_source.rows[index]["speciality"] for index in deltas
    }
    chosen = next((s for s in supported if s in delta_specialities), None)
    if chosen is not None:
        for index in sorted(deltas):
            row = target_source.rows[index]
            if row["speciality"] == chosen:
                row["cuisine"] = CONFLICT_CUISINE
        return target_source.name, chosen
    # No delta row carries a supported speciality: re-key one delta row
    # onto a supported speciality (checking candidate-key uniqueness)
    # and give it the conflicting cuisine.
    for index in sorted(deltas):
        row = target_source.rows[index]
        for candidate in supported:
            rekeyed = dict(row, speciality=candidate)
            key = tuple(rekeyed[attr] for attr in target_source.shape.key)
            if key in target_source.keys:
                continue
            old_key = tuple(row[attr] for attr in target_source.shape.key)
            target_source.keys.discard(old_key)
            target_source.keys.add(key)
            row["speciality"] = candidate
            row["cuisine"] = CONFLICT_CUISINE
            return target_source.name, candidate
    raise ScenarioError(
        f"cell {spec.cell_id!r}: could not seed a conflicting delta row "
        f"in {target_source.name}"
    )


def _noise_plan(shape: SourceShape) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """(mutable attributes, droppable attributes) for one source shape."""
    attrs = set(shape.attributes)
    mutate: Tuple[str, ...] = ()
    if "speciality" not in attrs:
        mutate = tuple(a for a in MUTATION_ATTRIBUTES if a in attrs)
    drop = tuple(
        a
        for a in DROPPABLE_ATTRIBUTES
        if a in attrs and a not in shape.key
    )
    return mutate, drop


def _create_support(
    spec: ScenarioSpec,
    source: _SourceRows,
    deltas: Set[int],
    taken: Dict[str, Set[Tuple[str, str]]],
) -> str:
    """Give one speciality baseline support ≥ 2 when the sampled rows
    left every speciality a singleton (sparse Zipf tails).

    Rewrites one base row onto another base row's (speciality, cuisine)
    pair — consistent with the speciality → cuisine family by
    construction; the rewritten row simply stops matching its own
    cluster (one more recall adversity, no contradiction).  The *taken*
    guard keeps the universe's key discipline intact: under a homonym,
    copying a real (cuisine, speciality) pair onto another name could
    recreate a *different* entity's full extended key, making the
    identifier match the rewritten row while a per-entity street →
    county rule proves it distinct — a contradiction, not noise.
    """
    base = [i for i in range(len(source.rows)) if i not in deltas]
    for keep in base:
        for mutate in base:
            if mutate == keep:
                continue
            donor = source.rows[keep]
            row = source.rows[mutate]
            if is_null(donor["cuisine"]) or row["speciality"] == donor["speciality"]:
                continue
            claimed = taken.get(row["name"], set())
            if any(
                cuisine == donor["cuisine"] or speciality == donor["speciality"]
                for cuisine, speciality in claimed
            ):
                continue
            rekeyed = dict(row, speciality=donor["speciality"])
            key = tuple(rekeyed[attr] for attr in source.shape.key)
            if key in source.keys:
                continue
            old_key = tuple(row[attr] for attr in source.shape.key)
            source.keys.discard(old_key)
            source.keys.add(key)
            row["speciality"] = donor["speciality"]
            row["cuisine"] = donor["cuisine"]
            return donor["speciality"]
    raise ScenarioError(
        f"cell {spec.cell_id!r}: cannot establish baseline support in "
        f"{source.name}; enlarge entities"
    )


def _apply_noise(
    spec: ScenarioSpec,
    source: _SourceRows,
    rng: random.Random,
) -> Tuple[List[Dict[str, Any]], List[Corruption]]:
    """Run the cell's noise profile over one source's rows (row order
    preserved, so base/delta index bookkeeping survives)."""
    profile = NOISE_PROFILES[spec.noise]
    mutate_attrs, drop_attrs = _noise_plan(source.shape)
    if profile.is_clean or not (mutate_attrs or drop_attrs):
        return [dict(row) for row in source.rows], []
    schema = Schema(
        [Attribute(a) for a in source.shape.attributes],
        keys=[source.shape.key],
    )
    relation = Relation(schema, source.rows, name=source.name, enforce_keys=False)
    log: List[Corruption] = []
    if mutate_attrs:
        mutation_only = replace(profile, drop=0.0)
        relation, mutated = apply_noise(
            relation, mutation_only, rng=rng, attributes=list(mutate_attrs)
        )
        log.extend(mutated)
    if drop_attrs and profile.drop:
        drop_only = NoiseSpec(drop=profile.drop)
        relation, dropped = apply_noise(
            relation, drop_only, rng=rng, attributes=list(drop_attrs)
        )
        log.extend(dropped)
    return [dict(row) for row in relation], log


def generate_scenario(spec: ScenarioSpec) -> ScenarioData:
    """Generate one grid cell's worth of adversarial data."""
    rng = random.Random(spec.cell_seed)
    universe, ilfds = restaurant_universe(
        RestaurantWorkloadSpec(n_entities=spec.entities, seed=spec.cell_seed % 9973)
    )
    sources = _populate_sources(spec, universe, rng)
    base_indices, (ordered_batches,) = _split_deltas(spec, sources, rng)
    delta_index_sets: Dict[str, Set[int]] = {
        source.name: set() for source in sources
    }
    for batch in ordered_batches:
        for name, indices in batch.items():
            delta_index_sets[name].update(indices)
    # Noise first, conflict second: the seeded conflicting consequent
    # must survive into the final rows (a drop landing on the conflicted
    # cuisine would otherwise silence the very violation the cell is
    # contracted to surface).
    final_rows: Dict[str, List[Dict[str, Any]]] = {}
    corruptions: Dict[str, List[Corruption]] = {}
    for source in sources:
        rows, log = _apply_noise(spec, source, rng)
        source.rows = rows
        final_rows[source.name] = rows
        corruptions[source.name] = log
    taken: Dict[str, Set[Tuple[str, str]]] = {}
    for entity in universe:
        for name in (entity["name"], f"{entity['name']}{DUP_SUFFIX}"):
            taken.setdefault(name, set()).add(
                (entity["cuisine"], entity["speciality"])
            )
    conflict_source, conflict_speciality = _seed_conflict(
        spec, sources, delta_index_sets, taken
    )

    schemas: Dict[str, Schema] = {
        source.name: Schema(
            [Attribute(a) for a in source.shape.attributes],
            keys=[source.shape.key],
        )
        for source in sources
    }
    relations: Dict[str, Relation] = {
        source.name: Relation(
            schemas[source.name],
            final_rows[source.name],
            name=source.name,
            enforce_keys=False,
        )
        for source in sources
    }
    base_relations: Dict[str, Relation] = {
        source.name: Relation(
            schemas[source.name],
            [final_rows[source.name][i] for i in base_indices[source.name]],
            name=source.name,
            enforce_keys=False,
        )
        for source in sources
    }
    delta_batches: List[Dict[str, Tuple[Dict[str, Any], ...]]] = []
    for batch in ordered_batches:
        rendered: Dict[str, Tuple[Dict[str, Any], ...]] = {}
        for source in sources:
            indices = batch[source.name]
            if indices:
                rendered[source.name] = tuple(
                    dict(final_rows[source.name][i]) for i in indices
                )
        if rendered:
            delta_batches.append(rendered)

    labels: Dict[str, Dict[KeyValues, int]] = {}
    for source in sources:
        by_key: Dict[KeyValues, int] = {}
        for row, label in zip(final_rows[source.name], source.labels):
            by_key[_key_values_of(row, source.shape.key)] = label
        labels[source.name] = by_key

    truth: Dict[Tuple[str, str], FrozenSet[Pair]] = {}
    for i, first in enumerate(sources):
        for second in sources[i + 1 :]:
            pairs: Set[Pair] = set()
            for row_a, label_a in zip(final_rows[first.name], first.labels):
                for row_b, label_b in zip(
                    final_rows[second.name], second.labels
                ):
                    if label_a == label_b:
                        pairs.add(
                            (
                                _key_values_of(row_a, first.shape.key),
                                _key_values_of(row_b, second.shape.key),
                            )
                        )
            truth[(first.name, second.name)] = frozenset(pairs)

    drift: Optional[SchemaDrift] = None
    feeds = dict(relations)
    if spec.schema_drift == "rename":
        drifted = "src1"
        renames = {"name": "restaurant", "street": "road"}
        renames = {
            old: new
            for old, new in renames.items()
            if old in schemas[drifted].names
        }
        feeds[drifted] = rename_attributes(relations[drifted], renames)
        drift = SchemaDrift(source=drifted, kind="rename", renames=renames)
    elif spec.schema_drift == "split":
        drifted = "src1"
        if "street" not in schemas[drifted].names:
            raise ScenarioError(
                f"cell {spec.cell_id!r}: split drift needs a street attribute"
            )
        feeds[drifted] = split_attribute(
            relations[drifted],
            "street",
            ("street_no", "street_name"),
            street_splitter,
        )
        drift = SchemaDrift(
            source=drifted,
            kind="split",
            split_attribute="street",
            split_into=("street_no", "street_name"),
        )

    return ScenarioData(
        spec=spec,
        sources=relations,
        feeds=feeds,
        drift=drift,
        base=base_relations,
        delta_batches=tuple(delta_batches),
        ilfds=ILFDSet(ilfds),
        extended_key=EXTENDED_KEY,
        key_attributes={
            source.name: source.shape.key for source in sources
        },
        labels=labels,
        truth=truth,
        corruptions=corruptions,
        conflict_source=conflict_source,
        conflict_speciality=conflict_speciality,
    )

"""ILFD drift detection: constraints that stop holding after deltas.

The paper treats ILFDs as DBA-supplied knowledge; :mod:`repro.discovery`
mines *candidate* ILFDs from instances.  This module closes the loop for
the scenario harness: mine the exceptionless rules a **baseline
snapshot** obeys (restricted to a declared watch family, so findings are
deterministic and reviewable), then re-check those rules as delta
batches land.  A rule the snapshot proved that incoming deltas violate
is surfaced as a structured :class:`ConstraintDrift` finding — the
instance-level analogue of a failed integrity re-validation.

Findings are order-independent over the batch set: the same deltas in
any arrival order produce the same ``(rule, witnesses)`` findings (only
the ``first_batch`` bookkeeping differs), which the runner asserts for
shuffled-delta cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.discovery.ilfd_miner import MinedILFD, mine_ilfds
from repro.ilfd.ilfd import ILFD
from repro.relational.relation import Relation

__all__ = [
    "DEFAULT_WATCH",
    "ConstraintDrift",
    "DriftReport",
    "WatchFamily",
    "detect_constraint_drift",
]


@dataclass(frozen=True)
class WatchFamily:
    """The constraint family the detector mines and re-checks.

    Restricting mining to a declared family (antecedent attributes,
    consequent targets, support floor) keeps findings deterministic and
    small enough to review — the same reason the paper keeps ILFDs
    DBA-confirmed instead of trusting every instance regularity.
    """

    antecedents: Tuple[str, ...] = ("speciality",)
    targets: Tuple[str, ...] = ("cuisine",)
    max_antecedent: int = 1
    min_support: int = 2

    def covers(self, attributes: Sequence[str]) -> bool:
        """True iff a schema stores every watched attribute."""
        names = set(attributes)
        return set(self.antecedents) <= names and set(self.targets) <= names


DEFAULT_WATCH = WatchFamily()
"""The scenario harness's watch family: speciality → cuisine."""


@dataclass(frozen=True)
class ConstraintDrift:
    """One baseline-proven ILFD newly violated by delta rows.

    Attributes
    ----------
    source:
        The source relation whose feed drifted.
    rule:
        Human-readable form of the broken ILFD.
    ilfd:
        The mined rule itself.
    support:
        Baseline tuples that backed the rule when it was mined.
    violations:
        Number of delta rows contradicting the rule.
    witnesses:
        Candidate-key values of the violating delta rows (sorted).
    first_batch:
        Index (in application order) of the first batch containing a
        violation — bookkeeping only; excluded from :meth:`fingerprint`
        so shuffled arrivals fingerprint identically.
    expected:
        True when the generating spec seeded this conflict on purpose
        (the cell's contract says it must appear); False findings are
        genuine regressions.
    """

    source: str
    rule: str
    ilfd: ILFD
    support: int
    violations: int
    witnesses: Tuple[Tuple[Tuple[str, Any], ...], ...]
    first_batch: int
    expected: bool = False

    def fingerprint(self) -> Tuple[Any, ...]:
        """Arrival-order-independent identity of this finding."""
        return (self.source, self.rule, self.witnesses)

    def to_json(self) -> Dict[str, Any]:
        """JSON-serializable rendering (for reports and ``--json``)."""
        return {
            "source": self.source,
            "rule": self.rule,
            "support": self.support,
            "violations": self.violations,
            "witnesses": [
                {attr: value for attr, value in witness}
                for witness in self.witnesses
            ],
            "first_batch": self.first_batch,
            "expected": self.expected,
        }


@dataclass
class DriftReport:
    """All drift findings of one scenario cell."""

    findings: Tuple[ConstraintDrift, ...] = ()
    rules_watched: int = 0

    @property
    def unexpected(self) -> Tuple[ConstraintDrift, ...]:
        """Findings no spec axis asked for — the regressions."""
        return tuple(f for f in self.findings if not f.expected)

    @property
    def is_clean(self) -> bool:
        return not self.findings

    def fingerprints(self) -> Tuple[Tuple[Any, ...], ...]:
        """Sorted order-independent fingerprints of all findings."""
        return tuple(sorted(f.fingerprint() for f in self.findings))


def _describe(ilfd: ILFD) -> str:
    antecedent = " ∧ ".join(
        f"{c.attribute}={c.value!r}" for c in sorted(
            ilfd.antecedent, key=lambda c: c.attribute
        )
    )
    consequent = " ∧ ".join(
        f"{c.attribute}={c.value!r}" for c in sorted(
            ilfd.consequent, key=lambda c: c.attribute
        )
    )
    return f"{antecedent} → {consequent}"


def _watched_rules(
    baseline: Relation, watch: WatchFamily
) -> List[MinedILFD]:
    mined = mine_ilfds(
        baseline,
        max_antecedent=watch.max_antecedent,
        min_support=watch.min_support,
        min_confidence=1.0,
        targets=watch.targets,
    )
    wanted = set(watch.antecedents)
    return [m for m in mined if m.ilfd.antecedent_attributes <= wanted]


def detect_constraint_drift(
    source: str,
    baseline: Relation,
    batches: Sequence[Sequence[Mapping[str, Any]]],
    *,
    key_attributes: Sequence[str],
    watch: WatchFamily = DEFAULT_WATCH,
    expected: bool = False,
) -> DriftReport:
    """Mine *baseline*, re-check each rule against delta *batches*.

    Every exceptionless watched rule the baseline snapshot proves is
    evaluated against each delta row (in batch application order); rules
    with at least one violating row become :class:`ConstraintDrift`
    findings carrying the violators' candidate-key values as witnesses.
    """
    if not watch.covers(baseline.schema.names):
        return DriftReport()
    rules = _watched_rules(baseline, watch)
    findings: List[ConstraintDrift] = []
    for mined in rules:
        witnesses: List[Tuple[Tuple[str, Any], ...]] = []
        first_batch: Optional[int] = None
        for batch_index, batch in enumerate(batches):
            for row in batch:
                if mined.ilfd.violated_by(row):
                    if first_batch is None:
                        first_batch = batch_index
                    witnesses.append(
                        tuple(
                            (attr, row[attr])
                            for attr in sorted(key_attributes)
                        )
                    )
        if first_batch is None:
            continue
        findings.append(
            ConstraintDrift(
                source=source,
                rule=_describe(mined.ilfd),
                ilfd=mined.ilfd,
                support=mined.support,
                violations=len(witnesses),
                witnesses=tuple(sorted(witnesses)),
                first_batch=first_batch,
                expected=expected,
            )
        )
    findings.sort(key=lambda f: (f.source, f.rule))
    return DriftReport(findings=tuple(findings), rules_watched=len(rules))

"""Exceptions of the adversarial scenario harness."""

from __future__ import annotations

__all__ = ["ScenarioError", "ScenarioBaselineError"]


class ScenarioError(Exception):
    """Base class for scenario-harness failures (bad specs, bad grids)."""


class ScenarioBaselineError(ScenarioError):
    """A scenario baseline file is missing, malformed, or incompatible."""

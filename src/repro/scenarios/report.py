"""Versioned scenario reports and committed baselines.

A :class:`ScenarioReport` is the canonical JSON rendering of one grid
run — every cell's spec, per-pair quality, oracle counts, and drift
findings, in a stable key and cell order, with a fingerprint over the
canonical bytes.  Committed baselines (``tests/scenarios/baselines/``)
freeze the expected report per grid, mirroring the golden-corpus gate
(:mod:`repro.conformance.golden`): any unintended change to generation,
identification, scoring, or drift detection becomes a reviewable diff
with per-cell drift reasons; intentional changes re-freeze via
``repro scenarios --update-baseline`` and go through code review.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.scenarios.errors import ScenarioBaselineError
from repro.scenarios.runner import CellResult

__all__ = [
    "SCENARIO_FORMAT",
    "ScenarioReport",
    "baseline_path",
    "check_baseline",
    "load_baseline",
    "update_baseline",
    "write_baseline",
]

SCENARIO_FORMAT = 1
"""Version of the scenario-report JSON layout."""


def _canonical(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass
class ScenarioReport:
    """One grid run, rendered canonically."""

    grid: str
    cells: Tuple[Dict[str, Any], ...]

    @classmethod
    def from_results(
        cls, grid: str, results: Sequence[CellResult]
    ) -> "ScenarioReport":
        """Render runner results; cells are sorted by cell id."""
        cells = []
        for result in sorted(results, key=lambda r: r.cell_id):
            cell = result.to_json()
            cell["spec"] = asdict(result.spec)
            cells.append(cell)
        return cls(grid=grid, cells=tuple(cells))

    @property
    def ok(self) -> bool:
        """True iff every cell is green."""
        return all(cell["ok"] for cell in self.cells)

    def cell(self, cell_id: str) -> Optional[Dict[str, Any]]:
        for cell in self.cells:
            if cell["cell"] == cell_id:
                return cell
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": SCENARIO_FORMAT,
            "grid": self.grid,
            "cells": list(self.cells),
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON bytes."""
        return hashlib.sha256(
            _canonical(self.to_dict()).encode("utf-8")
        ).hexdigest()

    def summary(self) -> Dict[str, Any]:
        """Compact rollup for CLI/metrics output."""
        findings = sum(len(c["drift"]["findings"]) for c in self.cells)
        unexpected = sum(c["drift"]["unexpected"] for c in self.cells)
        return {
            "grid": self.grid,
            "cells": len(self.cells),
            "cells_ok": sum(1 for c in self.cells if c["ok"]),
            "oracle_violations": sum(c["oracle_violations"] for c in self.cells),
            "drift_findings": findings,
            "unexpected_drift": unexpected,
            "fingerprint": self.fingerprint(),
        }


def baseline_path(directory: str, grid: str) -> str:
    """The baseline file for one grid."""
    return os.path.join(directory, f"{grid}.json")


def load_baseline(directory: str, grid: str) -> ScenarioReport:
    """Load one frozen report from *directory*."""
    path = baseline_path(directory, grid)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise ScenarioBaselineError(
            f"scenario baseline missing for grid {grid!r}: {path} "
            f"(run with --update-baseline to create it)"
        ) from None
    except json.JSONDecodeError as exc:
        raise ScenarioBaselineError(
            f"malformed scenario baseline {path}: {exc}"
        ) from exc
    try:
        if data["format"] != SCENARIO_FORMAT:
            raise ScenarioBaselineError(
                f"scenario baseline {path} has format {data['format']}, "
                f"expected {SCENARIO_FORMAT}"
            )
        return ScenarioReport(
            grid=data["grid"], cells=tuple(data["cells"])
        )
    except KeyError as exc:
        raise ScenarioBaselineError(
            f"scenario baseline {path} is missing field {exc}"
        ) from None


def write_baseline(directory: str, report: ScenarioReport) -> str:
    """Write one report to *directory*; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = baseline_path(directory, report.grid)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _flatten(prefix: str, value: Any, out: Dict[str, Any]) -> None:
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}" if prefix else str(key), value[key], out)
    elif isinstance(value, list):
        for index, item in enumerate(value):
            _flatten(f"{prefix}[{index}]", item, out)
    else:
        out[prefix] = value


def _cell_drift_reason(
    frozen: Dict[str, Any], current: Dict[str, Any], *, limit: int = 4
) -> Optional[str]:
    """Field-level description of how one cell diverged (None if equal)."""
    if _canonical(frozen) == _canonical(current):
        return None
    flat_frozen: Dict[str, Any] = {}
    flat_current: Dict[str, Any] = {}
    _flatten("", frozen, flat_frozen)
    _flatten("", current, flat_current)
    reasons: List[str] = []
    for key in sorted(set(flat_frozen) | set(flat_current)):
        if flat_frozen.get(key) == flat_current.get(key):
            continue
        was = flat_frozen.get(key, "<absent>")
        now = flat_current.get(key, "<absent>")
        reasons.append(f"{key}: {was!r} -> {now!r}")
        if len(reasons) >= limit:
            reasons.append("…")
            break
    return "; ".join(reasons)


def check_baseline(
    directory: str, report: ScenarioReport
) -> Dict[str, str]:
    """Compare a fresh report against the committed baseline.

    Returns ``{cell_id: reason}`` for every diverging cell (plus
    pseudo-cells for added/removed ids) — empty means the baseline still
    holds.  A missing or malformed baseline raises
    :class:`ScenarioBaselineError`: baselines are part of the
    repository, absence is a harness failure, not drift.
    """
    frozen = load_baseline(directory, report.grid)
    drift: Dict[str, str] = {}
    frozen_cells = {cell["cell"]: cell for cell in frozen.cells}
    current_cells = {cell["cell"]: cell for cell in report.cells}
    for cell_id in sorted(set(frozen_cells) | set(current_cells)):
        if cell_id not in current_cells:
            drift[cell_id] = "cell removed from grid"
            continue
        if cell_id not in frozen_cells:
            drift[cell_id] = "cell not in baseline (grid grew?)"
            continue
        reason = _cell_drift_reason(
            frozen_cells[cell_id], current_cells[cell_id]
        )
        if reason:
            drift[cell_id] = reason
    return drift


def update_baseline(directory: str, report: ScenarioReport) -> str:
    """Re-freeze one grid's baseline; returns the written path."""
    return write_baseline(directory, report)

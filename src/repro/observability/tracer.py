"""Nested, timed spans over the identification pipeline.

A :class:`Span` is one timed region (a pipeline phase, a relation
extension, a baseline run) with structured attributes; spans nest, so a
finished trace is a forest mirroring the call structure of
:meth:`EntityIdentifier.run() <repro.core.identifier.EntityIdentifier.run>`.
Timing uses :func:`time.perf_counter` — wall-clock offsets within one
trace are meaningful, absolute epochs are not.

Instrumentation is **opt-in**: every instrumented component defaults to
:data:`NO_OP_TRACER`, whose spans and metrics do nothing, so the
uninstrumented hot path pays only an ``if tracer.enabled`` guard (or one
attribute load and a no-op call).  Pass a real :class:`Tracer` to record.

Spans are context managers::

    tracer = Tracer()
    with tracer.span("identify.run", r_size=100) as span:
        ...
        span.set("pairs", 42)
    tracer.finished_spans()   # flat list, start order
    tracer.metrics.snapshot() # the run's counters/histograms
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, List, Optional

from repro.observability.metrics import NO_OP_METRICS, MetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "NoOpTracer",
    "NO_OP_TRACER",
    "PROFILE_OFF",
    "PROFILE_RSS",
    "PROFILE_TRACEMALLOC",
    "current_rss_kb",
    "peak_rss_kb",
]


PROFILE_OFF = "off"
PROFILE_RSS = "rss"
PROFILE_TRACEMALLOC = "tracemalloc"

_PAGE_KB = (os.sysconf("SC_PAGESIZE") // 1024) if hasattr(os, "sysconf") else 4


def current_rss_kb() -> float:
    """Resident-set size of this process in KiB (0.0 when unreadable).

    Reads ``/proc/self/statm`` (one short read, ~µs) so the RSS profile
    mode can sample at every span boundary inside the <5% overhead
    budget; platforms without procfs report 0.0 and the profile
    degrades to peak-only accounting via :func:`peak_rss_kb`.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            return float(int(handle.read().split()[1])) * _PAGE_KB
    except (OSError, ValueError, IndexError):
        return 0.0


def peak_rss_kb() -> float:
    """Lifetime peak RSS in KiB via ``getrusage`` (0.0 when unavailable)."""
    try:
        import resource

        peak = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:
        return 0.0
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return peak / 1024.0 if os.uname().sysname == "Darwin" else peak


class Span:
    """One timed, attributed region of a trace.

    Spans are created by :meth:`Tracer.span` and used as context
    managers; entering starts the clock and establishes nesting,
    exiting stops it.  ``duration`` is in seconds.
    """

    __slots__ = (
        "name",
        "attributes",
        "span_id",
        "parent_id",
        "start",
        "end",
        "memory",
        "counter_deltas",
        "_tracer",
        "_mem_start",
        "_counters_start",
    )

    def __init__(
        self,
        name: str,
        attributes: Dict[str, Any],
        span_id: int,
        tracer: "Tracer",
    ) -> None:
        self.name = name
        self.attributes = attributes
        self.span_id = span_id
        self.parent_id: Optional[int] = None
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.memory: Optional[Dict[str, Any]] = None
        self.counter_deltas: Optional[Dict[str, int]] = None
        self._tracer = tracer
        self._mem_start: Optional[float] = None
        self._counters_start: Optional[Dict[str, int]] = None

    @property
    def duration(self) -> float:
        """Elapsed seconds (to "now" while the span is still open)."""
        if self.end is None:
            return time.perf_counter() - self.start
        return self.end - self.start

    @property
    def depth(self) -> int:
        """Nesting depth (0 for root spans)."""
        depth = 0
        parent = self.parent_id
        spans = self._tracer._spans
        while parent is not None:
            depth += 1
            parent = spans[parent].parent_id
        return depth

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute; returns self for chaining."""
        self.attributes[key] = value
        return self

    def is_finished(self) -> bool:
        """True once the span has exited."""
        return self.end is not None

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.parent_id = tracer._current
        tracer._current = self.span_id
        if tracer.profiling:
            self._mem_start = tracer._read_memory()
            self._counters_start = dict(tracer.metrics.counters)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        tracer = self._tracer
        if tracer.profiling and self._mem_start is not None:
            mem_end = tracer._read_memory()
            self.memory = {
                "mode": tracer.profile,  # type: ignore[dict-item]
                "start_kb": round(self._mem_start, 1),
                "end_kb": round(mem_end, 1),
                "delta_kb": round(mem_end - self._mem_start, 1),
            }
            before = self._counters_start or {}
            deltas = {
                name: value - before.get(name, 0)
                for name, value in dict(tracer.metrics.counters).items()
                if value != before.get(name, 0)
            }
            self.counter_deltas = deltas or None
        tracer._current = self.parent_id
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1e3:.3f}ms" if self.is_finished() else "open"
        return f"Span({self.name!r}, {state}, attrs={self.attributes!r})"


class Tracer:
    """Records nested spans and owns a :class:`MetricsRegistry`.

    One tracer corresponds to one observed run (or a deliberately
    aggregated sequence of runs); it is not thread-safe, matching the
    single-threaded pipeline.
    """

    enabled: bool = True
    profile: str = PROFILE_OFF
    profiling: bool = False

    def __init__(
        self,
        *,
        metrics: Optional[MetricsRegistry] = None,
        profile: str = PROFILE_OFF,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._spans: List[Span] = []
        self._current: Optional[int] = None
        self._read_memory: Callable[[], float] = current_rss_kb
        self.set_profile(profile)

    def set_profile(self, profile: str) -> None:
        """Select the span-boundary memory attribution mode.

        - :data:`PROFILE_OFF` (default): no per-span memory, zero cost.
        - :data:`PROFILE_RSS`: sample resident-set size at span enter and
          exit (one ``/proc/self/statm`` read each; stays inside the <5%
          overhead budget because the cost is per *span*, not per
          allocation).
        - :data:`PROFILE_TRACEMALLOC`: exact Python allocation deltas via
          :mod:`tracemalloc` — started here if not already tracing.
          Precise but **expensive** (tracemalloc hooks every allocation;
          expect ~2x on allocation-heavy runs), so it is a deliberate
          opt-in, never a default.
        """
        if profile not in (PROFILE_OFF, PROFILE_RSS, PROFILE_TRACEMALLOC):
            raise ValueError(
                f"unknown profile mode {profile!r}; expected one of "
                f"{(PROFILE_OFF, PROFILE_RSS, PROFILE_TRACEMALLOC)}"
            )
        self.profile = profile
        self.profiling = profile != PROFILE_OFF
        if profile == PROFILE_TRACEMALLOC:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
            self._read_memory = lambda: tracemalloc.get_traced_memory()[0] / 1024.0
        else:
            self._read_memory = current_rss_kb

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span, nested under the currently open one when entered."""
        span = Span(name, attributes, len(self._spans), self)
        self._spans.append(span)
        return span

    # ------------------------------------------------------------------
    # Reading the trace
    # ------------------------------------------------------------------
    def spans(self) -> List[Span]:
        """All spans in creation order (including any still open)."""
        return list(self._spans)

    def finished_spans(self) -> List[Span]:
        """Finished spans in creation (≈ start) order."""
        return [s for s in self._spans if s.is_finished()]

    def root_spans(self) -> List[Span]:
        """Spans with no parent, in creation order."""
        return [s for s in self._spans if s.parent_id is None]

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of *span*, in creation order."""
        return [s for s in self._spans if s.parent_id == span.span_id]

    def span_names(self) -> List[str]:
        """Distinct span names, in first-seen order."""
        seen: List[str] = []
        for span in self._spans:
            if span.name not in seen:
                seen.append(span.name)
        return seen

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view of the whole run (spans + metrics).

        Suitable for embedding in benchmark JSON; see
        :func:`repro.observability.export.trace_to_records` for the
        flat JSON-lines form.
        """
        from repro.observability.export import span_to_record

        return {
            "spans": [span_to_record(s) for s in self.finished_spans()],
            "metrics": self.metrics.snapshot(),
        }

    def reset(self) -> None:
        """Drop all spans and metrics (tracer stays usable)."""
        self._spans.clear()
        self._current = None
        self.metrics.reset()


class _NoOpSpan:
    """Shared do-nothing span: enter/exit/set are all free."""

    __slots__ = ()

    name = "noop"
    attributes: Dict[str, Any] = {}
    parent_id = None
    start = 0.0
    end = 0.0
    duration = 0.0
    depth = 0
    memory = None
    counter_deltas = None

    def set(self, key: str, value: Any) -> "_NoOpSpan":
        return self

    def is_finished(self) -> bool:
        return True

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP_SPAN = _NoOpSpan()


class NoOpTracer(Tracer):
    """The default tracer: records nothing, costs (almost) nothing.

    ``enabled`` is False so instrumentation sites can guard entire
    metric blocks with one boolean check; ``span()`` returns a shared
    inert span so un-guarded ``with tracer.span(...)`` sites stay cheap.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(metrics=NO_OP_METRICS)

    def span(self, name: str, **attributes: Any) -> Span:
        return _NOOP_SPAN  # type: ignore[return-value]


NO_OP_TRACER = NoOpTracer()
"""Module-level default used by every instrumented component."""

"""Nested, timed spans over the identification pipeline.

A :class:`Span` is one timed region (a pipeline phase, a relation
extension, a baseline run) with structured attributes; spans nest, so a
finished trace is a forest mirroring the call structure of
:meth:`EntityIdentifier.run() <repro.core.identifier.EntityIdentifier.run>`.
Timing uses :func:`time.perf_counter` — wall-clock offsets within one
trace are meaningful, absolute epochs are not.

Instrumentation is **opt-in**: every instrumented component defaults to
:data:`NO_OP_TRACER`, whose spans and metrics do nothing, so the
uninstrumented hot path pays only an ``if tracer.enabled`` guard (or one
attribute load and a no-op call).  Pass a real :class:`Tracer` to record.

Spans are context managers::

    tracer = Tracer()
    with tracer.span("identify.run", r_size=100) as span:
        ...
        span.set("pairs", 42)
    tracer.finished_spans()   # flat list, start order
    tracer.metrics.snapshot() # the run's counters/histograms
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.observability.metrics import NO_OP_METRICS, MetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "NoOpTracer",
    "NO_OP_TRACER",
]


class Span:
    """One timed, attributed region of a trace.

    Spans are created by :meth:`Tracer.span` and used as context
    managers; entering starts the clock and establishes nesting,
    exiting stops it.  ``duration`` is in seconds.
    """

    __slots__ = (
        "name",
        "attributes",
        "span_id",
        "parent_id",
        "start",
        "end",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        attributes: Dict[str, Any],
        span_id: int,
        tracer: "Tracer",
    ) -> None:
        self.name = name
        self.attributes = attributes
        self.span_id = span_id
        self.parent_id: Optional[int] = None
        self.start: float = 0.0
        self.end: Optional[float] = None
        self._tracer = tracer

    @property
    def duration(self) -> float:
        """Elapsed seconds (to "now" while the span is still open)."""
        if self.end is None:
            return time.perf_counter() - self.start
        return self.end - self.start

    @property
    def depth(self) -> int:
        """Nesting depth (0 for root spans)."""
        depth = 0
        parent = self.parent_id
        spans = self._tracer._spans
        while parent is not None:
            depth += 1
            parent = spans[parent].parent_id
        return depth

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute; returns self for chaining."""
        self.attributes[key] = value
        return self

    def is_finished(self) -> bool:
        """True once the span has exited."""
        return self.end is not None

    def __enter__(self) -> "Span":
        self.parent_id = self._tracer._current
        self._tracer._current = self.span_id
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        self._tracer._current = self.parent_id
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1e3:.3f}ms" if self.is_finished() else "open"
        return f"Span({self.name!r}, {state}, attrs={self.attributes!r})"


class Tracer:
    """Records nested spans and owns a :class:`MetricsRegistry`.

    One tracer corresponds to one observed run (or a deliberately
    aggregated sequence of runs); it is not thread-safe, matching the
    single-threaded pipeline.
    """

    enabled: bool = True

    def __init__(self, *, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._spans: List[Span] = []
        self._current: Optional[int] = None

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span, nested under the currently open one when entered."""
        span = Span(name, attributes, len(self._spans), self)
        self._spans.append(span)
        return span

    # ------------------------------------------------------------------
    # Reading the trace
    # ------------------------------------------------------------------
    def spans(self) -> List[Span]:
        """All spans in creation order (including any still open)."""
        return list(self._spans)

    def finished_spans(self) -> List[Span]:
        """Finished spans in creation (≈ start) order."""
        return [s for s in self._spans if s.is_finished()]

    def root_spans(self) -> List[Span]:
        """Spans with no parent, in creation order."""
        return [s for s in self._spans if s.parent_id is None]

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of *span*, in creation order."""
        return [s for s in self._spans if s.parent_id == span.span_id]

    def span_names(self) -> List[str]:
        """Distinct span names, in first-seen order."""
        seen: List[str] = []
        for span in self._spans:
            if span.name not in seen:
                seen.append(span.name)
        return seen

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view of the whole run (spans + metrics).

        Suitable for embedding in benchmark JSON; see
        :func:`repro.observability.export.trace_to_records` for the
        flat JSON-lines form.
        """
        from repro.observability.export import span_to_record

        return {
            "spans": [span_to_record(s) for s in self.finished_spans()],
            "metrics": self.metrics.snapshot(),
        }

    def reset(self) -> None:
        """Drop all spans and metrics (tracer stays usable)."""
        self._spans.clear()
        self._current = None
        self.metrics.reset()


class _NoOpSpan:
    """Shared do-nothing span: enter/exit/set are all free."""

    __slots__ = ()

    name = "noop"
    attributes: Dict[str, Any] = {}
    parent_id = None
    start = 0.0
    end = 0.0
    duration = 0.0
    depth = 0

    def set(self, key: str, value: Any) -> "_NoOpSpan":
        return self

    def is_finished(self) -> bool:
        return True

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP_SPAN = _NoOpSpan()


class NoOpTracer(Tracer):
    """The default tracer: records nothing, costs (almost) nothing.

    ``enabled`` is False so instrumentation sites can guard entire
    metric blocks with one boolean check; ``span()`` returns a shared
    inert span so un-guarded ``with tracer.span(...)`` sites stay cheap.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(metrics=NO_OP_METRICS)

    def span(self, name: str, **attributes: Any) -> Span:
        return _NOOP_SPAN  # type: ignore[return-value]


NO_OP_TRACER = NoOpTracer()
"""Module-level default used by every instrumented component."""

"""Pipeline tracing and metrics (zero-dependency observability layer).

The paper's central claim is that entity identification must be
*inspectable*: soundness is an argument built from identity-rule and
ILFD firings, and the DBA reviewing a dismissal list needs to see why
each pair matched.  :mod:`repro.core.explain` reconstructs provenance
after the fact; this subpackage records what the pipeline *did* while
running:

- :mod:`repro.observability.tracer` — :class:`Tracer` produces nested,
  ``perf_counter``-timed :class:`Span` regions with structured
  attributes; :data:`NO_OP_TRACER` is the free default every
  instrumented component falls back to.
- :mod:`repro.observability.metrics` — :class:`MetricsRegistry` holds
  named counters (pairs compared, rule evaluations, ILFD firings,
  match/non-match/unknown tallies) and histograms (chain depths,
  closure rounds, incremental delta sizes).
- :mod:`repro.observability.export` — JSON-lines trace dump and
  round-trip, a human-readable span tree, and the metrics/stats
  summaries behind ``repro identify --trace/--metrics`` and
  ``repro stats``.

Instrumented components: :class:`~repro.core.identifier.EntityIdentifier`
(one span per pipeline phase), :class:`~repro.rules.engine.RuleEngine`
(per-rule evaluation counts/outcomes),
:class:`~repro.ilfd.derivation.DerivationEngine` and
:func:`~repro.ilfd.closure.closure` (derivation steps, fixpoint rounds),
:class:`~repro.federation.incremental.IncrementalIdentifier` (per-update
deltas), and :class:`~repro.baselines.base.BaselineMatcher` (comparable
per-baseline stats).
"""

from repro.observability.metrics import (
    NO_OP_METRICS,
    WELL_KNOWN_METRICS,
    register_metric,
    HistogramSummary,
    MetricsRegistry,
    NoOpMetrics,
)
from repro.observability.tracer import (
    NO_OP_TRACER,
    PROFILE_OFF,
    PROFILE_RSS,
    PROFILE_TRACEMALLOC,
    NoOpTracer,
    Span,
    Tracer,
    current_rss_kb,
    peak_rss_kb,
)
from repro.observability.export import (
    format_blocking_summary,
    format_resilience_summary,
    format_metrics,
    format_profile,
    format_store_summary,
    format_span_tree,
    format_trace_summary,
    read_trace_jsonl,
    span_to_record,
    trace_to_records,
    write_trace_jsonl,
)

__all__ = [
    "HistogramSummary",
    "MetricsRegistry",
    "WELL_KNOWN_METRICS",
    "register_metric",
    "NoOpMetrics",
    "NoOpTracer",
    "NO_OP_METRICS",
    "NO_OP_TRACER",
    "PROFILE_OFF",
    "PROFILE_RSS",
    "PROFILE_TRACEMALLOC",
    "Span",
    "Tracer",
    "current_rss_kb",
    "peak_rss_kb",
    "format_blocking_summary",
    "format_resilience_summary",
    "format_metrics",
    "format_profile",
    "format_store_summary",
    "format_span_tree",
    "format_trace_summary",
    "read_trace_jsonl",
    "span_to_record",
    "trace_to_records",
    "write_trace_jsonl",
]

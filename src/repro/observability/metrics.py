"""Named counters and histograms for pipeline accounting.

The paper's soundness argument is built from *countable events* — which
identity rules fired, how many ILFD derivation steps completed a tuple,
how many pairs landed in the matching versus negative matching table.
:class:`MetricsRegistry` is the single sink for those tallies: counters
for monotone event counts and histograms (count/sum/min/max) for
distributions such as ILFD chain depths or closure fixpoint rounds.

Zero dependencies, and a :meth:`MetricsRegistry.snapshot` that is plain
JSON-serialisable data so benchmark results and trace files can embed it
directly.  Recording is guarded by one :class:`threading.Lock` — the
thread-backend pair executor and the telemetry ledger's samplers mutate
a shared registry concurrently, and a counter increment must never be
lost to an interleaved read-modify-write.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "HistogramSummary",
    "MetricsRegistry",
    "NoOpMetrics",
    "NO_OP_METRICS",
    "WELL_KNOWN_METRICS",
    "register_metric",
]


WELL_KNOWN_METRICS: Dict[str, str] = {
    # pipeline
    "pipeline.pairs": "tuple pairs considered by one identification run",
    "pipeline.matches": "pairs entering the matching table",
    "pipeline.non_matches": "pairs entering the negative matching table",
    "pipeline.unknown": "pairs left undetermined (Figure 3's middle band)",
    # blocking subsystem
    "blocking.pairs_generated": "candidate pairs emitted by the blocker",
    "blocking.pairs_pruned": "cross-product pairs the blocker never emitted",
    "blocking.reduction_ratio": "per-run fraction of the cross product pruned",
    "blocking.block_pairs": "candidate pairs per block",
    # parallel pair executor
    "executor.batches": "candidate batches dispatched to workers",
    "executor.pairs_evaluated": "candidate pairs classified by the executor",
    "executor.batch_pairs": "pairs per dispatched batch",
    "executor.consistency_conflicts": "pairs classified both matching and distinct",
    # persistence (repro.store)
    "store.writes": "table entries written to the match store",
    "store.removes": "matching-table entries retracted from the store",
    "store.journal_entries": "derivation-journal records appended",
    "store.transactions": "store transactions committed",
    "store.checkpoints": "checkpoint snapshots written",
    "store.checkpoint_bytes": "on-disk size of written checkpoints",
    "store.resumes": "checkpoint resumes performed",
    "store.load_ms": "milliseconds spent loading checkpoints",
    # multiway identification (repro.core.multiway)
    "multiway.sources": "source relations declared to multiway identifiers",
    "multiway.tuples": "tuples scanned by multiway extension",
    "multiway.clusters": "entity clusters produced by multiway identification",
    "multiway.violations": "uniqueness violations found by multiway verify",
    "multiway.conflicts": "attribute conflicts detected during integration",
    "store.entity_writes": "canonical entity records written to the store",
    # serving layer (repro.serving)
    "serving.requests": "HTTP requests handled by the serving layer",
    "serving.errors": "serving requests that ended in an error response",
    "serving.request_ms": "wall milliseconds per serving request",
    "serving.lookups": "resolve lookups executed against a replica",
    "serving.entity_lookups": "resolve lookups that found a canonical entity",
    "serving.lookup_ms": "wall milliseconds per replica lookup",
    "serving.ingests": "tuples ingested through search-before-insert",
    "serving.ingest_matches": "matches created by search-before-insert ingests",
    "serving.cache_hits": "resolve results served from the LRU cache",
    "serving.cache_misses": "resolve lookups that missed the LRU cache",
    "serving.cache_evictions": "LRU cache entries evicted by capacity",
    "serving.cache_invalidations": "cache entries invalidated by writes",
    "serving.stale_serves": "degraded responses served from the stale cache",
    "serving.degraded": "requests that hit the degradation path",
    "serving.replica_reconnects": "replica connections reopened after failure",
    "serving.replica_reopens": "replica connections closed and reopened after failure",
    "serving.cache_rejected_puts": "cache puts dropped because the key was invalidated mid-read",
    "serving.digests_resealed": "checkpoint section digests resealed at graceful shutdown",
    "serving.drain_timeouts": "graceful drains abandoned at the drain timeout",
}
"""Descriptions of the metric names core components emit.

Purely declarative — :class:`MetricsRegistry` still creates metrics on
first use — but gives ``repro stats`` and other renderers a place to look
up what a counter means (:meth:`MetricsRegistry.description`).
"""


def register_metric(name: str, description: str) -> None:
    """Register (or update) the description of a well-known metric name."""
    WELL_KNOWN_METRICS[name] = description


@dataclass
class HistogramSummary:
    """Streaming summary of one histogram (no raw samples kept)."""

    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        """Fold one sample into the summary."""
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-serialisable form."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.minimum is not None else 0.0,
            "max": self.maximum if self.maximum is not None else 0.0,
            "mean": self.mean,
        }

    def merge(self, other: "HistogramSummary") -> None:
        """Fold *other*'s samples into this summary."""
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        if self.minimum is None or (
            other.minimum is not None and other.minimum < self.minimum
        ):
            self.minimum = other.minimum
        if self.maximum is None or (
            other.maximum is not None and other.maximum > self.maximum
        ):
            self.maximum = other.maximum


@dataclass
class MetricsRegistry:
    """A flat namespace of counters and histograms.

    Names are dotted strings (``"rules.identity_evaluations"``); metrics
    are created on first use, so instrumentation sites never need
    registration ceremony.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    histograms: Dict[str, HistogramSummary] = field(default_factory=dict)
    _lock: Optional[threading.Lock] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def __getstate__(self) -> Dict[str, Any]:
        # Locks do not pickle; worker processes rebuild one on their side.
        return {"counters": self.counters, "histograms": self.histograms}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.counters = state["counters"]
        self.histograms = state["histograms"]
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        """Add *value* to counter *name* (created at 0 on first use)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Fold one sample into histogram *name*."""
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = HistogramSummary()
            histogram.observe(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 if never incremented)."""
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> HistogramSummary:
        """Summary of histogram *name* (empty if never observed)."""
        return self.histograms.get(name, HistogramSummary())

    @staticmethod
    def description(name: str) -> str:
        """Registered description of *name* ("" when unregistered)."""
        return WELL_KNOWN_METRICS.get(name, "")

    def snapshot(self) -> Dict[str, object]:
        """Plain-data snapshot: ``{"counters": ..., "histograms": ...}``.

        The returned dict is JSON-serialisable and detached from the
        registry (later recording does not mutate it).
        """
        with self._lock:
            return {
                "counters": dict(sorted(self.counters.items())),
                "histograms": {
                    name: summary.as_dict()
                    for name, summary in sorted(self.histograms.items())
                },
            }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s counters and histograms into this registry."""
        with self._lock:
            for name, value in other.counters.items():
                self.counters[name] = self.counters.get(name, 0) + value
            for name, summary in other.histograms.items():
                mine = self.histograms.get(name)
                if mine is None:
                    mine = self.histograms[name] = HistogramSummary()
                mine.merge(summary)

    def reset(self) -> None:
        """Drop all recorded values (registry stays usable)."""
        with self._lock:
            self.counters.clear()
            self.histograms.clear()

    def is_empty(self) -> bool:
        """True iff nothing has been recorded."""
        return not self.counters and not self.histograms


class NoOpMetrics(MetricsRegistry):
    """A registry that records nothing (the no-op tracer's sink).

    Unguarded ``tracer.metrics.inc(...)`` calls stay cheap and allocate
    nothing; hot paths should still prefer an ``if tracer.enabled``
    guard, which skips even the method call.
    """

    def inc(self, name: str, value: int = 1) -> None:  # noqa: D102 - no-op
        pass

    def observe(self, name: str, value: float) -> None:  # noqa: D102 - no-op
        pass


NO_OP_METRICS = NoOpMetrics()
"""Shared do-nothing registry used by :data:`~repro.observability.NO_OP_TRACER`."""

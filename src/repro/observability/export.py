"""Exporters: JSON-lines traces, span trees, metrics summaries.

Three consumers, three formats:

- **JSON lines** (``write_trace_jsonl`` / ``read_trace_jsonl``): one
  record per line — span records first (creation order, so parents
  precede children), then a single ``{"type": "metrics", ...}`` record.
  This is the ``repro identify --trace FILE`` output and what
  ``repro stats FILE`` reads back.
- **Span tree** (``format_span_tree``): a human-readable, indented
  rendering with durations and attributes, for terminals.
- **Metrics summary** (``format_metrics``): aligned counter/histogram
  tables, for the ``--metrics`` flag and the ``stats`` view.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.observability.tracer import Span, Tracer

__all__ = [
    "span_to_record",
    "trace_to_records",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "format_span_tree",
    "format_profile",
    "format_metrics",
    "format_blocking_summary",
    "format_resilience_summary",
    "format_store_summary",
    "format_trace_summary",
]

Record = Dict[str, Any]


def span_to_record(span: Span) -> Record:
    """One span as a flat, JSON-serialisable record.

    Profiled spans (see :meth:`Tracer.set_profile
    <repro.observability.tracer.Tracer.set_profile>`) additionally carry
    a ``memory`` block and the ``counters`` that moved while the span
    was open.
    """
    record = {
        "type": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "start": span.start,
        "duration": span.duration,
        "attributes": _jsonable(span.attributes),
    }
    memory = getattr(span, "memory", None)
    if memory:
        record["memory"] = dict(memory)
    counter_deltas = getattr(span, "counter_deltas", None)
    if counter_deltas:
        record["counters"] = dict(counter_deltas)
    return record


def trace_to_records(tracer: Tracer) -> List[Record]:
    """The whole trace as records: spans (creation order) then metrics."""
    records: List[Record] = [span_to_record(s) for s in tracer.finished_spans()]
    records.append({"type": "metrics", **tracer.metrics.snapshot()})
    return records


def write_trace_jsonl(tracer: Tracer, path: str) -> int:
    """Dump the trace to *path* as JSON lines; returns the record count."""
    records = trace_to_records(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return len(records)


def read_trace_jsonl(path: str) -> Tuple[List[Record], Optional[Record]]:
    """Parse a JSON-lines trace file back into (span records, metrics).

    The metrics record is None when the file carries no metrics line
    (e.g. a truncated dump).  Raises ``ValueError`` on malformed lines.
    """
    spans: List[Record] = []
    metrics: Optional[Record] = None
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{number}: not valid JSON: {exc}") from exc
            if not isinstance(record, dict) or "type" not in record:
                raise ValueError(f"{path}:{number}: record lacks a 'type' field")
            if record["type"] == "span":
                spans.append(record)
            elif record["type"] == "metrics":
                metrics = record
            else:
                raise ValueError(
                    f"{path}:{number}: unknown record type {record['type']!r}"
                )
    return spans, metrics


# ----------------------------------------------------------------------
# Human-readable rendering
# ----------------------------------------------------------------------
def format_span_tree(source: Union[Tracer, Iterable[Record]]) -> str:
    """Indented tree of spans with durations and attributes.

    Accepts a live :class:`Tracer` or span records from
    :func:`read_trace_jsonl`.
    """
    if isinstance(source, Tracer):
        records = [span_to_record(s) for s in source.finished_spans()]
    else:
        records = list(source)
    if not records:
        return "(no spans recorded)"
    children: Dict[Optional[int], List[Record]] = {}
    for record in records:
        children.setdefault(record.get("parent"), []).append(record)

    lines: List[str] = []

    def render(record: Record, depth: int) -> None:
        duration_ms = record.get("duration", 0.0) * 1e3
        attrs = record.get("attributes") or {}
        attr_text = (
            " " + " ".join(f"{k}={attrs[k]!r}" for k in sorted(attrs))
            if attrs
            else ""
        )
        lines.append(
            f"{'  ' * depth}{record['name']}  {duration_ms:.3f} ms{attr_text}"
        )
        for child in children.get(record.get("id"), ()):
            render(child, depth + 1)

    for root in children.get(None, ()):
        render(root, 0)
    return "\n".join(lines)


def format_profile(source: Union[Tracer, Iterable[Record]]) -> str:
    """The profiler's tree view: time, memory, and counter attribution.

    Like :func:`format_span_tree` but rendering the per-span ``memory``
    block (RSS or tracemalloc delta, per the tracer's profile mode) and
    the counters that moved while each span was open.  Spans recorded
    without profiling render with timings only.
    """
    if isinstance(source, Tracer):
        records = [span_to_record(s) for s in source.finished_spans()]
    else:
        records = list(source)
    if not records:
        return "(no spans recorded)"
    children: Dict[Optional[int], List[Record]] = {}
    for record in records:
        children.setdefault(record.get("parent"), []).append(record)

    lines: List[str] = []

    def render(record: Record, depth: int) -> None:
        duration_ms = record.get("duration", 0.0) * 1e3
        parts = [f"{'  ' * depth}{record['name']}  {duration_ms:.3f} ms"]
        memory = record.get("memory") or {}
        if "delta_kb" in memory:
            parts.append(f"mem {memory['delta_kb']:+.1f} KiB")
        counters = record.get("counters") or {}
        if counters:
            shown = sorted(counters.items(), key=lambda kv: -abs(kv[1]))[:3]
            parts.append(
                "[" + " ".join(f"{name} {delta:+d}" for name, delta in shown) + "]"
            )
        lines.append("  ".join(parts))
        for child in children.get(record.get("id"), ()):
            render(child, depth + 1)

    for root in children.get(None, ()):
        render(root, 0)
    return "\n".join(lines)


def format_metrics(snapshot: Mapping[str, Any]) -> str:
    """Aligned rendering of a :meth:`MetricsRegistry.snapshot` dict."""
    counters: Mapping[str, int] = snapshot.get("counters", {}) or {}
    histograms: Mapping[str, Mapping[str, float]] = (
        snapshot.get("histograms", {}) or {}
    )
    if not counters and not histograms:
        return "(no metrics recorded)"
    lines: List[str] = []
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")
    if histograms:
        if lines:
            lines.append("")
        lines.append("histograms:")
        width = max(len(name) for name in histograms)
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"  {name:<{width}}  count={h['count']} mean={h['mean']:.2f} "
                f"min={h['min']:g} max={h['max']:g}"
            )
    return "\n".join(lines)


def format_trace_summary(
    spans: Iterable[Record], metrics: Optional[Mapping[str, Any]] = None
) -> str:
    """The ``repro stats`` view: per-span-name totals plus metrics.

    Aggregates spans by name (count, total/mean duration) — the quick
    "where did the time go" answer — then appends the metrics tables.
    """
    spans = list(spans)
    lines: List[str] = []
    if spans:
        totals: Dict[str, List[float]] = {}
        for record in spans:
            totals.setdefault(record["name"], []).append(
                record.get("duration", 0.0)
            )
        lines.append("spans (aggregated by name):")
        width = max(len(name) for name in totals)
        for name in sorted(totals, key=lambda n: -sum(totals[n])):
            durations = totals[name]
            total_ms = sum(durations) * 1e3
            lines.append(
                f"  {name:<{width}}  n={len(durations)}  "
                f"total={total_ms:.3f} ms  mean={total_ms / len(durations):.3f} ms"
            )
    else:
        lines.append("(no spans recorded)")
    blocking = format_blocking_summary(metrics) if metrics is not None else ""
    if blocking:
        lines.append("")
        lines.append(blocking)
    store = format_store_summary(metrics) if metrics is not None else ""
    if store:
        lines.append("")
        lines.append(store)
    resilience = format_resilience_summary(metrics) if metrics is not None else ""
    if resilience:
        lines.append("")
        lines.append(resilience)
    if metrics is not None:
        lines.append("")
        lines.append(format_metrics(metrics))
    return "\n".join(lines)


def format_blocking_summary(snapshot: Mapping[str, Any]) -> str:
    """Candidate-generation aggregates, when a run recorded any.

    Renders the ``blocking.*`` / ``executor.*`` counters as one compact
    per-phase block — pairs generated and pruned, the resulting reduction
    ratio, and the executor's batch accounting — or "" when the run used
    no blocker.
    """
    counters: Mapping[str, int] = snapshot.get("counters", {}) or {}
    generated = counters.get("blocking.pairs_generated")
    if generated is None:
        return ""
    pruned = counters.get("blocking.pairs_pruned", 0)
    total = generated + pruned
    ratio = pruned / total if total else 0.0
    lines = [
        "blocking (candidate generation):",
        f"  pairs generated   {generated}",
        f"  pairs pruned      {pruned}",
        f"  reduction ratio   {ratio:.2%}",
    ]
    batches = counters.get("executor.batches")
    if batches is not None:
        lines.append(f"  executor batches  {batches}")
        evaluated = counters.get("executor.pairs_evaluated")
        if evaluated is not None:
            lines.append(f"  pairs evaluated   {evaluated}")
    return "\n".join(lines)


def format_store_summary(snapshot: Mapping[str, Any]) -> str:
    """Persistence aggregates, when a run wrote to a match store.

    Renders the ``store.*`` counters — table writes, journal appends,
    transactions, and any checkpoint/resume accounting — or "" when the
    run persisted nothing.
    """
    counters: Mapping[str, int] = snapshot.get("counters", {}) or {}
    histograms: Mapping[str, Mapping[str, float]] = (
        snapshot.get("histograms", {}) or {}
    )
    writes = counters.get("store.writes")
    journal = counters.get("store.journal_entries")
    if writes is None and journal is None:
        return ""
    lines = [
        "store (persistence):",
        f"  table writes      {writes or 0}",
        f"  journal entries   {journal or 0}",
    ]
    removes = counters.get("store.removes")
    if removes:
        lines.append(f"  removes           {removes}")
    transactions = counters.get("store.transactions")
    if transactions:
        lines.append(f"  transactions      {transactions}")
    checkpoints = counters.get("store.checkpoints")
    if checkpoints:
        lines.append(f"  checkpoints       {checkpoints}")
        size = histograms.get("store.checkpoint_bytes")
        if size:
            lines.append(f"  checkpoint bytes  {size['max']:g}")
    resumes = counters.get("store.resumes")
    if resumes:
        lines.append(f"  resumes           {resumes}")
        load = histograms.get("store.load_ms")
        if load:
            lines.append(f"  load time         {load['mean']:.3f} ms")
    return "\n".join(lines)


def format_resilience_summary(snapshot: Mapping[str, Any]) -> str:
    """Fault-handling aggregates, when a run hit (or injected) failures.

    Renders the ``resilience.*`` counters — injected faults, retries and
    backoff, worker crashes and recovered batches, quarantined pairs,
    failed commits, degraded sources, and salvages — or "" when the run
    saw no failures at all (the common, healthy case stays silent).
    """
    counters: Mapping[str, int] = snapshot.get("counters", {}) or {}
    rows = [
        ("faults injected", "resilience.faults_injected"),
        ("retries", "resilience.retries"),
        ("give-ups", "resilience.giveups"),
        ("backoff ms", "resilience.backoff_ms"),
        ("worker crashes", "resilience.worker_crashes"),
        ("batches recovered", "resilience.batches_recovered"),
        ("pairs quarantined", "resilience.pairs_quarantined"),
        ("commit failures", "resilience.commit_failures"),
        ("source failures", "resilience.source_failures"),
        ("degraded refreshes", "resilience.degraded_refreshes"),
        ("stale served", "resilience.stale_served"),
        ("salvages", "resilience.salvages"),
    ]
    present = [
        (label, counters[name]) for label, name in rows if counters.get(name)
    ]
    if not present:
        return ""
    width = max(len(label) for label, _ in present)
    lines = ["resilience (fault handling):"]
    for label, value in present:
        lines.append(f"  {label:<{width}}  {value}")
    return "\n".join(lines)


def _jsonable(attributes: Mapping[str, Any]) -> Dict[str, Any]:
    """Coerce attribute values to JSON-safe types (repr as last resort)."""
    out: Dict[str, Any] = {}
    for key, value in attributes.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out

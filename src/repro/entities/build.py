"""Build a persisted entity store from an identity graph.

One transactional pass turns a resolved :class:`IdentityGraph` into a
durable artifact the serving layer can answer ``/resolve`` from with no
sources loaded:

- the source-side vocabulary (``MatchStore.set_sides``) and every
  extended tuple, per source, indexed by extended key,
- one :class:`~repro.store.entity.EntityRecord` per cluster (golden
  record, member identities, deterministic canonical id),
- the ``entity_resolution_log``: a journaled ``golden`` event per
  entity, a ``decision`` event per survivorship pick, and a
  ``violation`` event per generalized-uniqueness breach,
- metadata enough to audit the build offline — source names, schemas
  and key attributes per source, survivorship chain, and a canonical
  fingerprint a reload can be checked against
  (:func:`verify_entity_store`).

Because canonical ids hash member identities and the journal is
append-only, rebuilding from the same sources produces bit-identical
entities — the stability the conformance cell and the store round-trip
tests pin down.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.matching_table import key_values
from repro.entities.errors import EntityBuildError
from repro.entities.golden import GoldenEntity, build_golden
from repro.entities.graph import IdentityGraph
from repro.entities.survivorship import SurvivorshipPolicy
from repro.observability.tracer import NO_OP_TRACER, Tracer
from repro.resilience.faults import (
    NO_OP_INJECTOR,
    SITE_ENTITY_PERSIST,
    FaultInjector,
)
from repro.store.base import MatchStore
from repro.store.codec import encode_key, encode_row, encode_schema, encode_value
from repro.store.entity import ENTITY_ID_PREFIX, EntityRecord, canonical_entity_id

__all__ = [
    "META_ENTITY_SOURCES",
    "META_ENTITY_PREFIX",
    "META_ENTITY_SURVIVORSHIP",
    "META_ENTITY_FINGERPRINT",
    "META_ENTITY_PROGRESS",
    "DECISION_LOGGING",
    "BuildReport",
    "build_entity_store",
    "load_entities",
    "entities_fingerprint",
    "verify_entity_store",
]

META_ENTITY_SOURCES = "entity_sources"
META_ENTITY_PREFIX = "entity_prefix"
META_ENTITY_SURVIVORSHIP = "entity_survivorship"
META_ENTITY_FINGERPRINT = "entity_fingerprint"
META_ENTITY_PROGRESS = "entity_build_progress"
META_ENTITY_SCHEMA = "entity_schema:"  # + source name
META_ENTITY_KEY = "entity_key_attributes:"  # + source name

DECISION_LOGGING = ("all", "contested", "none")
"""How much of the survivorship trail lands in the journal."""


@dataclass(frozen=True)
class BuildReport:
    """What one entity build produced."""

    sources: Tuple[str, ...]
    entities: int
    members: int
    violations: int
    contested: int
    decisions_logged: int
    fingerprint: str
    survivorship: Tuple[str, ...]

    @property
    def is_sound(self) -> bool:
        """True iff the generalized uniqueness constraint held."""
        return self.violations == 0


def entities_fingerprint(records: Sequence[EntityRecord]) -> str:
    """Canonical SHA-256 over entity records, order-independent.

    Hashes the sorted ``(id, ext key, golden row, members)`` quadruples,
    so a build and its reload fingerprint equal iff the persisted
    entities are bit-identical.
    """
    material = json.dumps(
        sorted(
            [
                record.entity_id,
                record.ext_key,
                encode_row(record.golden),
                [[source, encode_key(key)] for source, key in record.members],
            ]
            for record in records
        ),
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _ext_key_text(attributes: Sequence[str], values: Tuple) -> str:
    """Canonical text of one cluster key (same form the store indexes)."""
    return encode_key(tuple(sorted(zip(attributes, values), key=lambda p: p[0])))


def build_entity_store(
    graph: IdentityGraph,
    store: MatchStore,
    *,
    policy: Optional[SurvivorshipPolicy] = None,
    prefix: str = ENTITY_ID_PREFIX,
    log_decisions: str = "all",
    tracer: Optional[Tracer] = None,
    timestamp: Optional[float] = None,
    batch_size: Optional[int] = None,
    fault_injector: Optional[FaultInjector] = None,
    resume: bool = True,
) -> BuildReport:
    """Resolve *graph* and persist everything into *store*, atomically.

    *log_decisions* bounds the resolution log: ``"all"`` journals every
    survivorship pick, ``"contested"`` only the ones sources disagreed
    on, ``"none"`` only the per-entity ``golden`` events.  Violations
    are always journaled.

    With *batch_size* the persist becomes **crash-safe and resumable**:
    entities land in batches of that many, each batch one transaction
    committed atomically with a progress record
    (:data:`META_ENTITY_PROGRESS`), so a build killed mid-way — even
    SIGKILL mid-transaction — leaves either a fully-committed prefix or
    nothing of the torn batch.  Re-running the same build against the
    same store (*resume* = True, the default) verifies the interrupted
    build targeted the same result (the expected fingerprint is
    recorded up front, every golden id is content-addressed), skips the
    committed prefix, and finishes to the **bit-identical**
    ``entities_fingerprint`` a fault-free run seals.  *fault_injector*
    fires the ``entities.persist`` site before every batch commit — the
    chaos harness's hook.  Without *batch_size* the build is the
    original single transaction.
    """
    if log_decisions not in DECISION_LOGGING:
        raise EntityBuildError(
            f"unknown decision-logging mode {log_decisions!r}; "
            f"expected one of {DECISION_LOGGING}"
        )
    if batch_size is not None and batch_size < 1:
        raise EntityBuildError(f"batch_size must be >= 1, got {batch_size}")
    policy = policy if policy is not None else SurvivorshipPolicy()
    tracer = tracer if tracer is not None else NO_OP_TRACER
    injector = fault_injector if fault_injector is not None else NO_OP_INJECTOR
    now = timestamp if timestamp is not None else time.time()

    names = graph.source_names
    extended = graph.extended()
    key_attrs = list(graph.extended_key.attributes)
    attribute_order: List[str] = []
    for relation in extended.values():
        for attr in relation.schema.names:
            if attr not in attribute_order:
                attribute_order.append(attr)
    source_keys: Dict[str, Tuple[str, ...]] = {
        name: graph.source_key_attributes(name) for name in names
    }

    with tracer.span("entities.build", sources=len(names)):
        clusters = graph.clusters()
        goldens: List[GoldenEntity] = [
            build_golden(
                cluster,
                attribute_order=attribute_order,
                source_key_attributes=source_keys,
                policy=policy,
                prefix=prefix,
            )
            for cluster in clusters
        ]
        report = graph.verify()

        # The whole result is computable before anything is persisted —
        # golden ids are content-addressed and the journal is derived —
        # which is what makes batched resume trivially bit-identical:
        # the expected fingerprint is known up front and every batch is
        # a pure slice of this list.
        records: List[EntityRecord] = [
            golden.to_record(_ext_key_text(key_attrs, golden.key))
            for golden in goldens
        ]
        fingerprint = entities_fingerprint(records)
        contested = sum(
            1
            for golden in goldens
            for decision in golden.decisions
            if decision.contested
        )
        logged = 0

        def persist_setup() -> None:
            store.set_sides(names)
            store.set_extended_key_attributes(tuple(key_attrs))
            store.set_meta(META_ENTITY_SOURCES, json.dumps(list(names)))
            store.set_meta(META_ENTITY_PREFIX, prefix)
            store.set_meta(
                META_ENTITY_SURVIVORSHIP, json.dumps(list(policy.rule_names))
            )
            for name in names:
                store.set_meta(
                    META_ENTITY_SCHEMA + name,
                    encode_schema(extended[name].schema),
                )
                store.set_meta(
                    META_ENTITY_KEY + name, json.dumps(list(source_keys[name]))
                )
                for raw, ext_row in zip(graph.sources[name], extended[name]):
                    store.put_row(
                        name, key_values(ext_row, source_keys[name]), raw, ext_row
                    )

        def persist_entity(golden: GoldenEntity, record: EntityRecord) -> int:
            store.record_entity(
                record,
                rule=",".join(policy.rule_names),
                payload={"key": record.ext_key},
                timestamp=now,
            )
            count = 0
            for decision in golden.decisions:
                if log_decisions == "none" or decision.source is None:
                    continue
                if log_decisions == "contested" and not decision.contested:
                    continue
                store.record_entity_decision(
                    golden.entity_id,
                    rule=decision.rule,
                    payload={
                        "event": "decision",
                        "attribute": decision.attribute,
                        "value": encode_value(decision.value),
                        "source": decision.source,
                        "contested": decision.contested,
                        "considered": [
                            [source, encode_value(value)]
                            for source, value in decision.considered
                        ],
                    },
                    timestamp=now,
                )
                count += 1
            return count

        def count_logged(golden: GoldenEntity) -> int:
            return sum(
                1
                for decision in golden.decisions
                if decision.source is not None
                and log_decisions != "none"
                and (log_decisions != "contested" or decision.contested)
            )

        def persist_violations() -> None:
            ext_text_to_id = {record.ext_key: record.entity_id for record in records}
            for violation in report.violations:
                ext_text = _ext_key_text(key_attrs, violation.key)
                entity_id = ext_text_to_id.get(
                    ext_text,
                    # No cluster spans ≥2 sources here: mint a stable id
                    # from the offending members so the log still has a
                    # durable handle for the breach.
                    canonical_entity_id(
                        [(violation.source, key) for key in violation.members],
                        prefix=prefix,
                    ),
                )
                store.record_entity_decision(
                    entity_id,
                    rule="uniqueness",
                    payload={
                        "event": "violation",
                        "source": violation.source,
                        "count": len(violation.members),
                        "key": ext_text,
                        "members": [encode_key(key) for key in violation.members],
                    },
                    timestamp=now,
                )

        if batch_size is None:
            injector.fire(SITE_ENTITY_PERSIST)
            with store.transaction():
                persist_setup()
                for golden, record in zip(goldens, records):
                    logged += persist_entity(golden, record)
                persist_violations()
                store.set_meta(META_ENTITY_FINGERPRINT, fingerprint)
        else:
            logged = _persist_batched(
                store,
                goldens,
                records,
                fingerprint=fingerprint,
                batch_size=batch_size,
                resume=resume,
                persist_setup=persist_setup,
                persist_entity=persist_entity,
                persist_violations=persist_violations,
                count_logged=count_logged,
                injector=injector,
                tracer=tracer,
            )

    if tracer.enabled:
        tracer.metrics.inc("entities.golden_built", len(records))
        tracer.metrics.inc("entities.decisions_logged", logged)
        if contested:
            tracer.metrics.inc("entities.contested", contested)

    return BuildReport(
        sources=names,
        entities=len(records),
        members=sum(len(record.members) for record in records),
        violations=len(report.violations),
        contested=contested,
        decisions_logged=logged,
        fingerprint=fingerprint,
        survivorship=policy.rule_names,
    )


def _persist_batched(
    store: MatchStore,
    goldens: Sequence[GoldenEntity],
    records: Sequence[EntityRecord],
    *,
    fingerprint: str,
    batch_size: int,
    resume: bool,
    persist_setup,
    persist_entity,
    persist_violations,
    count_logged,
    injector: FaultInjector,
    tracer: Tracer,
) -> int:
    """Crash-safe batched persist; returns the decisions-logged count.

    Invariant: every transaction that lands a batch of entities also
    lands the progress record saying so, so after *any* interruption the
    store holds exactly the entities of batches ``[0, next)`` and
    nothing of a torn one — the property that makes resume reach the
    bit-identical fingerprint (``tests/entities/test_resume.py``).
    """
    total = len(records)
    start = 0
    progress_text = store.get_meta(META_ENTITY_PROGRESS, "") or ""
    if progress_text:
        state = json.loads(progress_text)
        if not resume:
            raise EntityBuildError(
                "an interrupted entity build is in progress "
                f"({state.get('next', 0)}/{state.get('total', '?')} batches "
                "committed); pass resume=True to finish it"
            )
        if state.get("fingerprint") != fingerprint:
            raise EntityBuildError(
                "the interrupted build in this store targeted a different "
                f"result (sealed-ahead fingerprint "
                f"{str(state.get('fingerprint'))[:16]}…, this build "
                f"{fingerprint[:16]}…); rebuild into a fresh store"
            )
        start = int(state.get("next", 0))
        if tracer.enabled:
            tracer.metrics.inc("entities.build_resumes")

    def progress(next_index: int) -> str:
        return json.dumps(
            {"fingerprint": fingerprint, "next": next_index, "total": total},
            separators=(",", ":"),
        )

    if not progress_text:
        injector.fire(SITE_ENTITY_PERSIST)
        with store.transaction():
            persist_setup()
            # Unsealed while building: verify refuses the store until
            # the final batch reseals it.
            store.set_meta(META_ENTITY_FINGERPRINT, "")
            store.set_meta(META_ENTITY_PROGRESS, progress(0))

    # The interrupted run already journaled the committed prefix's
    # decisions; count them (don't re-write) so the report describes
    # the complete build either way.
    logged = sum(count_logged(golden) for golden in goldens[:start])

    for lo in range(start, total, batch_size):
        hi = min(lo + batch_size, total)
        injector.fire(SITE_ENTITY_PERSIST)
        with store.transaction():
            for golden, record in zip(goldens[lo:hi], records[lo:hi]):
                logged += persist_entity(golden, record)
            store.set_meta(META_ENTITY_PROGRESS, progress(hi))

    injector.fire(SITE_ENTITY_PERSIST)
    with store.transaction():
        persist_violations()
        store.set_meta(META_ENTITY_FINGERPRINT, fingerprint)
        store.set_meta(META_ENTITY_PROGRESS, "")
    return logged


def load_entities(store: MatchStore) -> List[EntityRecord]:
    """All persisted canonical entities, in entity-id order."""
    return list(store.entity_items())


def verify_entity_store(store: MatchStore) -> Tuple[int, str]:
    """Audit a persisted entity build: recompute and check its fingerprint.

    Returns ``(entity_count, fingerprint)`` on success; raises
    :class:`EntityBuildError` when the store carries no build or the
    stored entities no longer hash to the fingerprint sealed at build
    time — the entity-layer analogue of ``verify_journal``.
    """
    progress = store.get_meta(META_ENTITY_PROGRESS, "") or ""
    if progress:
        state = json.loads(progress)
        raise EntityBuildError(
            "the store carries an interrupted entity build "
            f"({state.get('next', 0)}/{state.get('total', '?')} entities "
            "committed); re-run the build to finish it before verifying"
        )
    sealed = store.get_meta(META_ENTITY_FINGERPRINT)
    if not sealed:
        raise EntityBuildError(
            "the store carries no entity build (no sealed fingerprint)"
        )
    records = load_entities(store)
    actual = entities_fingerprint(records)
    if actual != sealed:
        raise EntityBuildError(
            "persisted entities do not match the build fingerprint: "
            f"sealed {sealed[:16]}…, recomputed {actual[:16]}…"
        )
    return len(records), actual

"""Golden entities: one canonical record per resolved cluster.

Where ``MultiwayIdentifier.integrate`` flattens clusters into one wide
relation, a :class:`GoldenEntity` keeps the entity as a first-class
object: the deterministic canonical id, the survivorship-merged record,
the member identities, and — crucially — every per-attribute
:class:`~repro.entities.survivorship.Decision` that produced the record,
so the persisted resolution log can explain each golden value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.core.matching_table import key_values
from repro.core.multiway import EntityCluster
from repro.entities.survivorship import Candidate, Decision, SurvivorshipPolicy
from repro.relational.nulls import NULL, is_null
from repro.relational.row import Row
from repro.store.codec import KeyValues
from repro.store.entity import (
    ENTITY_ID_PREFIX,
    EntityRecord,
    canonical_entity_id,
)

__all__ = ["GoldenEntity", "build_golden"]


@dataclass(frozen=True)
class GoldenEntity:
    """One resolved entity: cluster + canonical record + provenance."""

    entity_id: str
    key: Tuple[Any, ...]
    cluster: EntityCluster
    record: Row
    members: Tuple[Tuple[str, KeyValues], ...]
    decisions: Tuple[Decision, ...]

    @property
    def sources(self) -> Tuple[str, ...]:
        """Source names contributing a member, in member order."""
        return tuple(source for source, _ in self.members)

    def contested_decisions(self) -> Tuple[Decision, ...]:
        """The decisions where sources disagreed."""
        return tuple(d for d in self.decisions if d.contested)

    def to_record(self, ext_key: str) -> EntityRecord:
        """The storage form (:class:`~repro.store.entity.EntityRecord`)."""
        return EntityRecord(
            entity_id=self.entity_id,
            ext_key=ext_key,
            golden=self.record,
            members=self.members,
        )


def build_golden(
    cluster: EntityCluster,
    *,
    attribute_order: Sequence[str],
    source_key_attributes: Mapping[str, Tuple[str, ...]],
    policy: SurvivorshipPolicy,
    prefix: str = ENTITY_ID_PREFIX,
) -> GoldenEntity:
    """Merge one cluster into its golden entity.

    *attribute_order* fixes the record's attribute layout (the union of
    the extended schemas in declaration order); *source_key_attributes*
    maps each source to its primary-key attributes so member identities
    — and through them the canonical entity id — are key-based, not
    row-content-based.
    """
    members = tuple(
        (source, key_values(row, source_key_attributes[source]))
        for source, row in cluster.members
    )
    entity_id = canonical_entity_id(members, prefix=prefix)

    candidates_by_attr: Dict[str, List[Candidate]] = {}
    for (source, row), (_, member_key) in zip(cluster.members, members):
        for attr in row:
            value = row[attr]
            if is_null(value):
                continue
            candidates_by_attr.setdefault(attr, []).append(
                Candidate(source=source, key=member_key, value=value, row=row)
            )

    decisions: List[Decision] = []
    values: Dict[str, Any] = {}
    for attr in attribute_order:
        decision = policy.decide(attr, candidates_by_attr.get(attr, []))
        decisions.append(decision)
        values[attr] = decision.value if decision.source is not None else NULL

    return GoldenEntity(
        entity_id=entity_id,
        key=cluster.key,
        cluster=cluster,
        record=Row(values),
        members=members,
        decisions=tuple(decisions),
    )

"""``repro.entities`` — N-way resolution: identity graph + golden records.

The paper's machinery is pairwise (one MT_RS per R,S); real
integrations have N sources.  This package generalizes the platform:

- :class:`~repro.entities.graph.IdentityGraph` — pairwise
  identification across all N·(N−1)/2 source pairs (reusing blockers,
  executors, and the pairwise pipeline), closed transitively by
  union-find into entity clusters that are **bit-identical** to
  :class:`~repro.core.multiway.MultiwayIdentifier`'s (the
  ``entities-graph`` conformance cell proves it), with the generalized
  uniqueness constraint (≤ 1 tuple per source per cluster) verified via
  structured reports,
- **survivorship** (:mod:`repro.entities.survivorship`) — a pluggable,
  fully attributed first-rule-wins chain (source priority,
  most-complete, longest, newest) deciding every golden value,
- **golden entities** (:mod:`repro.entities.golden`) — canonical
  records with deterministic prefixed ids stable across runs and
  resumes,
- **persistence** (:mod:`repro.entities.build`) — one transactional
  build into any :class:`~repro.store.MatchStore`, journaling a
  per-decision ``entity_resolution_log`` the serving layer returns as
  ``/resolve`` provenance, sealed with a fingerprint reloads are
  audited against.
"""

from __future__ import annotations

from repro.entities.build import (
    DECISION_LOGGING,
    META_ENTITY_FINGERPRINT,
    META_ENTITY_PREFIX,
    META_ENTITY_SOURCES,
    META_ENTITY_SURVIVORSHIP,
    BuildReport,
    build_entity_store,
    entities_fingerprint,
    load_entities,
    verify_entity_store,
)
from repro.entities.errors import (
    EntitiesError,
    EntityBuildError,
    GraphError,
    SurvivorshipError,
)
from repro.entities.golden import GoldenEntity, build_golden
from repro.entities.graph import (
    GraphSoundnessReport,
    IdentityGraph,
    UniquenessViolation,
    cluster_fingerprint,
)
from repro.entities.survivorship import (
    SURVIVORSHIP_RULES,
    Candidate,
    Decision,
    LongestValueRule,
    MostCompleteRule,
    NewestValueRule,
    SourcePriorityRule,
    SurvivorshipPolicy,
    SurvivorshipRule,
    make_survivorship,
)
from repro.observability.metrics import register_metric

__all__ = [
    "BuildReport",
    "Candidate",
    "DECISION_LOGGING",
    "Decision",
    "EntitiesError",
    "EntityBuildError",
    "GoldenEntity",
    "GraphError",
    "GraphSoundnessReport",
    "IdentityGraph",
    "LongestValueRule",
    "META_ENTITY_FINGERPRINT",
    "META_ENTITY_PREFIX",
    "META_ENTITY_SOURCES",
    "META_ENTITY_SURVIVORSHIP",
    "MostCompleteRule",
    "NewestValueRule",
    "SURVIVORSHIP_RULES",
    "SourcePriorityRule",
    "SurvivorshipError",
    "SurvivorshipPolicy",
    "SurvivorshipRule",
    "UniquenessViolation",
    "build_entity_store",
    "build_golden",
    "cluster_fingerprint",
    "entities_fingerprint",
    "load_entities",
    "make_survivorship",
    "verify_entity_store",
]

for _name, _description in (
    ("entities.sources", "sources declared to identity graphs"),
    ("entities.pairwise_runs", "pairwise identification runs executed by graphs"),
    ("entities.clusters", "entity clusters produced by transitive closure"),
    ("entities.members", "member tuples across all produced clusters"),
    ("entities.violations", "generalized uniqueness violations detected"),
    ("entities.golden_built", "golden entity records built and persisted"),
    ("entities.decisions_logged", "survivorship decisions journaled"),
    ("entities.contested", "survivorship decisions where sources disagreed"),
    ("entities.build_resumes", "interrupted entity builds resumed to completion"),
):
    register_metric(_name, _description)
del _name, _description

"""The identity graph: N-way resolution built from pairwise runs.

:class:`~repro.core.multiway.MultiwayIdentifier` resolves N sources in
one pass by grouping on complete extended-key values — correct, but a
single monolithic computation that cannot reuse the pairwise machinery
(blockers, parallel executors, per-pair soundness) the rest of the
platform is built on.  :class:`IdentityGraph` takes the composition
route the paper's transitivity argument licenses:

1. run full pairwise identification
   (:class:`~repro.core.identifier.EntityIdentifier`) over every one of
   the N·(N−1)/2 source pairs,
2. union-find the matched pairs into connected components — because a
   match means *identical, fully non-NULL extended-key values* and
   equality is transitive, components are exactly the equivalence
   classes of the multiway matching relation,
3. render components as :class:`~repro.core.multiway.EntityCluster`
   values in the same deterministic order ``MultiwayIdentifier`` uses,
   so the two constructions are **bit-identical** (the ``entities-graph``
   conformance cell enforces this),
4. verify the generalized uniqueness constraint — ≤ 1 tuple per source
   per cluster — with structured per-source violation reports.

The graph is the substrate golden records (:mod:`repro.entities.golden`)
and the persisted entity store (:mod:`repro.entities.build`) are made
from.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from itertools import combinations
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.blocking.base import Blocker
from repro.core.extended_key import ExtendedKey
from repro.core.identifier import EntityIdentifier, IdentificationResult
from repro.core.matching_table import KeyValues, key_values
from repro.core.multiway import EntityCluster
from repro.entities.errors import GraphError
from repro.ilfd.derivation import DerivationEngine, DerivationPolicy
from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.observability.tracer import NO_OP_TRACER, Tracer
from repro.relational.nulls import is_null
from repro.relational.relation import Relation
from repro.relational.row import Row
from repro.store.codec import encode_row

__all__ = [
    "IdentityGraph",
    "UniquenessViolation",
    "GraphSoundnessReport",
    "cluster_fingerprint",
]


def cluster_fingerprint(clusters: Sequence[EntityCluster]) -> str:
    """Canonical SHA-256 over a cluster list (hex digest).

    Hashes the cluster keys and every member's ``(source, canonical row
    encoding)`` in list order, so two cluster lists fingerprint equal
    iff they are bit-identical — the conformance cell's equality test
    between the graph and ``MultiwayIdentifier``, and between a build
    and its reload.
    """
    material = json.dumps(
        [
            [
                str(cluster.key),
                [[source, encode_row(row)] for source, row in cluster.members],
            ]
            for cluster in clusters
        ],
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class UniquenessViolation:
    """One source modelling one entity more than once.

    The generalized uniqueness constraint says a cluster may contain at
    most one tuple per source; this names the offending source, the
    shared extended-key values, and the primary keys of every offending
    tuple.
    """

    source: str
    key: Tuple[Any, ...]
    members: Tuple[KeyValues, ...]


@dataclass(frozen=True)
class GraphSoundnessReport:
    """Structured verdict of the generalized uniqueness check."""

    violations: Tuple[UniquenessViolation, ...]

    @property
    def is_sound(self) -> bool:
        """True iff no source has two tuples sharing complete K_Ext values."""
        return not self.violations

    def by_source(self) -> Mapping[str, Tuple[UniquenessViolation, ...]]:
        """Violations grouped per source (only offending sources appear)."""
        grouped: Dict[str, List[UniquenessViolation]] = {}
        for violation in self.violations:
            grouped.setdefault(violation.source, []).append(violation)
        return {source: tuple(items) for source, items in grouped.items()}

    def raise_if_unsound(self) -> None:
        """Raise :class:`GraphError` when the check failed."""
        if not self.is_sound:
            detail = "; ".join(
                f"{v.source} models {v.key!r} {len(v.members)} times"
                for v in self.violations[:5]
            )
            raise GraphError(
                f"generalized uniqueness constraint violated: {detail}"
            )


class _UnionFind:
    """Plain union-find with path compression and union by size."""

    def __init__(self) -> None:
        self._parent: Dict[Any, Any] = {}
        self._size: Dict[Any, int] = {}

    def add(self, node: Any) -> None:
        if node not in self._parent:
            self._parent[node] = node
            self._size[node] = 1

    def find(self, node: Any) -> Any:
        root = node
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[node] != root:
            self._parent[node], node = root, self._parent[node]
        return root

    def union(self, left: Any, right: Any) -> None:
        left, right = self.find(left), self.find(right)
        if left == right:
            return
        if self._size[left] < self._size[right]:
            left, right = right, left
        self._parent[right] = left
        self._size[left] += self._size[right]

    def components(self) -> Dict[Any, List[Any]]:
        """Root → members, members in insertion order."""
        out: Dict[Any, List[Any]] = {}
        for node in self._parent:
            out.setdefault(self.find(node), []).append(node)
        return out


class IdentityGraph:
    """N-way entity resolution by pairwise identification + closure.

    Parameters
    ----------
    sources:
        Mapping of source name → relation (unified namespace, ≥2
        entries).  Declaration order is the deterministic source
        priority used for cluster member order and survivorship.
    extended_key / ilfds / policy:
        As for :class:`~repro.core.identifier.EntityIdentifier`.
    blocker_factory:
        Optional zero-argument callable returning a fresh
        :class:`~repro.blocking.Blocker` for each pairwise run (a
        factory, because one blocker instance must not be shared across
        concurrent runs).  ``None`` keeps the exact default paths.
    workers:
        Worker count forwarded to every pairwise run.
    tracer:
        Optional tracer; the graph emits ``entities.*`` spans and
        metrics and threads the tracer through every pairwise pipeline.
    """

    def __init__(
        self,
        sources: Mapping[str, Relation],
        extended_key: "ExtendedKey | Sequence[str]",
        *,
        ilfds: "ILFDSet | Iterable[ILFD]" = (),
        policy: DerivationPolicy = DerivationPolicy.FIRST_MATCH,
        blocker_factory: Optional[Callable[[], Optional[Blocker]]] = None,
        workers: int = 1,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if len(sources) < 2:
            raise GraphError("an identity graph needs at least two sources")
        if not isinstance(extended_key, ExtendedKey):
            extended_key = ExtendedKey(list(extended_key))
        self._sources: Dict[str, Relation] = dict(sources)
        self._names: Tuple[str, ...] = tuple(self._sources)
        self._key = extended_key
        self._ilfds = ilfds if isinstance(ilfds, ILFDSet) else ILFDSet(ilfds)
        self._policy = policy
        self._blocker_factory = blocker_factory
        self._workers = workers
        self._tracer = tracer if tracer is not None else NO_OP_TRACER
        self._engine = DerivationEngine(
            self._ilfds, policy=policy, tracer=self._tracer
        )
        self._extended: Optional[Dict[str, Relation]] = None
        self._identifiers: Dict[Tuple[str, str], EntityIdentifier] = {}
        self._results: Dict[Tuple[str, str], IdentificationResult] = {}
        self._clusters: Optional[List[EntityCluster]] = None
        if self._tracer.enabled:
            self._tracer.metrics.inc("entities.sources", len(self._sources))

    # ------------------------------------------------------------------
    @property
    def source_names(self) -> Tuple[str, ...]:
        """Source names in declaration order."""
        return self._names

    @property
    def extended_key(self) -> ExtendedKey:
        """The extended key in use."""
        return self._key

    @property
    def sources(self) -> Mapping[str, Relation]:
        """The source relations, by name."""
        return dict(self._sources)

    def source_key_attributes(self, name: str) -> Tuple[str, ...]:
        """*name*'s primary-key attributes, in schema order."""
        self._check_source(name)
        schema = self._sources[name].schema
        key = schema.primary_key
        return tuple(n for n in schema.names if n in key)

    def _check_source(self, name: str) -> None:
        if name not in self._sources:
            raise GraphError(
                f"unknown source {name!r}; expected one of {self._names}"
            )

    def extended(self) -> Dict[str, Relation]:
        """Every source extended with derived K_Ext values (computed once)."""
        if self._extended is None:
            targets = list(self._key.attributes)
            with self._tracer.span("entities.extend", sources=len(self._sources)):
                self._extended = {
                    name: self._engine.extend_relation(relation, targets)
                    for name, relation in self._sources.items()
                }
        return self._extended

    # ------------------------------------------------------------------
    # Pairwise layer
    # ------------------------------------------------------------------
    def pair_names(self) -> List[Tuple[str, str]]:
        """All source pairs, in declaration order."""
        return list(combinations(self._names, 2))

    def pair_identifier(self, first: str, second: str) -> EntityIdentifier:
        """The (cached) pairwise pipeline for one source pair."""
        self._check_source(first)
        self._check_source(second)
        if first == second:
            raise GraphError(f"a source pair needs two distinct sources, got {first!r}")
        if (second, first) in self._identifiers:
            first, second = second, first
        pair = (first, second)
        if pair not in self._identifiers:
            blocker = self._blocker_factory() if self._blocker_factory else None
            self._identifiers[pair] = EntityIdentifier(
                self._sources[first],
                self._sources[second],
                self._key,
                ilfds=self._ilfds,
                policy=self._policy,
                tracer=self._tracer,
                blocker=blocker,
                workers=self._workers,
            )
        return self._identifiers[pair]

    def pair_result(self, first: str, second: str) -> IdentificationResult:
        """The (cached) pairwise identification result for one pair."""
        identifier = self.pair_identifier(first, second)
        if (second, first) in self._results:
            first, second = second, first
        pair = (first, second)
        if pair not in self._results:
            with self._tracer.span("entities.pairwise", first=first, second=second):
                self._results[pair] = identifier.run()
            if self._tracer.enabled:
                self._tracer.metrics.inc("entities.pairwise_runs")
        return self._results[pair]

    def pairwise_pairs(
        self, first: str, second: str
    ) -> FrozenSet[Tuple[KeyValues, KeyValues]]:
        """The (first, second) matches as EntityIdentifier-format pairs.

        The pairwise *projection* of the graph — by construction equal
        to what a fresh ``EntityIdentifier`` run over the two sources
        produces, and to ``MultiwayIdentifier.pairwise_pairs``.
        """
        result = self.pair_result(first, second)
        return frozenset(
            (entry.r_key, entry.s_key) for entry in result.matching
        )

    # ------------------------------------------------------------------
    # Closure layer
    # ------------------------------------------------------------------
    def clusters(self) -> List[EntityCluster]:
        """Entity clusters: transitive closure of all pairwise matches.

        Returned in the same deterministic order as
        :meth:`MultiwayIdentifier.clusters` — sorted by the string form
        of the shared extended-key values, members in (source
        declaration, row) order — so the two are comparable entry by
        entry.
        """
        if self._clusters is not None:
            return self._clusters

        extended = self.extended()
        key_attrs = list(self._key.attributes)
        # Node = (source declaration index, row index): cheap, hashable,
        # and its natural sort order IS the deterministic member order.
        uf = _UnionFind()
        index_of: Dict[Tuple[str, KeyValues], Tuple[int, int]] = {}
        rows: Dict[Tuple[int, int], Row] = {}
        for s_idx, name in enumerate(self._names):
            s_key_attrs = self.source_key_attributes(name)
            for r_idx, row in enumerate(extended[name]):
                values = row.values_for(key_attrs)
                if any(is_null(v) for v in values):
                    continue
                node = (s_idx, r_idx)
                uf.add(node)
                rows[node] = row
                index_of[(name, key_values(row, s_key_attrs))] = node

        with self._tracer.span("entities.closure", pairs=len(self.pair_names())):
            for first, second in self.pair_names():
                for r_key, s_key in self.pairwise_pairs(first, second):
                    left = index_of.get((first, r_key))
                    right = index_of.get((second, s_key))
                    if left is None or right is None:
                        # A matched tuple the extended relations do not
                        # carry would mean the pairwise run and the graph
                        # disagree about the sources — never expected.
                        raise GraphError(
                            f"match ({first}:{r_key!r}, {second}:{s_key!r}) "
                            "references a tuple with no graph node"
                        )
                    uf.union(left, right)

            clusters: List[EntityCluster] = []
            for members in uf.components().values():
                ordered = sorted(members)
                if len({s_idx for s_idx, _ in ordered}) < 2:
                    continue  # single-source groups are not matched entities
                member_rows = tuple(
                    (self._names[s_idx], rows[(s_idx, r_idx)])
                    for s_idx, r_idx in ordered
                )
                key = member_rows[0][1].values_for(key_attrs)
                clusters.append(EntityCluster(key, member_rows))
            clusters.sort(key=lambda cluster: str(cluster.key))

        self._clusters = clusters
        if self._tracer.enabled:
            self._tracer.metrics.inc("entities.clusters", len(clusters))
            self._tracer.metrics.inc(
                "entities.members", sum(len(c) for c in clusters)
            )
        return clusters

    def verify(self) -> GraphSoundnessReport:
        """The generalized uniqueness constraint, structured per source.

        Checked over the extended sources directly (not just the
        clusters), so a source modelling an entity twice is reported
        even when no other source shares the key — the same semantics
        as ``MultiwayIdentifier.verify``.
        """
        key_attrs = list(self._key.attributes)
        violations: List[UniquenessViolation] = []
        with self._tracer.span("entities.verify"):
            for name in self._names:
                s_key_attrs = self.source_key_attributes(name)
                groups: Dict[Tuple[Any, ...], List[KeyValues]] = {}
                for row in self.extended()[name]:
                    values = row.values_for(key_attrs)
                    if any(is_null(v) for v in values):
                        continue
                    groups.setdefault(values, []).append(
                        key_values(row, s_key_attrs)
                    )
                for values, members in groups.items():
                    if len(members) > 1:
                        violations.append(
                            UniquenessViolation(name, values, tuple(members))
                        )
        if self._tracer.enabled and violations:
            self._tracer.metrics.inc("entities.violations", len(violations))
        return GraphSoundnessReport(tuple(violations))

    def fingerprint(self) -> str:
        """Canonical fingerprint of this graph's clusters."""
        return cluster_fingerprint(self.clusters())

"""Survivorship: which value makes it into the golden record.

A cluster's members may disagree on a non-key attribute; survivorship
is the deterministic policy that picks the surviving value and — just
as importantly — *records why*.  Following the logic-based merge
framing of Bienvenu et al. (PAPERS.md), every pick is attributed to a
named rule and journaled in the store's ``entity_resolution_log``, so a
golden value is never an unexplained artifact of dict ordering.

A :class:`SurvivorshipPolicy` is a first-rule-wins chain: each rule may
pick a candidate or abstain (return ``None``), and the first pick wins.
The terminal fallback — first candidate in source declaration order —
is always appended, so a decision is always made and always attributed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.entities.errors import SurvivorshipError
from repro.relational.nulls import NULL, is_null
from repro.relational.row import Row
from repro.store.codec import KeyValues

__all__ = [
    "Candidate",
    "Decision",
    "SurvivorshipRule",
    "SourcePriorityRule",
    "MostCompleteRule",
    "LongestValueRule",
    "NewestValueRule",
    "SurvivorshipPolicy",
    "SURVIVORSHIP_RULES",
    "make_survivorship",
]


@dataclass(frozen=True)
class Candidate:
    """One member's non-NULL value for one attribute.

    Carries the member's full row so rules can judge context (how
    complete the record is, what its timestamp attribute says) without
    the policy having to anticipate every rule's needs.
    """

    source: str
    key: KeyValues
    value: Any
    row: Row

    @property
    def completeness(self) -> int:
        """Number of non-NULL attributes in the member's row."""
        return sum(1 for attr in self.row if not is_null(self.row[attr]))


@dataclass(frozen=True)
class Decision:
    """One survivorship pick, fully attributed.

    ``source`` is ``None`` (and ``value`` NULL) when no member carried a
    value at all; ``contested`` is True when the candidates disagreed —
    the decisions worth auditing first.
    """

    attribute: str
    value: Any
    source: Optional[str]
    rule: str
    considered: Tuple[Tuple[str, Any], ...]
    contested: bool


class SurvivorshipRule(abc.ABC):
    """One link in the first-rule-wins chain."""

    name: str = "rule"

    @abc.abstractmethod
    def pick(
        self, attribute: str, candidates: Sequence[Candidate]
    ) -> Optional[Candidate]:
        """The surviving candidate, or ``None`` to abstain."""


class SourcePriorityRule(SurvivorshipRule):
    """Highest-priority source wins.

    With an explicit *order*, sources listed earlier outrank later ones
    (unlisted sources rank last, in candidate order).  Without one, the
    candidate order itself — source declaration order — is the
    priority, which reproduces ``MultiwayIdentifier.integrate``'s
    first-non-NULL-wins semantics exactly.
    """

    name = "source_priority"

    def __init__(self, order: Sequence[str] = ()) -> None:
        self._order = tuple(order)

    def pick(
        self, attribute: str, candidates: Sequence[Candidate]
    ) -> Optional[Candidate]:
        if not candidates:
            return None
        if not self._order:
            return candidates[0]
        rank = {name: index for index, name in enumerate(self._order)}
        best = min(
            range(len(candidates)),
            key=lambda i: (rank.get(candidates[i].source, len(rank)), i),
        )
        return candidates[best]


class MostCompleteRule(SurvivorshipRule):
    """The value from the most complete member record wins (ties: first)."""

    name = "most_complete"

    def pick(
        self, attribute: str, candidates: Sequence[Candidate]
    ) -> Optional[Candidate]:
        if not candidates:
            return None
        best = max(range(len(candidates)), key=lambda i: (candidates[i].completeness, -i))
        return candidates[best]


class LongestValueRule(SurvivorshipRule):
    """The longest value (by string form) wins (ties: first)."""

    name = "longest"

    def pick(
        self, attribute: str, candidates: Sequence[Candidate]
    ) -> Optional[Candidate]:
        if not candidates:
            return None
        best = max(range(len(candidates)), key=lambda i: (len(str(candidates[i].value)), -i))
        return candidates[best]


class NewestValueRule(SurvivorshipRule):
    """The member with the greatest timestamp attribute wins.

    Abstains when no candidate's row carries a non-NULL value for the
    timestamp attribute (rows without one fall through to the next
    rule), and when two candidates tie for newest, the earlier one in
    source order is picked.
    """

    name = "newest"

    def __init__(self, timestamp_attribute: str) -> None:
        if not timestamp_attribute:
            raise SurvivorshipError("newest needs a timestamp attribute: newest:ATTR")
        self._attr = timestamp_attribute

    def pick(
        self, attribute: str, candidates: Sequence[Candidate]
    ) -> Optional[Candidate]:
        stamped = [
            (index, candidate)
            for index, candidate in enumerate(candidates)
            if self._attr in candidate.row and not is_null(candidate.row[self._attr])
        ]
        if not stamped:
            return None
        best = max(stamped, key=lambda pair: (pair[1].row[self._attr], -pair[0]))
        return best[1]


class SurvivorshipPolicy:
    """A first-rule-wins chain of survivorship rules.

    The terminal fallback (first candidate, attributed as
    ``source_priority``) is implicit, so :meth:`decide` always decides.
    """

    def __init__(self, rules: Sequence[SurvivorshipRule] = ()) -> None:
        self._rules: Tuple[SurvivorshipRule, ...] = tuple(rules) or (
            SourcePriorityRule(),
        )

    @property
    def rules(self) -> Tuple[SurvivorshipRule, ...]:
        """The chain, in evaluation order."""
        return self._rules

    @property
    def rule_names(self) -> Tuple[str, ...]:
        """The chain's rule names, in evaluation order."""
        return tuple(rule.name for rule in self._rules)

    def decide(
        self, attribute: str, candidates: Sequence[Candidate]
    ) -> Decision:
        """Pick the surviving value for one attribute, attributed."""
        considered = tuple(
            (candidate.source, candidate.value) for candidate in candidates
        )
        contested = len({value for _, value in considered}) > 1
        if not candidates:
            return Decision(attribute, NULL, None, "no_candidates", (), False)
        for rule in self._rules:
            picked = rule.pick(attribute, candidates)
            if picked is not None:
                return Decision(
                    attribute, picked.value, picked.source, rule.name,
                    considered, contested,
                )
        picked = candidates[0]
        return Decision(
            attribute, picked.value, picked.source,
            SourcePriorityRule.name, considered, contested,
        )


SURVIVORSHIP_RULES = ("source_priority", "most_complete", "longest", "newest")
"""Rule names :func:`make_survivorship` understands."""


def make_survivorship(spec: str) -> SurvivorshipPolicy:
    """Parse a CLI survivorship spec into a policy.

    The spec is a comma-separated rule chain, first rule wins:
    ``"most_complete,longest"``.  ``newest`` takes its timestamp
    attribute after a colon (``"newest:updated_at"``); ``source_priority``
    optionally takes a ``>``-separated source order
    (``"source_priority:census>tax"``).
    """
    rules: List[SurvivorshipRule] = []
    for part in (p.strip() for p in spec.split(",")):
        if not part:
            continue
        name, _, arg = part.partition(":")
        if name == "source_priority":
            rules.append(
                SourcePriorityRule(
                    tuple(s for s in arg.split(">") if s) if arg else ()
                )
            )
        elif name == "most_complete":
            rules.append(MostCompleteRule())
        elif name == "longest":
            rules.append(LongestValueRule())
        elif name == "newest":
            rules.append(NewestValueRule(arg))
        else:
            raise SurvivorshipError(
                f"unknown survivorship rule {name!r}; "
                f"expected one of {SURVIVORSHIP_RULES}"
            )
    if not rules:
        raise SurvivorshipError(f"empty survivorship spec {spec!r}")
    return SurvivorshipPolicy(rules)

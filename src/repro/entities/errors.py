"""Errors raised by the N-way entity-resolution subsystem."""

from __future__ import annotations

__all__ = [
    "EntitiesError",
    "GraphError",
    "SurvivorshipError",
    "EntityBuildError",
]


class EntitiesError(Exception):
    """Base class for every ``repro.entities`` failure."""


class GraphError(EntitiesError):
    """The identity graph cannot be constructed or queried as asked."""


class SurvivorshipError(EntitiesError):
    """A survivorship spec or rule chain is invalid."""


class EntityBuildError(EntitiesError):
    """Persisting the resolved entities to a store failed."""

"""Command-line entity identification over CSV files.

Usage::

    repro identify R.csv S.csv \\
        --r-key name,street --s-key name,city \\
        --extended-key name,cuisine,speciality \\
        --ilfd "speciality=Mughalai -> cuisine=Indian" \\
        --ilfds-csv speciality_cuisine.csv \\
        --blocker hash --workers 4 \\
        --trace trace.jsonl --metrics \\
        --out integrated.csv

    repro stats trace.jsonl     # aggregate a recorded trace
    repro version               # or: repro --version

    repro checkpoint R.csv S.csv session.sqlite \\
        --r-key name,street --s-key name,city \\
        --extended-key name,cuisine,speciality
    repro resume session.sqlite --insert-r more_rows.csv
    repro explain-pair session.sqlite \\
        --r "name=kabul,street=e_4th_st" --s "name=kabul,city=nyc"

Prints the matching table and the soundness verdict (and, with ``--out``,
writes the merged integrated table).  ILFDs can be given inline
(``"a=x ∧ b=y -> c=z"``, using ``&`` or ``∧`` between conditions) or as a
CSV whose last column is the derived attribute (the Table-8 layout).

``--trace FILE`` records a JSON-lines trace of the run (one span per
pipeline phase, plus a metrics record); ``--metrics`` prints the metrics
summary after the run.  ``repro stats FILE`` renders a recorded trace —
per-phase time totals plus the metrics tables.

``--store sqlite:PATH`` persists the run's tables and derivation journal
durably; ``repro checkpoint`` snapshots an incremental session into one
SQLite file, ``repro resume`` reloads it (verifying the journal) and
applies further deltas, and ``repro explain-pair`` reconstructs the
rule-firing chain behind any persisted pair from the journal alone.

For backward compatibility, invoking without a subcommand (the historical
``repro-identify`` entry point) behaves exactly like ``repro identify``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.blocking import BLOCKERS, make_blocker
from repro.core.identifier import EntityIdentifier
from repro.ilfd.conditions import parse_condition
from repro.ilfd.ilfd import ILFD
from repro.ilfd.tables import ILFDTable
from repro.relational.csvio import read_csv, write_csv
from repro.relational.formatting import format_relation

__all__ = [
    "parse_ilfd",
    "parse_key_spec",
    "build_parser",
    "build_stats_parser",
    "build_checkpoint_parser",
    "build_resume_parser",
    "build_explain_parser",
    "package_version",
    "identify_main",
    "stats_main",
    "checkpoint_main",
    "resume_main",
    "explain_pair_main",
    "main",
]

_SUBCOMMANDS = (
    "identify",
    "stats",
    "version",
    "checkpoint",
    "resume",
    "explain-pair",
)


def package_version() -> str:
    """The installed package version, from importlib metadata.

    Falls back to ``repro.__version__`` when the package is run from a
    source tree without being installed (e.g. ``PYTHONPATH=src``).
    """
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        import repro

        return getattr(repro, "__version__", "unknown")


def parse_ilfd(text: str) -> ILFD:
    """Parse ``"a=x & b=y -> c=z"`` into an ILFD (string values)."""
    if "->" not in text:
        raise ValueError(f"ILFD {text!r} must contain '->'")
    left, _, right = text.partition("->")
    antecedent = [
        parse_condition(part)
        for part in left.replace("∧", "&").split("&")
        if part.strip()
    ]
    consequent = [
        parse_condition(part)
        for part in right.replace("∧", "&").split("&")
        if part.strip()
    ]
    return ILFD(antecedent, consequent)


def _split_key(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def parse_key_spec(text: str):
    """Parse ``"attr=value,attr=value"`` into canonical key values.

    The result is the sorted ``((attr, value), ...)`` tuple form the
    matching tables and the store use as pair keys.  Values stay strings
    (the CSV pipeline's value type).
    """
    pairs = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"key spec {text!r}: {part!r} is not of the form attr=value"
            )
        attr, _, value = part.partition("=")
        pairs.append((attr.strip(), value.strip()))
    if not pairs:
        raise ValueError(f"key spec {text!r} names no attributes")
    return tuple(sorted(pairs))


def build_parser() -> argparse.ArgumentParser:
    """The ``repro identify`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro identify",
        description="Entity identification across two CSV relations "
        "(Lim et al., ICDE 1993).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {package_version()}"
    )
    parser.add_argument("r_csv", help="first source relation (CSV with header)")
    parser.add_argument("s_csv", help="second source relation (CSV with header)")
    parser.add_argument(
        "--r-key", required=True, help="comma-separated key of the first relation"
    )
    parser.add_argument(
        "--s-key", required=True, help="comma-separated key of the second relation"
    )
    parser.add_argument(
        "--extended-key",
        required=True,
        help="comma-separated extended key (unified attribute names)",
    )
    parser.add_argument(
        "--ilfd",
        action="append",
        default=[],
        metavar="RULE",
        help="inline ILFD, e.g. 'speciality=Mughalai -> cuisine=Indian' "
        "(repeatable)",
    )
    parser.add_argument(
        "--ilfds-csv",
        action="append",
        default=[],
        metavar="FILE",
        help="ILFD table CSV: antecedent columns then one derived column "
        "(repeatable)",
    )
    parser.add_argument(
        "--ilfds-file",
        action="append",
        default=[],
        metavar="FILE",
        help="ILFD knowledge-base text file, one 'a=x & b=y -> c=z' rule "
        "per line (repeatable)",
    )
    parser.add_argument(
        "--out",
        help="write the merged integrated table to this CSV",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print the full identification report (pair accounting, "
        "soundness witnesses, homonym candidates, conflicts)",
    )
    parser.add_argument(
        "--suggest-keys",
        action="store_true",
        help="instead of identifying, enumerate candidate extended keys "
        "over the given --extended-key attributes and report which verify",
    )
    parser.add_argument(
        "--mine",
        action="append",
        default=[],
        metavar="FILE",
        help="mine candidate ILFDs from this CSV instance before "
        "identifying; exceptionless candidates join the ILFD set "
        "(repeatable)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress table printouts (exit status still reports soundness)",
    )
    parser.add_argument(
        "--blocker",
        choices=sorted(BLOCKERS),
        help="candidate-pair generation strategy: 'cross' evaluates every "
        "pair (historical semantics), 'hash' buckets on the extended key "
        "(identical matching table, far fewer pairs), 'ilfd' adds "
        "ILFD-antecedent buckets, 'snm' adds a sorted-neighborhood window",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="evaluate candidate pairs in N parallel worker processes "
        "(default 1 = serial; implies --blocker cross unless one is given)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record a JSON-lines trace of the run (spans + metrics) "
        "to FILE; inspect it later with 'repro stats FILE'",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's metrics summary (rule evaluations, ILFD "
        "firings, match/non-match/unknown tallies)",
    )
    parser.add_argument(
        "--store",
        metavar="SPEC",
        help="persist tables and derivation journal: 'sqlite:PATH' (or a "
        "bare *.sqlite/*.db path) for a durable store, 'memory' for an "
        "ephemeral one; inspect later with 'repro explain-pair PATH ...'",
    )
    return parser


def build_stats_parser() -> argparse.ArgumentParser:
    """The ``repro stats`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro stats",
        description="Aggregate a JSON-lines trace recorded with "
        "'repro identify --trace FILE': per-phase time totals, span "
        "tree, and the metrics tables.",
    )
    parser.add_argument("trace_file", help="trace file written by --trace")
    parser.add_argument(
        "--tree",
        action="store_true",
        help="also print the full span tree (every span, nested)",
    )
    return parser


def identify_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro identify``: returns 0 when sound, 2 when the key is unsound."""
    args = build_parser().parse_args(argv)
    r = read_csv(args.r_csv, keys=[_split_key(args.r_key)], name="R")
    s = read_csv(args.s_csv, keys=[_split_key(args.s_key)], name="S")

    ilfds: List[ILFD] = [parse_ilfd(text) for text in args.ilfd]
    for path in args.ilfds_csv:
        table_relation = read_csv(path, enforce_keys=False)
        names = list(table_relation.schema.names)
        table = ILFDTable(names[:-1], names[-1], list(table_relation), name=path)
        ilfds.extend(table.to_ilfds())
    for path in args.ilfds_file:
        from repro.ilfd.io import read_ilfds

        ilfds.extend(read_ilfds(path))
    for path in args.mine:
        from repro.discovery import mine_ilfds

        instance = read_csv(path, enforce_keys=False)
        mined = mine_ilfds(instance, max_antecedent=2, min_support=2)
        accepted = [m.ilfd for m in mined if m.is_exceptionless]
        ilfds.extend(accepted)
        if not args.quiet:
            print(f"mined {len(accepted)} exceptionless ILFD(s) from {path}")

    key_attributes = _split_key(args.extended_key)
    if args.suggest_keys:
        from repro.discovery import suggest_extended_keys

        suggestions = suggest_extended_keys(
            r, s, key_attributes, ilfds=ilfds, include_unsound=True
        )
        sound = [s for s in suggestions if s.is_sound]
        for suggestion in suggestions:
            print(suggestion)
        return 0 if sound else 2

    observing = bool(args.trace or args.metrics)
    tracer = None
    if observing:
        from repro.observability import Tracer

        tracer = Tracer()

    if args.workers < 1:
        print("repro identify: --workers must be >= 1", file=sys.stderr)
        return 1
    store = None
    if args.store:
        from repro.store import StoreError, make_store

        try:
            store = make_store(args.store, tracer=tracer)
        except StoreError as exc:
            print(f"repro identify: {exc}", file=sys.stderr)
            return 1
    blocker = make_blocker(args.blocker) if args.blocker else None
    identifier = EntityIdentifier(
        r,
        s,
        key_attributes,
        ilfds=ilfds,
        tracer=tracer,
        blocker=blocker,
        workers=args.workers,
        store=store,
    )
    if observing:
        from repro.core.errors import CoreError

        # The full pipeline (including the negative table) so the trace
        # carries the complete match/non-match/unknown accounting. An
        # unsound key can make run() raise (matching/negative overlap);
        # fall back to the plain report so the outcome — and the trace
        # recorded so far — still reach the user, with exit status 2.
        try:
            result = identifier.run()
            matching, report = result.matching, result.report
        except CoreError:
            matching = identifier.matching_table()
            report = identifier.verify()
    else:
        matching = identifier.matching_table()
        report = identifier.verify()
    if store is not None:
        # Persist the negative table too — the journal should account for
        # every conclusion the run reached, not just the matches.
        identifier.negative_matching_table()
    if args.report:
        from repro.core.report import identification_report

        print(identification_report(identifier))
    elif not args.quiet:
        print(format_relation(matching.to_relation(), title="matching table"))
        print()
        print(report.message)
    if args.out:
        integrated = identifier.integrate()
        write_csv(integrated.merged_view(), args.out)
        if not args.quiet:
            print(f"integrated table written to {args.out}")
    if tracer is not None:
        if args.metrics:
            from repro.observability import format_metrics

            print()
            print(format_metrics(tracer.metrics.snapshot()))
        if args.trace:
            from repro.observability import write_trace_jsonl

            try:
                records = write_trace_jsonl(tracer, args.trace)
            except OSError as exc:
                print(f"repro identify: cannot write trace: {exc}",
                      file=sys.stderr)
                return 1
            if not args.quiet:
                print(f"trace ({records} records) written to {args.trace}")
    if store is not None:
        counts = store.counts()
        if not args.quiet:
            print(
                f"store: {counts['matches']} match(es), "
                f"{counts['non_matches']} non-match(es), "
                f"{counts['journal']} journal entrie(s) "
                f"persisted via {args.store}"
            )
        store.close()
    return 0 if report.is_sound else 2


def stats_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro stats``: render a recorded JSON-lines trace."""
    from repro.observability import (
        format_span_tree,
        format_trace_summary,
        read_trace_jsonl,
    )

    args = build_stats_parser().parse_args(argv)
    try:
        spans, metrics = read_trace_jsonl(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"repro stats: {exc}", file=sys.stderr)
        return 1
    print(format_trace_summary(spans, metrics))
    if args.tree:
        print()
        print(format_span_tree(spans))
    return 0


def build_checkpoint_parser() -> argparse.ArgumentParser:
    """The ``repro checkpoint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro checkpoint",
        description="Load two CSV relations into an incremental "
        "identification session and snapshot it — sources, matching "
        "table, derivation journal, and delta cursor — into one SQLite "
        "checkpoint that 'repro resume' can continue from.",
    )
    parser.add_argument("r_csv", help="first source relation (CSV with header)")
    parser.add_argument("s_csv", help="second source relation (CSV with header)")
    parser.add_argument("checkpoint_file", help="checkpoint to write (SQLite)")
    parser.add_argument(
        "--r-key", required=True, help="comma-separated key of the first relation"
    )
    parser.add_argument(
        "--s-key", required=True, help="comma-separated key of the second relation"
    )
    parser.add_argument(
        "--extended-key",
        required=True,
        help="comma-separated extended key (unified attribute names)",
    )
    parser.add_argument(
        "--ilfd",
        action="append",
        default=[],
        metavar="RULE",
        help="inline ILFD, e.g. 'speciality=Mughalai -> cuisine=Indian' "
        "(repeatable)",
    )
    parser.add_argument(
        "--ilfds-file",
        action="append",
        default=[],
        metavar="FILE",
        help="ILFD knowledge-base text file, one rule per line (repeatable)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary printout"
    )
    return parser


def build_resume_parser() -> argparse.ArgumentParser:
    """The ``repro resume`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro resume",
        description="Reload a checkpoint written by 'repro checkpoint' "
        "(replaying the derivation journal to verify it explains the "
        "stored tables) and continue the session: apply further inserts "
        "and new ILFDs without re-evaluating settled pairs.  Updates "
        "persist into the same checkpoint file.",
    )
    parser.add_argument("checkpoint_file", help="checkpoint written earlier")
    parser.add_argument(
        "--insert-r",
        action="append",
        default=[],
        metavar="FILE",
        help="CSV of new R tuples to insert after resuming (repeatable)",
    )
    parser.add_argument(
        "--insert-s",
        action="append",
        default=[],
        metavar="FILE",
        help="CSV of new S tuples to insert after resuming (repeatable)",
    )
    parser.add_argument(
        "--ilfd",
        action="append",
        default=[],
        metavar="RULE",
        help="new ILFD to supply after resuming (repeatable)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the journal-replay and constraint audit on load",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress table printouts (exit status still reports soundness)",
    )
    return parser


def build_explain_parser() -> argparse.ArgumentParser:
    """The ``repro explain-pair`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro explain-pair",
        description="Reconstruct, from the derivation journal alone, the "
        "rule-firing chain behind one pair persisted in a store or "
        "checkpoint: ILFD derivations, identity/distinctness firings, "
        "assertions, retractions, and the pair's current verdict.",
    )
    parser.add_argument(
        "store_file", help="SQLite store or checkpoint holding the journal"
    )
    parser.add_argument(
        "--r",
        metavar="KEYSPEC",
        help="R tuple key as 'attr=value,attr=value'",
    )
    parser.add_argument(
        "--s",
        metavar="KEYSPEC",
        help="S tuple key as 'attr=value,attr=value'",
    )
    return parser


def _session_from_args(args) -> "object":
    """Build and load the IncrementalIdentifier 'repro checkpoint' snapshots."""
    from repro.federation.incremental import IncrementalIdentifier

    r = read_csv(args.r_csv, keys=[_split_key(args.r_key)], name="R")
    s = read_csv(args.s_csv, keys=[_split_key(args.s_key)], name="S")
    ilfds: List[ILFD] = [parse_ilfd(text) for text in args.ilfd]
    for path in args.ilfds_file:
        from repro.ilfd.io import read_ilfds

        ilfds.extend(read_ilfds(path))
    identifier = IncrementalIdentifier(
        r.schema, s.schema, _split_key(args.extended_key), ilfds=ilfds
    )
    identifier.load(r, s)
    return identifier


def checkpoint_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro checkpoint``: returns 0 on success."""
    args = build_checkpoint_parser().parse_args(argv)
    identifier = _session_from_args(args)
    identifier.checkpoint(args.checkpoint_file)
    if not args.quiet:
        import os

        size = os.path.getsize(args.checkpoint_file)
        print(
            f"checkpoint written to {args.checkpoint_file}: "
            f"{len(identifier.match_pairs())} match(es), "
            f"version {identifier.version}, {size} bytes"
        )
    return 0


def resume_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro resume``: 0 when sound, 1 on a bad checkpoint, 2 unsound."""
    from repro.federation.incremental import IncrementalIdentifier
    from repro.store import StoreError, StoreIntegrityError

    args = build_resume_parser().parse_args(argv)
    try:
        identifier = IncrementalIdentifier.resume(
            args.checkpoint_file, verify=not args.no_verify
        )
    except (StoreError, StoreIntegrityError) as exc:
        print(f"repro resume: {exc}", file=sys.stderr)
        return 1
    resumed_version = identifier.version
    added = 0
    for path in args.insert_r:
        for row in read_csv(path, enforce_keys=False):
            added += len(identifier.insert_r(row).added)
    for path in args.insert_s:
        for row in read_csv(path, enforce_keys=False):
            added += len(identifier.insert_s(row).added)
    if args.ilfd:
        added += len(
            identifier.add_ilfds([parse_ilfd(text) for text in args.ilfd]).added
        )
    report = identifier.verify()
    if not args.quiet:
        print(
            f"resumed {args.checkpoint_file} at version {resumed_version}; "
            f"now version {identifier.version}, "
            f"{len(identifier.match_pairs())} match(es) "
            f"({added} added this session)"
        )
        print()
        print(
            format_relation(
                identifier.matching_table().to_relation(),
                title="matching table",
            )
        )
        print()
        print(report.message)
    identifier.store.close()
    return 0 if report.is_sound else 2


def explain_pair_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro explain-pair``: journal-backed provenance for one pair."""
    import os

    from repro.store import SqliteStore, StoreError, explain_pair

    args = build_explain_parser().parse_args(argv)
    if args.r is None and args.s is None:
        print("repro explain-pair: give --r and/or --s", file=sys.stderr)
        return 1
    try:
        r_key = parse_key_spec(args.r) if args.r else None
        s_key = parse_key_spec(args.s) if args.s else None
    except ValueError as exc:
        print(f"repro explain-pair: {exc}", file=sys.stderr)
        return 1
    if not os.path.exists(args.store_file):
        print(
            f"repro explain-pair: no such store: {args.store_file}",
            file=sys.stderr,
        )
        return 1
    try:
        store = SqliteStore(args.store_file)
    except StoreError as exc:
        print(f"repro explain-pair: {exc}", file=sys.stderr)
        return 1
    try:
        entries = store.journal_entries(r_key=r_key, s_key=s_key)
        print(explain_pair(entries, r_key, s_key))
    finally:
        store.close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: dispatches the subcommands (see ``_SUBCOMMANDS``).

    A first argument that is not a subcommand falls through to
    ``identify`` — the historical ``repro-identify R.csv S.csv ...``
    invocation keeps working unchanged.
    """
    arguments = list(argv) if argv is not None else sys.argv[1:]
    if arguments and arguments[0] in _SUBCOMMANDS:
        command, rest = arguments[0], arguments[1:]
        if command == "version":
            print(f"repro {package_version()}")
            return 0
        if command == "stats":
            return stats_main(rest)
        if command == "checkpoint":
            return checkpoint_main(rest)
        if command == "resume":
            return resume_main(rest)
        if command == "explain-pair":
            return explain_pair_main(rest)
        return identify_main(rest)
    if arguments == ["--version"]:
        print(f"repro {package_version()}")
        return 0
    return identify_main(arguments)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `repro identify ... | head`
        sys.exit(0)

"""Command-line entity identification over CSV files.

Usage::

    repro-identify R.csv S.csv \\
        --r-key name,street --s-key name,city \\
        --extended-key name,cuisine,speciality \\
        --ilfd "speciality=Mughalai -> cuisine=Indian" \\
        --ilfds-csv speciality_cuisine.csv \\
        --out integrated.csv

Prints the matching table and the soundness verdict (and, with ``--out``,
writes the merged integrated table).  ILFDs can be given inline
(``"a=x ∧ b=y -> c=z"``, using ``&`` or ``∧`` between conditions) or as a
CSV whose last column is the derived attribute (the Table-8 layout).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.identifier import EntityIdentifier
from repro.ilfd.conditions import parse_condition
from repro.ilfd.ilfd import ILFD
from repro.ilfd.tables import ILFDTable
from repro.relational.csvio import read_csv, write_csv
from repro.relational.formatting import format_relation


def parse_ilfd(text: str) -> ILFD:
    """Parse ``"a=x & b=y -> c=z"`` into an ILFD (string values)."""
    if "->" not in text:
        raise ValueError(f"ILFD {text!r} must contain '->'")
    left, _, right = text.partition("->")
    antecedent = [
        parse_condition(part)
        for part in left.replace("∧", "&").split("&")
        if part.strip()
    ]
    consequent = [
        parse_condition(part)
        for part in right.replace("∧", "&").split("&")
        if part.strip()
    ]
    return ILFD(antecedent, consequent)


def _split_key(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-identify",
        description="Entity identification across two CSV relations "
        "(Lim et al., ICDE 1993).",
    )
    parser.add_argument("r_csv", help="first source relation (CSV with header)")
    parser.add_argument("s_csv", help="second source relation (CSV with header)")
    parser.add_argument(
        "--r-key", required=True, help="comma-separated key of the first relation"
    )
    parser.add_argument(
        "--s-key", required=True, help="comma-separated key of the second relation"
    )
    parser.add_argument(
        "--extended-key",
        required=True,
        help="comma-separated extended key (unified attribute names)",
    )
    parser.add_argument(
        "--ilfd",
        action="append",
        default=[],
        metavar="RULE",
        help="inline ILFD, e.g. 'speciality=Mughalai -> cuisine=Indian' "
        "(repeatable)",
    )
    parser.add_argument(
        "--ilfds-csv",
        action="append",
        default=[],
        metavar="FILE",
        help="ILFD table CSV: antecedent columns then one derived column "
        "(repeatable)",
    )
    parser.add_argument(
        "--ilfds-file",
        action="append",
        default=[],
        metavar="FILE",
        help="ILFD knowledge-base text file, one 'a=x & b=y -> c=z' rule "
        "per line (repeatable)",
    )
    parser.add_argument(
        "--out",
        help="write the merged integrated table to this CSV",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print the full identification report (pair accounting, "
        "soundness witnesses, homonym candidates, conflicts)",
    )
    parser.add_argument(
        "--suggest-keys",
        action="store_true",
        help="instead of identifying, enumerate candidate extended keys "
        "over the given --extended-key attributes and report which verify",
    )
    parser.add_argument(
        "--mine",
        action="append",
        default=[],
        metavar="FILE",
        help="mine candidate ILFDs from this CSV instance before "
        "identifying; exceptionless candidates join the ILFD set "
        "(repeatable)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress table printouts (exit status still reports soundness)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: returns 0 when sound, 2 when the key is unsound."""
    args = build_parser().parse_args(argv)
    r = read_csv(args.r_csv, keys=[_split_key(args.r_key)], name="R")
    s = read_csv(args.s_csv, keys=[_split_key(args.s_key)], name="S")

    ilfds: List[ILFD] = [parse_ilfd(text) for text in args.ilfd]
    for path in args.ilfds_csv:
        table_relation = read_csv(path, enforce_keys=False)
        names = list(table_relation.schema.names)
        table = ILFDTable(names[:-1], names[-1], list(table_relation), name=path)
        ilfds.extend(table.to_ilfds())
    for path in args.ilfds_file:
        from repro.ilfd.io import read_ilfds

        ilfds.extend(read_ilfds(path))
    for path in args.mine:
        from repro.discovery import mine_ilfds

        instance = read_csv(path, enforce_keys=False)
        mined = mine_ilfds(instance, max_antecedent=2, min_support=2)
        accepted = [m.ilfd for m in mined if m.is_exceptionless]
        ilfds.extend(accepted)
        if not args.quiet:
            print(f"mined {len(accepted)} exceptionless ILFD(s) from {path}")

    key_attributes = _split_key(args.extended_key)
    if args.suggest_keys:
        from repro.discovery import suggest_extended_keys

        suggestions = suggest_extended_keys(
            r, s, key_attributes, ilfds=ilfds, include_unsound=True
        )
        sound = [s for s in suggestions if s.is_sound]
        for suggestion in suggestions:
            print(suggestion)
        return 0 if sound else 2

    identifier = EntityIdentifier(r, s, key_attributes, ilfds=ilfds)
    matching = identifier.matching_table()
    report = identifier.verify()
    if args.report:
        from repro.core.report import identification_report

        print(identification_report(identifier))
    elif not args.quiet:
        print(format_relation(matching.to_relation(), title="matching table"))
        print()
        print(report.message)
    if args.out:
        integrated = identifier.integrate()
        write_csv(integrated.merged_view(), args.out)
        if not args.quiet:
            print(f"integrated table written to {args.out}")
    return 0 if report.is_sound else 2


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `repro-identify ... | head`
        sys.exit(0)

"""Command-line entity identification over CSV files.

Usage::

    repro identify R.csv S.csv \\
        --r-key name,street --s-key name,city \\
        --extended-key name,cuisine,speciality \\
        --ilfd "speciality=Mughalai -> cuisine=Indian" \\
        --ilfds-csv speciality_cuisine.csv \\
        --blocker hash --workers 4 \\
        --trace trace.jsonl --metrics \\
        --out integrated.csv

    repro stats trace.jsonl     # aggregate a recorded trace
    repro version               # or: repro --version

    repro checkpoint R.csv S.csv session.sqlite \\
        --r-key name,street --s-key name,city \\
        --extended-key name,cuisine,speciality
    repro resume session.sqlite --insert-r more_rows.csv
    repro explain-pair session.sqlite \\
        --r "name=kabul,street=e_4th_st" --s "name=kabul,city=nyc"

    repro identify --source R=r.csv --source S=s.csv --source T=t.csv \\
        --key R=name,street --key S=name,city --key T=name,speciality \\
        --extended-key name,cuisine,speciality --on-conflict null \\
        --out integrated.csv                   # N-way multiway identification

    repro entities build entities.sqlite \\
        --source R=r.csv --source S=s.csv --source T=t.csv \\
        --key R=name,street --key S=name,city --key T=name,speciality \\
        --extended-key name,cuisine,speciality \\
        --survivorship source_priority:T>R>S,most_complete
    repro entities show entities.sqlite --entity ent-25d384781b18ecdd
    repro entities export entities.sqlite --out golden.csv
    repro serve entities.sqlite --port 8080    # /resolve answers with the
                                               # golden record + resolution log

    repro conform                              # full conformance run
    repro conform restaurants --matrix strict  # one workload, strict cells
    repro conform --golden tests/conformance/golden --update-golden

    repro scenarios                            # the full adversarial grid
    repro scenarios --grid reduced --json      # CI-sized grid, JSON report
    repro scenarios --baseline tests/scenarios/baselines --update-baseline

    repro identify R.csv S.csv ... --ledger runs.db --profile
    repro report list --ledger runs.db         # the recorded run history
    repro report show 3 --ledger runs.db       # one run's full cost picture
    repro report diff 3 7 --ledger runs.db     # phase/metrics deltas
    repro report prom --ledger runs.db         # Prometheus text exposition
    repro report bench-check --threshold 0.15  # the perf-regression gate

Prints the matching table and the soundness verdict (and, with ``--out``,
writes the merged integrated table).  ILFDs can be given inline
(``"a=x ∧ b=y -> c=z"``, using ``&`` or ``∧`` between conditions) or as a
CSV whose last column is the derived attribute (the Table-8 layout).

``--trace FILE`` records a JSON-lines trace of the run (one span per
pipeline phase, plus a metrics record); ``--metrics`` prints the metrics
summary after the run.  ``repro stats FILE`` renders a recorded trace —
per-phase time totals plus the metrics tables.

``--store sqlite:PATH`` persists the run's tables and derivation journal
durably; ``repro checkpoint`` snapshots an incremental session into one
SQLite file, ``repro resume`` reloads it (verifying the journal) and
applies further deltas, and ``repro explain-pair`` reconstructs the
rule-firing chain behind any persisted pair from the journal alone.

``repro conform`` runs the conformance suite on seeded synthetic
workloads: the differential configuration matrix (every cell must
produce bit-identical canonical tables), the Section-3 oracles, the
metamorphic relations, and — with ``--golden DIR`` — the frozen
golden-corpus drift check (``--update-golden`` re-freezes it).

``repro scenarios`` executes the adversarial scenario matrix: a grid of
labeled workloads varying source count, cluster-size skew, noise,
conflicting ILFDs, schema drift, delta arrival order, and duplicate
density, each cell pushed through the real blocker × identifier ×
entity-graph pipeline with the conformance oracles on and
precision/recall scored against the carried ground truth.  Conflict
cells must surface their seeded ILFD break as a structured
constraint-drift finding; ``--inject-drift`` is the canary proving an
*unexpected* finding fails the run.  With ``--baseline DIR`` the
canonical report is compared against the committed baseline exactly
like the golden corpus (``--update-baseline`` re-freezes).

``--ledger PATH`` appends a structured run report — environment, config,
phase timings, wall/CPU/peak-memory, throughput, the full metrics
snapshot, resilience events — to a durable SQLite run ledger after
``identify``, ``resume``, or ``conform``.  ``--profile`` adds per-span
memory and counter attribution (cheap RSS sampling at span boundaries;
``--profile-alloc`` upgrades to exact ``tracemalloc`` deltas at real
tracing cost).  ``repro report`` reads the ledger back: ``list``,
``show RUN``, ``diff RUN_A RUN_B``, Prometheus text exposition
(``prom``), JSONL metric dumps (``jsonl``), and the CI perf gate
``bench-check``, which exits 1 when a series in BENCH_HISTORY.jsonl
regresses beyond ``--threshold`` against its recorded baseline.

``--retries N`` turns on the fault-tolerance machinery: transient
failures in pair evaluation and store commits are retried with capped
exponential backoff (``--retry-delay`` scales it).  ``--inject-faults
PLAN`` drives the same machinery with deterministic injected faults —
``site:kind@index`` specs joined with ``;`` (e.g.
``executor.batch:crash@0;store.commit:error@1``) or ``random:SEED`` for
a seeded random schedule — for chaos-testing a pipeline end to end.  A
corrupted checkpoint makes ``repro resume`` fail fatally unless
``--salvage`` is given, which recovers what the damaged file still
proves (surviving rows, the verifiable journal prefix) and re-derives
the rest, optionally from fallback sources (``--salvage-r/-s``).

Exit codes, uniform across subcommands:

- **0** — success: the run completed and the result verified sound.
- **1** — degraded or partial: the pipeline finished but something
  needs attention — an unsound extended key, quarantined pairs, a
  stale-served source, or a session rebuilt by ``--salvage``.
- **2** — fatal: bad usage, unreadable input, an unwritable trace, or
  a corrupt checkpoint that was not (or could not be) salvaged.

For backward compatibility, invoking without a subcommand (the historical
``repro-identify`` entry point) behaves exactly like ``repro identify``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.blocking import BLOCKERS, make_blocker
from repro.core.identifier import EntityIdentifier
from repro.ilfd.conditions import parse_condition
from repro.ilfd.ilfd import ILFD
from repro.ilfd.tables import ILFDTable
from repro.relational.csvio import read_csv, write_csv
from repro.relational.formatting import format_relation

__all__ = [
    "parse_ilfd",
    "parse_key_spec",
    "build_parser",
    "build_stats_parser",
    "build_checkpoint_parser",
    "build_resume_parser",
    "build_explain_parser",
    "package_version",
    "build_conform_parser",
    "build_report_parser",
    "build_serve_parser",
    "build_entities_parser",
    "build_chaos_parser",
    "build_scenarios_parser",
    "identify_main",
    "stats_main",
    "checkpoint_main",
    "resume_main",
    "explain_pair_main",
    "conform_main",
    "report_main",
    "serve_main",
    "entities_main",
    "chaos_main",
    "scenarios_main",
    "main",
]

_SUBCOMMANDS = (
    "identify",
    "stats",
    "version",
    "checkpoint",
    "resume",
    "explain-pair",
    "conform",
    "report",
    "serve",
    "entities",
    "chaos",
    "scenarios",
)


def package_version() -> str:
    """The installed package version, from importlib metadata.

    Falls back to ``repro.__version__`` when the package is run from a
    source tree without being installed (e.g. ``PYTHONPATH=src``).
    """
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        import repro

        return getattr(repro, "__version__", "unknown")


def parse_ilfd(text: str) -> ILFD:
    """Parse ``"a=x & b=y -> c=z"`` into an ILFD (string values)."""
    if "->" not in text:
        raise ValueError(f"ILFD {text!r} must contain '->'")
    left, _, right = text.partition("->")
    antecedent = [
        parse_condition(part)
        for part in left.replace("∧", "&").split("&")
        if part.strip()
    ]
    consequent = [
        parse_condition(part)
        for part in right.replace("∧", "&").split("&")
        if part.strip()
    ]
    return ILFD(antecedent, consequent)


def _split_key(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def parse_key_spec(text: str):
    """Parse ``"attr=value,attr=value"`` into canonical key values.

    The result is the sorted ``((attr, value), ...)`` tuple form the
    matching tables and the store use as pair keys.  Values stay strings
    (the CSV pipeline's value type).
    """
    pairs = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"key spec {text!r}: {part!r} is not of the form attr=value"
            )
        attr, _, value = part.partition("=")
        pairs.append((attr.strip(), value.strip()))
    if not pairs:
        raise ValueError(f"key spec {text!r} names no attributes")
    return tuple(sorted(pairs))


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    """The fault-tolerance flags shared by identify/checkpoint/resume."""
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="attempt transient operations (pair batches, store commits, "
        "source loads) up to N times with capped exponential backoff "
        "(default 1 = no retries)",
    )
    parser.add_argument(
        "--retry-delay",
        type=float,
        default=0.01,
        metavar="SECONDS",
        help="base backoff delay between retries (default 0.01; doubles "
        "per attempt, jittered, capped)",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="PLAN",
        help="deterministically inject faults: 'site:kind@index[..last]' "
        "specs joined with ';' (sites: federation.load_source.r/.s, "
        "executor.batch, store.commit, store.checkpoint; kinds: error, "
        "crash, hang), or 'random:SEED' for a seeded random schedule",
    )


def _make_resilience(args, tracer):
    """(RetryPolicy | None, FaultInjector | None) from the shared flags.

    Raises :class:`~repro.resilience.errors.FaultPlanError` on a bad
    ``--inject-faults`` spec and ``ValueError`` on a bad ``--retries``.
    """
    from repro.resilience import FaultInjector, FaultPlan, RetryPolicy

    if args.retries < 1:
        raise ValueError("--retries must be >= 1")
    retry = None
    if args.retries > 1:
        retry = RetryPolicy(
            max_attempts=args.retries,
            base_delay=max(args.retry_delay, 0.0),
            seed=0,
        )
    injector = None
    if args.inject_faults:
        spec = args.inject_faults.strip()
        if spec.startswith("random:"):
            plan = FaultPlan.random(int(spec[len("random:"):] or "0"))
        else:
            plan = FaultPlan.parse(spec)
        if tracer is not None:
            injector = FaultInjector(plan, tracer=tracer)
        else:
            injector = FaultInjector(plan)
    return retry, injector


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """The run-ledger/profiler flags shared by identify/resume/conform."""
    parser.add_argument(
        "--ledger",
        metavar="PATH",
        help="append this run's report (environment, config, phase "
        "timings, memory, throughput, metrics, resilience events) to the "
        "SQLite run ledger at PATH; inspect with 'repro report "
        "list/show/diff --ledger PATH'",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attribute memory (RSS sampled at span boundaries) and "
        "counter deltas to each pipeline phase, and print the profile "
        "tree after the run (<5%% overhead; see BENCH_telemetry.json)",
    )
    parser.add_argument(
        "--profile-alloc",
        action="store_true",
        help="like --profile but with exact Python allocation deltas via "
        "tracemalloc (precise; expect roughly 2x slowdown — never a "
        "default)",
    )


def _profile_mode(args) -> str:
    """The Tracer profile mode the --profile/--profile-alloc flags ask for."""
    from repro.observability import PROFILE_OFF, PROFILE_RSS, PROFILE_TRACEMALLOC

    if getattr(args, "profile_alloc", False):
        return PROFILE_TRACEMALLOC
    if getattr(args, "profile", False):
        return PROFILE_RSS
    return PROFILE_OFF


def _telemetry_config(args, command: str) -> dict:
    """The args worth freezing into a run report's config block."""
    config = {"command": command}
    for name in (
        "blocker",
        "workers",
        "store",
        "retries",
        "retry_delay",
        "inject_faults",
        "matrix",
        "entities",
        "seed",
        "no_verify",
        "salvage",
    ):
        value = getattr(args, name, None)
        if value not in (None, False):
            config[name] = value
    mode = _profile_mode(args)
    if mode != "off":
        config["profile"] = mode
    return config


def _append_run_report(args, command: str, recorder, tracer, outcome) -> int:
    """Finish *recorder* and append the report to ``--ledger``.

    Returns 0 on success (or when no ledger was requested), 2 when the
    ledger cannot be opened or appended — mirroring the unwritable
    ``--trace`` contract.
    """
    if not getattr(args, "ledger", None):
        return 0
    from repro.telemetry import LedgerError, RunLedger

    run_report = recorder.finish(tracer, outcome=outcome)
    try:
        with RunLedger(args.ledger) as ledger:
            run_id = ledger.append(run_report)
    except LedgerError as exc:
        print(f"repro {command}: {exc}", file=sys.stderr)
        return 2
    if not getattr(args, "quiet", False) and not getattr(args, "json", False):
        print(f"run report {run_id} appended to {args.ledger}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro identify`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro identify",
        description="Entity identification across two CSV relations "
        "(Lim et al., ICDE 1993).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {package_version()}"
    )
    parser.add_argument(
        "r_csv", nargs="?", help="first source relation (CSV with header)"
    )
    parser.add_argument(
        "s_csv", nargs="?", help="second source relation (CSV with header)"
    )
    parser.add_argument(
        "--r-key", help="comma-separated key of the first relation"
    )
    parser.add_argument(
        "--s-key", help="comma-separated key of the second relation"
    )
    parser.add_argument(
        "--source",
        action="append",
        default=[],
        metavar="NAME=CSV",
        help="named source relation (repeatable); three or more route the "
        "run through N-way multiway identification instead of the "
        "pairwise pipeline (give each source's key with --key NAME=ATTRS)",
    )
    parser.add_argument(
        "--key",
        action="append",
        default=[],
        metavar="NAME=ATTRS",
        help="comma-separated primary key of one named --source "
        "(repeatable, one per source)",
    )
    parser.add_argument(
        "--on-conflict",
        choices=("first", "error", "null"),
        default="first",
        help="multiway integration policy when matched sources disagree "
        "on an attribute: keep the first non-NULL value in declaration "
        "order ('first', the default), fail the run ('error'), or leave "
        "the contested attribute NULL ('null')",
    )
    parser.add_argument(
        "--source-column",
        default="sources",
        metavar="NAME",
        help="name of the provenance column the multiway integrated "
        "table records contributing sources in (default 'sources')",
    )
    parser.add_argument(
        "--extended-key",
        required=True,
        help="comma-separated extended key (unified attribute names)",
    )
    parser.add_argument(
        "--ilfd",
        action="append",
        default=[],
        metavar="RULE",
        help="inline ILFD, e.g. 'speciality=Mughalai -> cuisine=Indian' "
        "(repeatable)",
    )
    parser.add_argument(
        "--ilfds-csv",
        action="append",
        default=[],
        metavar="FILE",
        help="ILFD table CSV: antecedent columns then one derived column "
        "(repeatable)",
    )
    parser.add_argument(
        "--ilfds-file",
        action="append",
        default=[],
        metavar="FILE",
        help="ILFD knowledge-base text file, one 'a=x & b=y -> c=z' rule "
        "per line (repeatable)",
    )
    parser.add_argument(
        "--out",
        help="write the merged integrated table to this CSV",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print the full identification report (pair accounting, "
        "soundness witnesses, homonym candidates, conflicts)",
    )
    parser.add_argument(
        "--suggest-keys",
        action="store_true",
        help="instead of identifying, enumerate candidate extended keys "
        "over the given --extended-key attributes and report which verify",
    )
    parser.add_argument(
        "--mine",
        action="append",
        default=[],
        metavar="FILE",
        help="mine candidate ILFDs from this CSV instance before "
        "identifying; exceptionless candidates join the ILFD set "
        "(repeatable)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress table printouts (exit status still reports soundness)",
    )
    parser.add_argument(
        "--blocker",
        choices=sorted(BLOCKERS),
        help="candidate-pair generation strategy: 'cross' evaluates every "
        "pair (historical semantics), 'hash' buckets on the extended key "
        "(identical matching table, far fewer pairs), 'ilfd' adds "
        "ILFD-antecedent buckets, 'snm' adds a sorted-neighborhood window",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="evaluate candidate pairs in N parallel worker processes "
        "(default 1 = serial; implies --blocker cross unless one is given)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record a JSON-lines trace of the run (spans + metrics) "
        "to FILE; inspect it later with 'repro stats FILE'",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's metrics summary (rule evaluations, ILFD "
        "firings, match/non-match/unknown tallies)",
    )
    parser.add_argument(
        "--store",
        metavar="SPEC",
        help="persist tables and derivation journal: 'sqlite:PATH' (or a "
        "bare *.sqlite/*.db path) for a durable store, 'memory' for an "
        "ephemeral one; inspect later with 'repro explain-pair PATH ...'",
    )
    _add_resilience_arguments(parser)
    _add_telemetry_arguments(parser)
    return parser


def build_stats_parser() -> argparse.ArgumentParser:
    """The ``repro stats`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro stats",
        description="Aggregate a JSON-lines trace recorded with "
        "'repro identify --trace FILE': per-phase time totals, span "
        "tree, and the metrics tables.",
    )
    parser.add_argument("trace_file", help="trace file written by --trace")
    parser.add_argument(
        "--tree",
        action="store_true",
        help="also print the full span tree (every span, nested)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the aggregated spans and metrics as JSON on stdout "
        "(machine-readable; suppresses the text rendering)",
    )
    return parser


def _collect_ilfds(args, *, quiet: bool = True) -> List[ILFD]:
    """All ILFDs the shared --ilfd/--ilfds-csv/--ilfds-file/--mine flags name."""
    ilfds: List[ILFD] = [parse_ilfd(text) for text in args.ilfd]
    for path in args.ilfds_csv:
        table_relation = read_csv(path, enforce_keys=False)
        names = list(table_relation.schema.names)
        table = ILFDTable(names[:-1], names[-1], list(table_relation), name=path)
        ilfds.extend(table.to_ilfds())
    for path in getattr(args, "ilfds_file", []):
        from repro.ilfd.io import read_ilfds

        ilfds.extend(read_ilfds(path))
    for path in getattr(args, "mine", []):
        from repro.discovery import mine_ilfds

        instance = read_csv(path, enforce_keys=False)
        mined = mine_ilfds(instance, max_antecedent=2, min_support=2)
        accepted = [m.ilfd for m in mined if m.is_exceptionless]
        ilfds.extend(accepted)
        if not quiet:
            print(f"mined {len(accepted)} exceptionless ILFD(s) from {path}")
    return ilfds


def _parse_named_sources(source_specs, key_specs):
    """``--source NAME=CSV`` + ``--key NAME=ATTRS`` → name → Relation.

    Raises ``ValueError`` on malformed specs, duplicate names, or a
    source with no key spec.
    """
    keys = {}
    for spec in key_specs:
        if "=" not in spec:
            raise ValueError(f"--key {spec!r} is not of the form NAME=ATTRS")
        name, _, attrs = spec.partition("=")
        name = name.strip()
        if name in keys:
            raise ValueError(f"duplicate --key for source {name!r}")
        keys[name] = _split_key(attrs)
    sources = {}
    for spec in source_specs:
        if "=" not in spec:
            raise ValueError(f"--source {spec!r} is not of the form NAME=CSV")
        name, _, path = spec.partition("=")
        name, path = name.strip(), path.strip()
        if not name or not path:
            raise ValueError(f"--source {spec!r} is not of the form NAME=CSV")
        if name in sources:
            raise ValueError(f"duplicate --source name {name!r}")
        if name not in keys:
            raise ValueError(f"--source {name!r} has no --key {name}=ATTRS")
        sources[name] = read_csv(path, keys=[keys[name]], name=name)
    unused = sorted(set(keys) - set(sources))
    if unused:
        raise ValueError(f"--key given for unknown source(s): {unused}")
    return sources


def _identify_multiway(args) -> int:
    """The ``repro identify --source A=... --source B=...`` route.

    Runs :class:`~repro.core.multiway.MultiwayIdentifier` over the named
    sources: prints the entity clusters and the generalized-uniqueness
    verdict; ``--out`` writes the integrated table merged under
    ``--on-conflict``.  Exit codes as for pairwise identify.
    """
    from repro.core.errors import CoreError
    from repro.core.multiway import MultiwayIdentifier

    for flag, value in (("--store", args.store), ("--suggest-keys", args.suggest_keys)):
        if value:
            print(
                f"repro identify: {flag} is not supported with --source "
                "(use 'repro entities build' to persist an N-way run)",
                file=sys.stderr,
            )
            return 2
    if args.r_csv or args.s_csv or args.r_key or args.s_key:
        print(
            "repro identify: positional R/S files and --r-key/--s-key "
            "cannot be mixed with --source",
            file=sys.stderr,
        )
        return 2
    try:
        sources = _parse_named_sources(args.source, args.key)
        if len(sources) < 2:
            raise ValueError("N-way identification needs at least two --source")
        ilfds = _collect_ilfds(args, quiet=args.quiet)
    except (OSError, ValueError) as exc:
        print(f"repro identify: {exc}", file=sys.stderr)
        return 2

    profile_mode = _profile_mode(args)
    tracer = None
    if args.trace or args.metrics or profile_mode != "off":
        from repro.observability import Tracer

        tracer = Tracer(profile=profile_mode)
    try:
        identifier = MultiwayIdentifier(
            sources,
            _split_key(args.extended_key),
            ilfds=ilfds,
            tracer=tracer,
        )
        clusters = identifier.clusters()
        report = identifier.verify()
        conflicts = identifier.conflicts()
    except CoreError as exc:
        print(f"repro identify: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        key_attrs = identifier.extended_key.attributes
        print(f"{len(clusters)} entity cluster(s) across {len(sources)} sources")
        for cluster in clusters:
            rendered = ", ".join(
                f"{attr}={value}" for attr, value in zip(key_attrs, cluster.key)
            )
            members = ", ".join(
                f"{name}:{row.values_for(sources[name].schema.primary_key)}"
                for name, row in cluster.members
            )
            print(f"  [{rendered}] <- {members}")
        if conflicts:
            print(f"{len(conflicts)} attribute conflict(s) between matched sources")
        if report.is_sound:
            print("uniqueness holds: no source has two tuples per entity")
        else:
            print(f"uniqueness VIOLATED: {dict(report.violations)!r}")
    if args.out:
        try:
            integrated = identifier.integrate(
                source_column=args.source_column, on_conflict=args.on_conflict
            )
        except CoreError as exc:
            print(f"repro identify: {exc}", file=sys.stderr)
            return 2
        write_csv(integrated, args.out)
        if not args.quiet:
            print(f"integrated table written to {args.out}")
    if tracer is not None:
        if args.metrics:
            from repro.observability import format_metrics

            print()
            print(format_metrics(tracer.metrics.snapshot()))
        if args.trace:
            from repro.observability import write_trace_jsonl

            try:
                records = write_trace_jsonl(tracer, args.trace)
            except OSError as exc:
                print(f"repro identify: cannot write trace: {exc}", file=sys.stderr)
                return 2
            if not args.quiet:
                print(f"trace ({records} records) written to {args.trace}")
    return 0 if report.is_sound else 1


def identify_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro identify``: 0 sound, 1 unsound/degraded, 2 fatal."""
    args = build_parser().parse_args(argv)
    if args.source:
        return _identify_multiway(args)
    if not (args.r_csv and args.s_csv and args.r_key and args.s_key):
        print(
            "repro identify: the two-source form needs R.csv S.csv "
            "--r-key ... --s-key ... (or name every source with "
            "repeatable --source NAME=CSV plus --key NAME=ATTRS)",
            file=sys.stderr,
        )
        return 2
    r = read_csv(args.r_csv, keys=[_split_key(args.r_key)], name="R")
    s = read_csv(args.s_csv, keys=[_split_key(args.s_key)], name="S")
    ilfds = _collect_ilfds(args, quiet=args.quiet)

    key_attributes = _split_key(args.extended_key)
    if args.suggest_keys:
        from repro.discovery import suggest_extended_keys

        suggestions = suggest_extended_keys(
            r, s, key_attributes, ilfds=ilfds, include_unsound=True
        )
        sound = [s for s in suggestions if s.is_sound]
        for suggestion in suggestions:
            print(suggestion)
        return 0 if sound else 1

    profile_mode = _profile_mode(args)
    observing = bool(
        args.trace
        or args.metrics
        or args.inject_faults
        or args.ledger
        or profile_mode != "off"
    )
    tracer = None
    recorder = None
    if observing:
        from repro.observability import Tracer

        tracer = Tracer(profile=profile_mode)
    if args.ledger:
        from repro.telemetry import RunRecorder

        recorder = RunRecorder("identify", _telemetry_config(args, "identify"))

    if args.workers < 1:
        print("repro identify: --workers must be >= 1", file=sys.stderr)
        return 2
    from repro.resilience import FaultPlanError

    try:
        retry, injector = _make_resilience(args, tracer)
    except (FaultPlanError, ValueError) as exc:
        print(f"repro identify: {exc}", file=sys.stderr)
        return 2
    store = None
    if args.store:
        from repro.store import StoreError, make_store

        try:
            store = make_store(
                args.store,
                tracer=tracer,
                retry_policy=retry,
                fault_injector=injector,
            )
        except StoreError as exc:
            print(f"repro identify: {exc}", file=sys.stderr)
            return 2
    blocker = make_blocker(args.blocker) if args.blocker else None
    executor = None
    if retry is not None or injector is not None:
        from repro.blocking.executor import ParallelPairExecutor

        executor = ParallelPairExecutor(
            args.workers,
            tracer=tracer,
            retry_policy=retry,
            fault_injector=injector,
        )
    identifier = EntityIdentifier(
        r,
        s,
        key_attributes,
        ilfds=ilfds,
        tracer=tracer,
        blocker=blocker,
        workers=args.workers,
        executor=executor,
        store=store,
    )
    from repro.resilience import ResilienceError

    try:
        if observing:
            from repro.core.errors import CoreError

            # The full pipeline (including the negative table) so the
            # trace carries the complete match/non-match/unknown
            # accounting. An unsound key can make run() raise
            # (matching/negative overlap); fall back to the plain report
            # so the outcome — and the trace recorded so far — still
            # reach the user, with exit status 1.
            try:
                result = identifier.run()
                matching, report = result.matching, result.report
            except CoreError:
                matching = identifier.matching_table()
                report = identifier.verify()
        else:
            matching = identifier.matching_table()
            report = identifier.verify()
    except ResilienceError as exc:
        # Recovery gave up: retries exhausted or an unrecoverable
        # injected fault.  The run produced no trustworthy result.
        print(f"repro identify: {exc}", file=sys.stderr)
        if store is not None:
            store.close()
        return 2
    if store is not None:
        # Persist the negative table too — the journal should account for
        # every conclusion the run reached, not just the matches.
        identifier.negative_matching_table()
    if args.report:
        from repro.core.report import identification_report

        print(identification_report(identifier))
    elif not args.quiet:
        print(format_relation(matching.to_relation(), title="matching table"))
        print()
        print(report.message)
    if args.out:
        integrated = identifier.integrate()
        write_csv(integrated.merged_view(), args.out)
        if not args.quiet:
            print(f"integrated table written to {args.out}")
    if tracer is not None:
        if profile_mode != "off" and not args.quiet:
            from repro.observability import format_profile

            print()
            print(format_profile(tracer))
        if args.metrics:
            from repro.observability import format_metrics

            print()
            print(format_metrics(tracer.metrics.snapshot()))
        if args.trace:
            from repro.observability import write_trace_jsonl

            try:
                records = write_trace_jsonl(tracer, args.trace)
            except OSError as exc:
                print(f"repro identify: cannot write trace: {exc}",
                      file=sys.stderr)
                return 2
            if not args.quiet:
                print(f"trace ({records} records) written to {args.trace}")
    if store is not None:
        counts = store.counts()
        if not args.quiet:
            print(
                f"store: {counts['matches']} match(es), "
                f"{counts['non_matches']} non-match(es), "
                f"{counts['journal']} journal entrie(s) "
                f"persisted via {args.store}"
            )
        store.close()
    status = 0 if report.is_sound else 1
    if tracer is not None and tracer.metrics.counter(
        "resilience.pairs_quarantined"
    ):
        if not args.quiet:
            print(
                "warning: some candidate pairs were quarantined "
                "(see resilience metrics)",
                file=sys.stderr,
            )
        status = max(status, 1)
    if recorder is not None:
        ledger_status = _append_run_report(
            args,
            "identify",
            recorder,
            tracer,
            {"exit_status": status, "sound": report.is_sound},
        )
        status = max(status, ledger_status)
    return status


def stats_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro stats``: render a recorded JSON-lines trace."""
    from repro.observability import (
        format_span_tree,
        format_trace_summary,
        read_trace_jsonl,
    )

    args = build_stats_parser().parse_args(argv)
    try:
        spans, metrics = read_trace_jsonl(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"repro stats: {exc}", file=sys.stderr)
        return 2
    if args.json:
        import json as json_module

        from repro.telemetry import aggregate_phases

        payload = {
            "trace_file": args.trace_file,
            "spans": aggregate_phases(spans),
            "metrics": {
                "counters": (metrics or {}).get("counters", {}),
                "histograms": (metrics or {}).get("histograms", {}),
            },
        }
        if args.tree:
            payload["tree"] = spans
        print(json_module.dumps(payload, indent=2, sort_keys=False))
        return 0
    print(format_trace_summary(spans, metrics))
    if args.tree:
        print()
        print(format_span_tree(spans))
    return 0


def build_checkpoint_parser() -> argparse.ArgumentParser:
    """The ``repro checkpoint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro checkpoint",
        description="Load two CSV relations into an incremental "
        "identification session and snapshot it — sources, matching "
        "table, derivation journal, and delta cursor — into one SQLite "
        "checkpoint that 'repro resume' can continue from.",
    )
    parser.add_argument("r_csv", help="first source relation (CSV with header)")
    parser.add_argument("s_csv", help="second source relation (CSV with header)")
    parser.add_argument("checkpoint_file", help="checkpoint to write (SQLite)")
    parser.add_argument(
        "--r-key", required=True, help="comma-separated key of the first relation"
    )
    parser.add_argument(
        "--s-key", required=True, help="comma-separated key of the second relation"
    )
    parser.add_argument(
        "--extended-key",
        required=True,
        help="comma-separated extended key (unified attribute names)",
    )
    parser.add_argument(
        "--ilfd",
        action="append",
        default=[],
        metavar="RULE",
        help="inline ILFD, e.g. 'speciality=Mughalai -> cuisine=Indian' "
        "(repeatable)",
    )
    parser.add_argument(
        "--ilfds-file",
        action="append",
        default=[],
        metavar="FILE",
        help="ILFD knowledge-base text file, one rule per line (repeatable)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary printout"
    )
    _add_resilience_arguments(parser)
    return parser


def build_resume_parser() -> argparse.ArgumentParser:
    """The ``repro resume`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro resume",
        description="Reload a checkpoint written by 'repro checkpoint' "
        "(replaying the derivation journal to verify it explains the "
        "stored tables) and continue the session: apply further inserts "
        "and new ILFDs without re-evaluating settled pairs.  Updates "
        "persist into the same checkpoint file.",
    )
    parser.add_argument("checkpoint_file", help="checkpoint written earlier")
    parser.add_argument(
        "--insert-r",
        action="append",
        default=[],
        metavar="FILE",
        help="CSV of new R tuples to insert after resuming (repeatable)",
    )
    parser.add_argument(
        "--insert-s",
        action="append",
        default=[],
        metavar="FILE",
        help="CSV of new S tuples to insert after resuming (repeatable)",
    )
    parser.add_argument(
        "--ilfd",
        action="append",
        default=[],
        metavar="RULE",
        help="new ILFD to supply after resuming (repeatable)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the journal-replay and constraint audit on load",
    )
    parser.add_argument(
        "--salvage",
        action="store_true",
        help="if the checkpoint is corrupt (truncated, bit-rotted), "
        "recover instead of failing: keep the surviving rows and the "
        "longest verifiable journal prefix, re-derive the rest, and "
        "continue on the rebuilt session (exit status 1)",
    )
    parser.add_argument(
        "--salvage-out",
        metavar="FILE",
        help="write the rebuilt session to this new SQLite file "
        "(default: the salvaged session lives in memory)",
    )
    parser.add_argument(
        "--salvage-r",
        metavar="FILE",
        help="fallback R source CSV for salvage, when the damaged "
        "checkpoint lost source rows (requires --salvage-r-key)",
    )
    parser.add_argument(
        "--salvage-s",
        metavar="FILE",
        help="fallback S source CSV for salvage (requires --salvage-s-key)",
    )
    parser.add_argument(
        "--salvage-r-key",
        metavar="ATTRS",
        help="comma-separated key of the --salvage-r relation",
    )
    parser.add_argument(
        "--salvage-s-key",
        metavar="ATTRS",
        help="comma-separated key of the --salvage-s relation",
    )
    parser.add_argument(
        "--salvage-extended-key",
        metavar="ATTRS",
        help="extended key to use when the checkpoint's own metadata "
        "is unrecoverable",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress table printouts (exit status still reports soundness)",
    )
    _add_resilience_arguments(parser)
    _add_telemetry_arguments(parser)
    return parser


def build_explain_parser() -> argparse.ArgumentParser:
    """The ``repro explain-pair`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro explain-pair",
        description="Reconstruct, from the derivation journal alone, the "
        "rule-firing chain behind one pair persisted in a store or "
        "checkpoint: ILFD derivations, identity/distinctness firings, "
        "assertions, retractions, and the pair's current verdict.",
    )
    parser.add_argument(
        "store_file", help="SQLite store or checkpoint holding the journal"
    )
    parser.add_argument(
        "--r",
        metavar="KEYSPEC",
        help="R tuple key as 'attr=value,attr=value'",
    )
    parser.add_argument(
        "--s",
        metavar="KEYSPEC",
        help="S tuple key as 'attr=value,attr=value'",
    )
    return parser


def _session_from_args(args, retry_policy=None, fault_injector=None) -> "object":
    """Build and load the IncrementalIdentifier 'repro checkpoint' snapshots."""
    from repro.federation.incremental import IncrementalIdentifier

    r = read_csv(args.r_csv, keys=[_split_key(args.r_key)], name="R")
    s = read_csv(args.s_csv, keys=[_split_key(args.s_key)], name="S")
    ilfds: List[ILFD] = [parse_ilfd(text) for text in args.ilfd]
    for path in args.ilfds_file:
        from repro.ilfd.io import read_ilfds

        ilfds.extend(read_ilfds(path))
    identifier = IncrementalIdentifier(
        r.schema,
        s.schema,
        _split_key(args.extended_key),
        ilfds=ilfds,
        retry_policy=retry_policy,
        fault_injector=fault_injector,
    )
    identifier.load(r, s)
    return identifier


def checkpoint_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro checkpoint``: 0 on success, 2 on a fatal failure."""
    from repro.resilience import FaultPlanError, ResilienceError

    args = build_checkpoint_parser().parse_args(argv)
    try:
        retry, injector = _make_resilience(args, None)
    except (FaultPlanError, ValueError) as exc:
        print(f"repro checkpoint: {exc}", file=sys.stderr)
        return 2
    try:
        identifier = _session_from_args(
            args, retry_policy=retry, fault_injector=injector
        )
        identifier.checkpoint(args.checkpoint_file)
    except ResilienceError as exc:
        print(f"repro checkpoint: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        import os

        size = os.path.getsize(args.checkpoint_file)
        print(
            f"checkpoint written to {args.checkpoint_file}: "
            f"{len(identifier.match_pairs())} match(es), "
            f"version {identifier.version}, {size} bytes"
        )
    return 0


def _salvage_session(args):
    """Rebuild a session from a damaged checkpoint (the --salvage path).

    Returns ``(identifier, report)``; raises ``StoreError`` when even
    salvage cannot produce a verified-consistent session.
    """
    from repro.store.checkpoint import salvage_incremental

    r = s = None
    if args.salvage_r:
        keys = [_split_key(args.salvage_r_key)] if args.salvage_r_key else None
        r = read_csv(args.salvage_r, keys=keys, name="R")
    if args.salvage_s:
        keys = [_split_key(args.salvage_s_key)] if args.salvage_s_key else None
        s = read_csv(args.salvage_s, keys=keys, name="S")
    extended_key = (
        _split_key(args.salvage_extended_key)
        if args.salvage_extended_key
        else None
    )
    return salvage_incremental(
        args.checkpoint_file,
        r=r,
        s=s,
        extended_key=extended_key,
        output=args.salvage_out,
    )


def resume_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro resume``: 0 sound, 1 unsound or salvaged, 2 fatal."""
    from repro.federation.incremental import IncrementalIdentifier
    from repro.store import StoreError, StoreIntegrityError

    from repro.resilience import FaultPlanError

    args = build_resume_parser().parse_args(argv)
    profile_mode = _profile_mode(args)
    tracer = None
    recorder = None
    if args.ledger or profile_mode != "off":
        from repro.observability import Tracer

        tracer = Tracer(profile=profile_mode)
    if args.ledger:
        from repro.telemetry import RunRecorder

        recorder = RunRecorder("resume", _telemetry_config(args, "resume"))
    try:
        retry, injector = _make_resilience(args, tracer)
    except (FaultPlanError, ValueError) as exc:
        print(f"repro resume: {exc}", file=sys.stderr)
        return 2
    salvaged = False
    try:
        identifier = IncrementalIdentifier.resume(
            args.checkpoint_file,
            verify=not args.no_verify,
            tracer=tracer,
            retry_policy=retry,
            fault_injector=injector,
        )
    except (StoreError, StoreIntegrityError) as exc:
        if not args.salvage:
            print(f"repro resume: {exc}", file=sys.stderr)
            if isinstance(exc, StoreIntegrityError):
                print(
                    "repro resume: the checkpoint looks damaged; "
                    "--salvage can recover the surviving state",
                    file=sys.stderr,
                )
            return 2
        print(
            f"repro resume: checkpoint damaged ({exc}); salvaging...",
            file=sys.stderr,
        )
        try:
            identifier, salvage_report = _salvage_session(args)
        except (StoreError, StoreIntegrityError, OSError) as salvage_exc:
            print(f"repro resume: salvage failed: {salvage_exc}",
                  file=sys.stderr)
            return 2
        salvaged = True
        if not args.quiet:
            print(salvage_report.summary())
            print()
    resumed_version = identifier.version
    added = 0
    from repro.resilience import ResilienceError

    try:
        for path in args.insert_r:
            for row in read_csv(path, enforce_keys=False):
                added += len(identifier.insert_r(row).added)
        for path in args.insert_s:
            for row in read_csv(path, enforce_keys=False):
                added += len(identifier.insert_s(row).added)
        if args.ilfd:
            added += len(
                identifier.add_ilfds(
                    [parse_ilfd(text) for text in args.ilfd]
                ).added
            )
    except ResilienceError as exc:
        print(f"repro resume: {exc}", file=sys.stderr)
        identifier.store.close()
        return 2
    report = identifier.verify()
    if not args.quiet:
        print(
            f"resumed {args.checkpoint_file} at version {resumed_version}; "
            f"now version {identifier.version}, "
            f"{len(identifier.match_pairs())} match(es) "
            f"({added} added this session)"
        )
        print()
        print(
            format_relation(
                identifier.matching_table().to_relation(),
                title="matching table",
            )
        )
        print()
        print(report.message)
    identifier.store.close()
    status = 0 if report.is_sound else 1
    if salvaged:
        status = max(status, 1)
    if tracer is not None and profile_mode != "off" and not args.quiet:
        from repro.observability import format_profile

        print()
        print(format_profile(tracer))
    if recorder is not None:
        ledger_status = _append_run_report(
            args,
            "resume",
            recorder,
            tracer,
            {
                "exit_status": status,
                "sound": report.is_sound,
                "salvaged": salvaged,
                "added": added,
            },
        )
        status = max(status, ledger_status)
    return status


def explain_pair_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro explain-pair``: journal-backed provenance for one pair."""
    import os

    from repro.store import SqliteStore, StoreError, explain_pair

    args = build_explain_parser().parse_args(argv)
    if args.r is None and args.s is None:
        print("repro explain-pair: give --r and/or --s", file=sys.stderr)
        return 2
    try:
        r_key = parse_key_spec(args.r) if args.r else None
        s_key = parse_key_spec(args.s) if args.s else None
    except ValueError as exc:
        print(f"repro explain-pair: {exc}", file=sys.stderr)
        return 2
    if not os.path.exists(args.store_file):
        print(
            f"repro explain-pair: no such store: {args.store_file}",
            file=sys.stderr,
        )
        return 2
    try:
        store = SqliteStore(args.store_file)
    except StoreError as exc:
        print(f"repro explain-pair: {exc}", file=sys.stderr)
        return 2
    try:
        entries = store.journal_entries(r_key=r_key, s_key=s_key)
        print(explain_pair(entries, r_key, s_key))
    finally:
        store.close()
    return 0


def build_conform_parser() -> argparse.ArgumentParser:
    """The ``repro conform`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro conform",
        description="Run the conformance suite: the differential "
        "configuration matrix (every engine configuration must produce "
        "bit-identical canonical matching tables), the Section-3 oracles "
        "(soundness, completeness, uniqueness, consistency), the "
        "metamorphic relations, and optionally the golden-corpus drift "
        "check.",
    )
    parser.add_argument(
        "workloads",
        nargs="*",
        help="synthetic workload families to exercise: restaurants, "
        "employees, publications (default: all three)",
    )
    parser.add_argument(
        "--entities",
        type=int,
        default=12,
        metavar="N",
        help="universe size per workload (default 12; the matrix is "
        "O(N^2) per cell)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=3,
        metavar="N",
        help="workload generation seed (default 3)",
    )
    parser.add_argument(
        "--matrix",
        choices=("strict", "full", "none"),
        default="full",
        help="differential matrix to run: 'strict' = exhaustive-candidate "
        "cells only (bit-identical MT and NMT), 'full' adds the "
        "pruning-blocker cells (MT-identical, NMT-subset), 'none' skips "
        "the matrix (default full)",
    )
    parser.add_argument(
        "--no-prototype",
        action="store_true",
        help="skip the Prolog-prototype comparison cell",
    )
    parser.add_argument(
        "--no-oracles",
        action="store_true",
        help="skip the Section-3 oracle checks",
    )
    parser.add_argument(
        "--no-metamorphic",
        action="store_true",
        help="skip the metamorphic relations",
    )
    parser.add_argument(
        "--golden",
        metavar="DIR",
        help="check the frozen golden corpus in DIR for fingerprint drift",
    )
    parser.add_argument(
        "--update-golden",
        action="store_true",
        help="re-freeze the golden corpus in --golden DIR instead of "
        "checking it (the new fingerprints go through code review)",
    )
    parser.add_argument(
        "--golden-workload",
        action="append",
        default=[],
        metavar="NAME",
        help="restrict the golden check/update to this corpus workload "
        "(repeatable; default: the whole corpus)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full machine-readable report as JSON on stdout",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the human-readable summaries (exit status still "
        "reports the verdict)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record a JSON-lines trace (spans + conformance.* metrics)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the conformance metrics summary after the run",
    )
    _add_telemetry_arguments(parser)
    return parser


_CONFORM_WORKLOADS = ("restaurants", "employees", "publications")


def _conform_workload(name: str, entities: int, seed: int):
    """Build one seeded synthetic workload for ``repro conform``."""
    from repro import workloads

    if name == "restaurants":
        return workloads.restaurant_workload(
            workloads.RestaurantWorkloadSpec(n_entities=entities, seed=seed)
        )
    if name == "employees":
        return workloads.employee_workload(
            workloads.EmployeeWorkloadSpec(n_entities=entities, seed=seed)
        )
    if name == "publications":
        return workloads.publication_workload(
            workloads.PublicationWorkloadSpec(n_entities=entities, seed=seed)
        )
    raise ValueError(
        f"unknown workload {name!r}; expected one of {_CONFORM_WORKLOADS}"
    )


def _conform_oracles(workload, tracer):
    """Identify *workload* once and run the Section-3 oracles on it."""
    from repro.conformance import Knowledge, run_oracles

    knowledge = Knowledge.from_workload(workload)
    identifier = EntityIdentifier(
        workload.r,
        workload.s,
        list(workload.extended_key),
        ilfds=list(workload.ilfds),
    )
    result = identifier.run()
    return run_oracles(
        result.matching,
        result.negative,
        result.extended_r,
        result.extended_s,
        knowledge,
        tracer=tracer,
    )


def conform_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro conform``: 0 green, 1 mismatch/violation/drift, 2 fatal."""
    import json as json_module

    from repro.conformance import (
        ConformanceError,
        check_golden,
        full_matrix,
        run_matrix,
        run_metamorphic,
        strict_matrix,
        update_golden,
    )

    args = build_conform_parser().parse_args(argv)
    names = list(args.workloads) or list(_CONFORM_WORKLOADS)
    unknown = [n for n in names if n not in _CONFORM_WORKLOADS]
    if unknown:
        print(
            f"repro conform: unknown workload(s) {unknown}; "
            f"expected {list(_CONFORM_WORKLOADS)}",
            file=sys.stderr,
        )
        return 2
    if args.update_golden and not args.golden:
        print("repro conform: --update-golden requires --golden DIR",
              file=sys.stderr)
        return 2
    if args.entities < 2:
        print("repro conform: --entities must be >= 2", file=sys.stderr)
        return 2

    profile_mode = _profile_mode(args)
    tracer = None
    recorder = None
    if args.trace or args.metrics or args.ledger or profile_mode != "off":
        from repro.observability import Tracer

        tracer = Tracer(profile=profile_mode)
    if args.ledger:
        from repro.telemetry import RunRecorder

        recorder = RunRecorder("conform", _telemetry_config(args, "conform"))

    degraded = False
    output = {"ok": True, "workloads": {}}
    try:
        for name in names:
            workload = _conform_workload(name, args.entities, args.seed)
            entry = {}
            if args.matrix != "none":
                cells = (
                    strict_matrix() if args.matrix == "strict" else full_matrix()
                )
                matrix_report = run_matrix(
                    workload,
                    cells,
                    name=name,
                    include_prototype=not args.no_prototype,
                    tracer=tracer,
                )
                entry["differential"] = {
                    "green": matrix_report.is_green,
                    "cells": len(matrix_report.outcomes),
                    "mt_fingerprint": matrix_report.baseline.tables.mt_fingerprint,
                    "nmt_fingerprint": matrix_report.baseline.tables.nmt_fingerprint,
                    "mismatches": [
                        m.summary() for m in matrix_report.mismatches
                    ],
                    "prototype_agrees": matrix_report.prototype_agrees,
                }
                degraded = degraded or not matrix_report.is_green
                if not args.quiet and not args.json:
                    print(matrix_report.summary())
            if not args.no_oracles:
                oracle_report = _conform_oracles(workload, tracer)
                entry["oracles"] = oracle_report.to_dict()
                degraded = degraded or not oracle_report.ok
                if not args.quiet and not args.json:
                    print(f"oracles [{name}]:")
                    for line in oracle_report.summary().splitlines():
                        print("  " + line)
            if not args.no_metamorphic:
                meta_report = run_metamorphic(
                    workload, name=name, seed=args.seed, tracer=tracer
                )
                entry["metamorphic"] = {
                    "ok": meta_report.ok,
                    "cases": [o.summary() for o in meta_report.outcomes],
                }
                degraded = degraded or not meta_report.ok
                if not args.quiet and not args.json:
                    print(meta_report.summary())
            output["workloads"][name] = entry

        if args.golden:
            golden_names = args.golden_workload or None
            if args.update_golden:
                paths = update_golden(args.golden, golden_names)
                output["golden"] = {"updated": paths}
                if not args.quiet and not args.json:
                    print(f"golden corpus re-frozen: {len(paths)} file(s) "
                          f"in {args.golden}")
            else:
                drift = check_golden(args.golden, golden_names)
                output["golden"] = {"drift": drift}
                degraded = degraded or bool(drift)
                if tracer is not None:
                    tracer.metrics.inc("conformance.golden_drift", len(drift))
                if not args.quiet and not args.json:
                    if drift:
                        print("golden corpus DRIFTED:")
                        for workload_name, detail in sorted(drift.items()):
                            print(f"  {workload_name}: {detail}")
                    else:
                        print("golden corpus: no drift")
    except ConformanceError as exc:
        print(f"repro conform: {exc}", file=sys.stderr)
        return 2

    output["ok"] = not degraded
    if args.json:
        print(json_module.dumps(output, indent=2, sort_keys=False))
    elif not args.quiet:
        print("conformance: " + ("all green" if not degraded else "DEGRADED"))
    if tracer is not None:
        if profile_mode != "off" and not args.quiet and not args.json:
            from repro.observability import format_profile

            print()
            print(format_profile(tracer))
        if args.metrics:
            from repro.observability import format_metrics

            print()
            print(format_metrics(tracer.metrics.snapshot()))
        if args.trace:
            from repro.observability import write_trace_jsonl

            try:
                write_trace_jsonl(tracer, args.trace)
            except OSError as exc:
                print(f"repro conform: cannot write trace: {exc}",
                      file=sys.stderr)
                return 2
    status = 1 if degraded else 0
    if recorder is not None:
        ledger_status = _append_run_report(
            args,
            "conform",
            recorder,
            tracer,
            {"exit_status": status, "ok": not degraded},
        )
        status = max(status, ledger_status)
    return status


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``repro serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve match lookups and search-before-insert "
        "ingestion over a persisted store as JSON-over-HTTP: "
        "GET /resolve returns a key's row, entity cluster, matched "
        "pairs, and journal provenance; POST /ingest routes a new tuple "
        "through extended-key resolution before inserting it, journaled "
        "with rule attribution exactly like a batch run.  Reads go "
        "through per-worker read-only WAL replicas behind an LRU cache; "
        "GET /metrics exposes serving.* counters in Prometheus format.",
    )
    parser.add_argument(
        "--store",
        required=True,
        metavar="SPEC",
        help="the store to serve: 'sqlite:PATH' or a bare *.sqlite/*.db "
        "path written by 'repro identify --store' or 'repro checkpoint' "
        "('memory' stores cannot be served — replicas need a file)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8571,
        help="port to bind; 0 picks a free port, printed on the "
        "readiness line (default 8571)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="replica reader threads, one read-only connection each "
        "(default 2)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        metavar="N",
        help="LRU resolve-cache capacity in entries; 0 disables caching "
        "(default 1024)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=250.0,
        metavar="MS",
        help="per-lookup deadline before the degradation path (stale "
        "cache, then 503) kicks in; 0 waits forever (default 250)",
    )
    parser.add_argument(
        "--no-stale",
        dest="allow_stale",
        action="store_false",
        help="never serve invalidated cache entries during degradation; "
        "fail with 503 instead",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="reopen-and-retry failed replica reads up to N times "
        "(default 1 = no retries)",
    )
    parser.add_argument(
        "--retry-delay",
        type=float,
        default=0.01,
        metavar="SECONDS",
        help="base backoff delay between replica retries (default 0.01)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="on shutdown, write the retained request spans and all "
        "serving.* metrics as a JSON-lines trace (render with "
        "'repro stats FILE')",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics tables on shutdown (the same numbers "
        "GET /metrics serves while running)",
    )
    parser.add_argument(
        "--ledger",
        metavar="PATH",
        help="append this serving run's report (requests served, "
        "latencies, cache and degradation counters) to the SQLite run "
        "ledger at PATH on shutdown",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=64,
        metavar="N",
        help="admission bound on concurrently in-flight requests; the "
        "N+1st is shed with 503 + Retry-After before any work is "
        "queued; 0 disables the bound (default 64)",
    )
    parser.add_argument(
        "--read-rate",
        type=float,
        default=0.0,
        metavar="QPS",
        help="token-bucket rate limit for the read endpoint class "
        "(/resolve, /stats); exceeding it sheds with 429 + Retry-After; "
        "0 = unlimited (default 0)",
    )
    parser.add_argument(
        "--write-rate",
        type=float,
        default=0.0,
        metavar="QPS",
        help="token-bucket rate limit for the write endpoint class "
        "(/ingest, /invalidate); 0 = unlimited (default 0)",
    )
    parser.add_argument(
        "--burst",
        type=float,
        default=0.0,
        metavar="N",
        help="token-bucket burst capacity for both classes; 0 sizes "
        "each bucket to one second of its rate (default 0)",
    )
    parser.add_argument(
        "--retry-after",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="Retry-After hint on 503 queue-full sheds (default 0.5)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        metavar="N",
        help="consecutive dependency failures that open the read/write "
        "circuit breakers; 0 disables the breakers (default 5)",
    )
    parser.add_argument(
        "--breaker-cooldown",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="base cooldown before an open breaker lets a probe "
        "through (default 1.0)",
    )
    parser.add_argument(
        "--breaker-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="seed for the breakers' deterministic probe-jitter "
        "schedule (default 0)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="on SIGINT/SIGTERM, wait up to this long for in-flight "
        "requests to finish before closing (default 10)",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="SPEC",
        help="deterministic fault plan fired at the serving sites "
        "(serving.request, serving.invalidate, store.commit), e.g. "
        "'serving.request:error@5' or 'serving.request:kill@25' for a "
        "real mid-request SIGKILL — the chaos harness's hook; see "
        "'repro identify --inject-faults' for the grammar",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the readiness line"
    )
    return parser


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro serve``: run the match-lookup HTTP server until signalled."""
    import asyncio
    import signal

    args = build_serve_parser().parse_args(argv)
    spec = args.store.strip()
    if spec.startswith("sqlite:"):
        path = spec[len("sqlite:"):]
    elif spec == "memory":
        print(
            "repro serve: 'memory' stores cannot be served — replica "
            "readers need a SQLite file (use --store sqlite:PATH)",
            file=sys.stderr,
        )
        return 2
    else:
        path = spec
    if not path or not os.path.exists(path):
        print(f"repro serve: store file {path!r} not found", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("repro serve: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.cache_size < 0:
        print("repro serve: --cache-size must be >= 0", file=sys.stderr)
        return 2
    if args.retries < 1:
        print("repro serve: --retries must be >= 1", file=sys.stderr)
        return 2

    from repro.serving import MatchLookupService, ServingServer, ServingTracer
    from repro.store import StoreError

    tracer = ServingTracer()
    recorder = None
    if args.ledger:
        from repro.telemetry import RunRecorder

        recorder = RunRecorder("serve", _telemetry_config(args, "serve"))
    retry = None
    if args.retries > 1:
        from repro.resilience import RetryPolicy

        retry = RetryPolicy(
            max_attempts=args.retries,
            base_delay=max(args.retry_delay, 0.0),
            seed=0,
        )

    from repro.resilience import (
        AdmissionController,
        CircuitBreaker,
        FaultInjector,
        FaultPlan,
        FaultPlanError,
        TokenBucket,
    )

    injector = None
    if args.inject_faults:
        try:
            plan = FaultPlan.parse(args.inject_faults)
        except FaultPlanError as exc:
            print(f"repro serve: {exc}", file=sys.stderr)
            return 2
        injector = FaultInjector(plan, tracer=tracer)
    read_breaker = write_breaker = None
    if args.breaker_threshold > 0:
        read_breaker = CircuitBreaker(
            "read",
            failure_threshold=args.breaker_threshold,
            cooldown=args.breaker_cooldown,
            seed=args.breaker_seed,
            tracer=tracer,
        )
        write_breaker = CircuitBreaker(
            "write",
            failure_threshold=args.breaker_threshold,
            cooldown=args.breaker_cooldown,
            seed=args.breaker_seed + 1,
            tracer=tracer,
        )
    rates = {}
    for name, rate in (("read", args.read_rate), ("write", args.write_rate)):
        if rate > 0:
            rates[name] = TokenBucket(
                rate, args.burst if args.burst > 0 else None
            )
    admission = AdmissionController(
        max_queue=args.max_queue,
        rates=rates,
        retry_after=args.retry_after,
        tracer=tracer,
    )

    try:
        service = MatchLookupService(
            path,
            workers=args.workers,
            cache_size=args.cache_size,
            deadline=(args.deadline_ms / 1000.0) if args.deadline_ms > 0 else None,
            tracer=tracer,
            retry_policy=retry,
            allow_stale=args.allow_stale,
            read_breaker=read_breaker,
            write_breaker=write_breaker,
            fault_injector=injector,
        )
    except (StoreError, OSError) as exc:
        print(f"repro serve: cannot open store: {exc}", file=sys.stderr)
        return 2
    server = ServingServer(
        service,
        host=args.host,
        port=args.port,
        tracer=tracer,
        admission=admission,
    )

    async def _run() -> None:
        await server.start()
        host, port = server.address
        if not args.quiet:
            # The readiness line scripts and CI wait for; flushed so a
            # pipe sees it before the first request.
            print(
                f"repro serve: listening on http://{host}:{port} "
                f"(store {path}, {args.workers} worker(s), "
                f"cache {args.cache_size})",
                flush=True,
            )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                # Platforms/loops without signal support: Ctrl-C still
                # lands as KeyboardInterrupt in asyncio.run below.
                pass
        await stop.wait()
        # SIGINT and SIGTERM share one graceful path: stop accepting,
        # drain in-flight requests, then (in the finally below) seal
        # the checkpoint digests and flush the ledger.
        await server.stop(drain=True, drain_timeout=max(args.drain_timeout, 0.0))

    status = 0
    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    except OSError as exc:  # bind failure, port in use
        print(f"repro serve: {exc}", file=sys.stderr)
        status = 2
    finally:
        service.close()
    if not args.quiet and status == 0:
        snapshot = tracer.metrics.snapshot()
        served = snapshot.get("counters", {}).get("serving.requests", 0)
        print(f"repro serve: shut down after {served} request(s)")
    if args.metrics:
        from repro.observability import format_metrics

        print()
        print(format_metrics(tracer.metrics.snapshot()))
    if args.trace:
        from repro.observability import write_trace_jsonl

        try:
            records = write_trace_jsonl(tracer, args.trace)
        except OSError as exc:
            print(f"repro serve: cannot write trace: {exc}", file=sys.stderr)
            status = max(status, 2)
        else:
            if not args.quiet:
                print(f"trace ({records} records) written to {args.trace}")
    if recorder is not None:
        ledger_status = _append_run_report(
            args, "serve", recorder, tracer, {"exit_status": status}
        )
        status = max(status, ledger_status)
    return status


def build_report_parser() -> argparse.ArgumentParser:
    """The ``repro report`` argument parser (run-ledger queries)."""
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Query the telemetry recorded by --ledger and the "
        "bench history: list/show/diff stored run reports, export them "
        "as Prometheus text exposition or JSONL, and gate on "
        "performance regressions against the recorded bench baseline.",
    )
    actions = parser.add_subparsers(dest="action", metavar="ACTION")
    actions.required = True

    def add_ledger(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--ledger",
            default="runs.db",
            metavar="PATH",
            help="run ledger written by --ledger (default runs.db)",
        )

    list_parser = actions.add_parser(
        "list", help="one line per recorded run (id, time, command, cost)"
    )
    add_ledger(list_parser)
    list_parser.add_argument(
        "--json", action="store_true", help="emit the run rows as JSON"
    )

    show_parser = actions.add_parser(
        "show", help="one run's full report (default: the newest run)"
    )
    add_ledger(show_parser)
    show_parser.add_argument(
        "run", nargs="?", type=int, help="run id (default: newest)"
    )
    show_parser.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )

    diff_parser = actions.add_parser(
        "diff", help="phase-timing and metrics deltas between two runs"
    )
    add_ledger(diff_parser)
    diff_parser.add_argument("run_a", type=int, help="baseline run id")
    diff_parser.add_argument("run_b", type=int, help="comparison run id")

    prom_parser = actions.add_parser(
        "prom",
        help="a run's report in Prometheus text-exposition format",
    )
    add_ledger(prom_parser)
    prom_parser.add_argument(
        "run", nargs="?", type=int, help="run id (default: newest)"
    )
    prom_parser.add_argument(
        "--out", metavar="FILE", help="write to FILE instead of stdout"
    )

    jsonl_parser = actions.add_parser(
        "jsonl",
        help="metric snapshots as JSON lines (one record per metric)",
    )
    add_ledger(jsonl_parser)
    jsonl_parser.add_argument(
        "runs", nargs="*", type=int, help="run ids (default: every run)"
    )
    jsonl_parser.add_argument(
        "--out", metavar="FILE", help="write to FILE instead of stdout"
    )

    check_parser = actions.add_parser(
        "bench-check",
        help="exit 1 when a bench series regressed beyond --threshold "
        "against its recorded baseline",
    )
    check_parser.add_argument(
        "--history",
        default="BENCH_HISTORY.jsonl",
        metavar="FILE",
        help="bench history JSONL (default BENCH_HISTORY.jsonl)",
    )
    check_parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        metavar="FRACTION",
        help="allowed latency increase / throughput decrease per series "
        "(default 0.15 = 15%%)",
    )
    check_parser.add_argument(
        "--same-env",
        action="store_true",
        help="only compare records whose environment fingerprint "
        "(python major.minor, machine, cpu count) matches the newest "
        "record's",
    )
    check_parser.add_argument(
        "--json", action="store_true", help="emit the verdicts as JSON"
    )
    return parser


def report_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro report``: 0 ok, 1 regression (bench-check), 2 fatal."""
    import json as json_module
    import os
    import time as time_module

    from repro.telemetry import (
        HistoryError,
        LedgerError,
        RunLedger,
        check_history,
        diff_reports,
        format_verdicts,
        load_history,
        metrics_to_jsonl_records,
        report_to_prometheus,
    )

    args = build_report_parser().parse_args(argv)

    if args.action == "bench-check":
        try:
            if args.threshold <= 0:
                raise ValueError("--threshold must be > 0")
            records = load_history(args.history)
            verdicts = check_history(
                records, threshold=args.threshold, same_env=args.same_env
            )
        except (HistoryError, ValueError) as exc:
            print(f"repro report: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(
                json_module.dumps(
                    {
                        "threshold": args.threshold,
                        "series": [v.to_dict() for v in verdicts],
                        "regressed": [
                            v.label() for v in verdicts if v.regressed
                        ],
                    },
                    indent=2,
                )
            )
        else:
            print(format_verdicts(verdicts, args.threshold))
        return 1 if any(v.regressed for v in verdicts) else 0

    if not os.path.exists(args.ledger):
        print(f"repro report: no run ledger at {args.ledger}", file=sys.stderr)
        return 2
    try:
        ledger = RunLedger(args.ledger)
    except LedgerError as exc:
        print(f"repro report: {exc}", file=sys.stderr)
        return 2
    try:
        if args.action == "list":
            rows = ledger.list_runs()
            if args.json:
                print(json_module.dumps(rows, indent=2))
            elif not rows:
                print(f"(no runs recorded in {args.ledger})")
            else:
                print("id  when                  command   wall       pairs"
                      "    matches  sound")
                for row in rows:
                    when = time_module.strftime(
                        "%Y-%m-%d %H:%M:%SZ", time_module.gmtime(row["timestamp"])
                    )
                    sound = (
                        "-" if row["sound"] is None else str(bool(row["sound"]))
                    )
                    print(
                        f"{row['id']:<3d} {when}  {row['command']:<9s} "
                        f"{row['wall_s'] * 1e3:>7.1f}ms {row['pairs']:>7d}  "
                        f"{row['matches']:>7d}  {sound}"
                    )
            return 0
        if args.action in ("show", "prom"):
            run_id = args.run if args.run is not None else ledger.latest_id()
            if run_id is None:
                print(
                    f"repro report: no runs recorded in {args.ledger}",
                    file=sys.stderr,
                )
                return 2
            stored = ledger.get(run_id)
            if args.action == "show":
                if args.json:
                    payload = stored.to_dict()
                    payload["run_id"] = stored.run_id
                    print(json_module.dumps(payload, indent=2, sort_keys=True))
                else:
                    print(stored.summary())
                return 0
            text = report_to_prometheus(stored)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as handle:
                    handle.write(text)
                print(f"prometheus exposition written to {args.out}")
            else:
                print(text, end="")
            return 0
        if args.action == "diff":
            print(diff_reports(ledger.get(args.run_a), ledger.get(args.run_b)))
            return 0
        if args.action == "jsonl":
            run_ids = list(args.runs) or ledger.run_ids()
            reports = [ledger.get(run_id) for run_id in run_ids]
            lines = [
                json_module.dumps(record, sort_keys=True)
                for stored in reports
                for record in metrics_to_jsonl_records(stored)
            ]
            if args.out:
                with open(args.out, "w", encoding="utf-8") as handle:
                    handle.write("\n".join(lines) + ("\n" if lines else ""))
                print(f"{len(lines)} records written to {args.out}")
            else:
                for line in lines:
                    print(line)
            return 0
    except LedgerError as exc:
        print(f"repro report: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro report: {exc}", file=sys.stderr)
        return 2
    finally:
        ledger.close()
    raise AssertionError(f"unhandled report action {args.action!r}")


def build_entities_parser() -> argparse.ArgumentParser:
    """The ``repro entities`` argument parser (N-way resolution)."""
    parser = argparse.ArgumentParser(
        prog="repro entities",
        description="N-way entity resolution: build a persisted identity "
        "graph with canonical (golden) entities from named CSV sources, "
        "inspect it, or export the golden records.  A built store serves "
        "/resolve answers (repro serve) with full resolution-log "
        "provenance.",
    )
    actions = parser.add_subparsers(dest="action", metavar="ACTION")
    actions.required = True

    build_p = actions.add_parser(
        "build",
        help="resolve N sources into canonical entities persisted in one "
        "SQLite store (clusters, golden records, resolution log)",
    )
    build_p.add_argument("store_path", help="SQLite store file to build")
    build_p.add_argument(
        "--source",
        action="append",
        required=True,
        metavar="NAME=CSV",
        help="named source relation (repeatable; at least two)",
    )
    build_p.add_argument(
        "--key",
        action="append",
        default=[],
        metavar="NAME=ATTRS",
        help="comma-separated primary key of one named source "
        "(repeatable, one per source)",
    )
    build_p.add_argument(
        "--extended-key",
        required=True,
        help="comma-separated extended key (unified attribute names)",
    )
    build_p.add_argument(
        "--ilfd",
        action="append",
        default=[],
        metavar="RULE",
        help="inline ILFD, e.g. 'speciality=Mughalai -> cuisine=Indian' "
        "(repeatable)",
    )
    build_p.add_argument(
        "--ilfds-csv",
        action="append",
        default=[],
        metavar="FILE",
        help="ILFD table CSV: antecedent columns then one derived column "
        "(repeatable)",
    )
    build_p.add_argument(
        "--ilfds-file",
        action="append",
        default=[],
        metavar="FILE",
        help="ILFD knowledge-base text file, one rule per line (repeatable)",
    )
    build_p.add_argument(
        "--survivorship",
        default="source_priority",
        metavar="SPEC",
        help="comma-joined survivorship chain deciding each golden "
        "value: source_priority[:A>B>...], most_complete, longest, "
        "newest:ATTR (default source_priority = first non-NULL in "
        "declaration order)",
    )
    build_p.add_argument(
        "--prefix",
        default="ent-",
        metavar="TEXT",
        help="canonical entity-id prefix (default 'ent-'; ids are "
        "prefix + 16 hex chars, deterministic across rebuilds)",
    )
    build_p.add_argument(
        "--log-decisions",
        choices=("all", "contested", "none"),
        default="all",
        help="how much survivorship detail to journal in the "
        "entity_resolution_log (default all)",
    )
    build_p.add_argument(
        "--blocker",
        choices=sorted(BLOCKERS),
        help="candidate-pair generation strategy for the pairwise runs "
        "(default: each pair's identifier picks its own)",
    )
    build_p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="parallel workers per pairwise identification run (default 1)",
    )
    build_p.add_argument(
        "--batch-size",
        type=int,
        default=0,
        metavar="N",
        help="persist entities in crash-safe batches of N, each "
        "committed atomically with a progress record; an interrupted "
        "build (even SIGKILL mid-transaction) resumes to the "
        "bit-identical fingerprint on re-run; 0 = one transaction "
        "(default 0)",
    )
    build_p.add_argument(
        "--inject-faults",
        metavar="SPEC",
        help="deterministic fault plan fired at the entities.persist "
        "site (one invocation per batch), e.g. 'entities.persist:kill@2' "
        "for a real mid-build SIGKILL — the chaos harness's hook",
    )
    build_p.add_argument(
        "--trace",
        metavar="FILE",
        help="record a JSON-lines trace (entities.* spans + metrics)",
    )
    build_p.add_argument(
        "--metrics", action="store_true", help="print the metrics summary"
    )
    build_p.add_argument("--quiet", action="store_true", help="suppress printouts")
    build_p.add_argument(
        "--json", action="store_true", help="emit the build report as JSON"
    )

    show_p = actions.add_parser(
        "show",
        help="inspect a built entity store: list entities, or one "
        "entity's golden record and resolution log",
    )
    show_p.add_argument("store_path", help="SQLite store built by 'entities build'")
    show_p.add_argument(
        "--entity",
        metavar="ID",
        help="show one entity: golden record, members, resolution log",
    )
    show_p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    export_p = actions.add_parser(
        "export",
        help="write the golden records to CSV (one row per canonical "
        "entity, with id and contributing sources)",
    )
    export_p.add_argument("store_path", help="SQLite store built by 'entities build'")
    export_p.add_argument(
        "--out", required=True, metavar="FILE", help="CSV file to write"
    )
    export_p.add_argument("--quiet", action="store_true", help="suppress printouts")
    return parser


def _entities_build(args) -> int:
    from repro.core.errors import CoreError
    from repro.entities import (
        EntitiesError,
        IdentityGraph,
        build_entity_store,
        make_survivorship,
    )
    from repro.store import StoreError
    from repro.store.sqlite import SqliteStore

    try:
        sources = _parse_named_sources(args.source, args.key)
        if len(sources) < 2:
            raise ValueError("an entity build needs at least two --source")
        ilfds = _collect_ilfds(args, quiet=args.quiet or args.json)
        policy = make_survivorship(args.survivorship)
    except (OSError, ValueError, EntitiesError) as exc:
        print(f"repro entities: {exc}", file=sys.stderr)
        return 2

    tracer = None
    if args.trace or args.metrics:
        from repro.observability import Tracer

        tracer = Tracer()
    blocker_factory = (
        (lambda: make_blocker(args.blocker)) if args.blocker else None
    )
    injector = None
    if getattr(args, "inject_faults", None):
        from repro.resilience import FaultInjector, FaultPlan, FaultPlanError

        try:
            injector = FaultInjector(FaultPlan.parse(args.inject_faults))
        except FaultPlanError as exc:
            print(f"repro entities: {exc}", file=sys.stderr)
            return 2
    store = None
    try:
        graph = IdentityGraph(
            sources,
            _split_key(args.extended_key),
            ilfds=ilfds,
            blocker_factory=blocker_factory,
            workers=args.workers,
            tracer=tracer,
        )
        store = SqliteStore(args.store_path, tracer=tracer)
        report = build_entity_store(
            graph,
            store,
            policy=policy,
            prefix=args.prefix,
            log_decisions=args.log_decisions,
            tracer=tracer,
            batch_size=args.batch_size if args.batch_size > 0 else None,
            fault_injector=injector,
        )
    except (CoreError, EntitiesError, StoreError, OSError) as exc:
        print(f"repro entities: {exc}", file=sys.stderr)
        return 2
    finally:
        if store is not None:
            store.close()
    if args.json:
        import json as json_module

        print(
            json_module.dumps(
                {
                    "store": args.store_path,
                    "sources": list(report.sources),
                    "entities": report.entities,
                    "members": report.members,
                    "violations": report.violations,
                    "contested": report.contested,
                    "decisions_logged": report.decisions_logged,
                    "survivorship": list(report.survivorship),
                    "fingerprint": report.fingerprint,
                    "sound": report.is_sound,
                },
                indent=2,
            )
        )
    elif not args.quiet:
        print(
            f"built {report.entities} canonical entit(ies) from "
            f"{report.members} member tuple(s) across "
            f"{len(report.sources)} sources ({', '.join(report.sources)})"
        )
        print(
            f"survivorship: {','.join(report.survivorship)}; "
            f"{report.contested} contested decision(s), "
            f"{report.decisions_logged} journaled"
        )
        print(f"fingerprint: {report.fingerprint}")
        if report.is_sound:
            print(f"store written to {args.store_path}")
        else:
            print(
                f"uniqueness VIOLATED: {report.violations} breach(es) "
                "journaled (see 'repro entities show')"
            )
    if tracer is not None:
        if args.metrics and not args.json:
            from repro.observability import format_metrics

            print()
            print(format_metrics(tracer.metrics.snapshot()))
        if args.trace:
            from repro.observability import write_trace_jsonl

            try:
                write_trace_jsonl(tracer, args.trace)
            except OSError as exc:
                print(f"repro entities: cannot write trace: {exc}", file=sys.stderr)
                return 2
    return 0 if report.is_sound else 1


def _entities_show(args) -> int:
    import json as json_module

    from repro.entities import EntityBuildError, verify_entity_store
    from repro.store import StoreError, explain_entity
    from repro.store.sqlite import SqliteStore

    try:
        store = SqliteStore(args.store_path)
    except (StoreError, OSError) as exc:
        print(f"repro entities: {exc}", file=sys.stderr)
        return 2
    try:
        try:
            count, fingerprint = verify_entity_store(store)
        except EntityBuildError as exc:
            print(f"repro entities: {exc}", file=sys.stderr)
            return 2
        if args.entity:
            record = store.get_entity(args.entity)
            if record is None:
                print(
                    f"repro entities: no entity {args.entity!r} in "
                    f"{args.store_path}",
                    file=sys.stderr,
                )
                return 2
            log = store.entity_log(record.entity_id)
            if args.json:
                from repro.serving.service import encode_key_json, encode_row_json

                print(
                    json_module.dumps(
                        {
                            "id": record.entity_id,
                            "ext_key": record.ext_key,
                            "golden": encode_row_json(record.golden),
                            "members": [
                                {"source": source, "key": encode_key_json(key)}
                                for source, key in record.members
                            ],
                            "resolution_log": [entry.payload for entry in log],
                        },
                        indent=2,
                    )
                )
            else:
                print(f"entity {record.entity_id}")
                for name, value in record.golden.items():
                    print(f"  {name} = {value}")
                print("members:")
                for source, key in record.members:
                    rendered = ", ".join(f"{a}={v}" for a, v in key)
                    print(f"  {source}: {rendered}")
                print(explain_entity(log, record.entity_id))
            return 0
        records = list(store.entity_items())
        if args.json:
            print(
                json_module.dumps(
                    {
                        "store": args.store_path,
                        "entities": count,
                        "fingerprint": fingerprint,
                        "ids": [
                            {
                                "id": r.entity_id,
                                "sources": list(r.sources),
                                "members": len(r.members),
                            }
                            for r in records
                        ],
                    },
                    indent=2,
                )
            )
        else:
            print(
                f"{count} canonical entit(ies) in {args.store_path} "
                f"(fingerprint {fingerprint[:16]}…)"
            )
            for record in records:
                print(
                    f"  {record.entity_id}  "
                    f"[{', '.join(record.sources)}]  "
                    f"{len(record.members)} member(s)"
                )
        return 0
    finally:
        store.close()


def _entities_export(args) -> int:
    import csv as csv_module

    from repro.entities import EntityBuildError, load_entities, verify_entity_store
    from repro.relational.nulls import is_null
    from repro.store import StoreError
    from repro.store.sqlite import SqliteStore

    try:
        store = SqliteStore(args.store_path)
    except (StoreError, OSError) as exc:
        print(f"repro entities: {exc}", file=sys.stderr)
        return 2
    try:
        try:
            verify_entity_store(store)
        except EntityBuildError as exc:
            print(f"repro entities: {exc}", file=sys.stderr)
            return 2
        records = load_entities(store)
    finally:
        store.close()
    attributes: List[str] = []
    for record in records:
        for name in record.golden:
            if name not in attributes:
                attributes.append(name)
    try:
        with open(args.out, "w", newline="") as handle:
            writer = csv_module.writer(handle)
            writer.writerow(["entity_id"] + attributes + ["sources"])
            for record in records:
                golden = record.golden
                writer.writerow(
                    [record.entity_id]
                    + [
                        ""
                        if name not in golden or is_null(golden[name])
                        else golden[name]
                        for name in attributes
                    ]
                    + [",".join(record.sources)]
                )
    except OSError as exc:
        print(f"repro entities: cannot write {args.out}: {exc}", file=sys.stderr)
        return 2
    if not getattr(args, "quiet", False):
        print(f"{len(records)} golden record(s) written to {args.out}")
    return 0


def entities_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro entities``: 0 sound/ok, 1 unsound build, 2 fatal."""
    args = build_entities_parser().parse_args(argv)
    if args.action == "build":
        return _entities_build(args)
    if args.action == "show":
        return _entities_show(args)
    return _entities_export(args)


def build_chaos_parser() -> argparse.ArgumentParser:
    """CLI for ``repro chaos``."""
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description=(
            "Run the serving chaos harness: boot real 'repro serve' "
            "subprocesses over a seeded workload, drive concurrent "
            "resolve/ingest traffic under deterministic fault schedules "
            "(including a real SIGKILL + restart), and verify every "
            "run's store resumes with journal verification and agrees "
            "bit-identically with a fault-free reference.  With "
            "--entities, also SIGKILL a batched entity build mid-way "
            "and verify the resumed build seals the reference "
            "fingerprint."
        ),
    )
    parser.add_argument(
        "--workdir",
        default="",
        help="directory for the stores the harness grows "
        "(default: a fresh temporary directory, removed afterwards)",
    )
    parser.add_argument(
        "--schedule",
        action="append",
        default=[],
        metavar="NAME=FAULTS",
        help="run only this named fault schedule, e.g. "
        "kill=serving.request:kill@9 (repeatable; default: the stock "
        "matrix of 10 seeded schedules)",
    )
    parser.add_argument(
        "--entities-count",
        type=int,
        default=12,
        metavar="N",
        help="entities in the seeded workload (default 12)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=3,
        help="workload seed (default 3)",
    )
    parser.add_argument(
        "--entities",
        action="store_true",
        help="also run the entity-build kill/resume chaos check",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full report list as JSON on stdout",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-schedule lines"
    )
    return parser


def chaos_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro chaos``: 0 all schedules converged, 1 divergence, 2 fatal."""
    import json as json_module
    import tempfile

    from repro.resilience.chaos import (
        ChaosError,
        ChaosSchedule,
        run_chaos,
        run_entity_build_chaos,
    )

    args = build_chaos_parser().parse_args(argv)
    schedules = None
    if args.schedule:
        schedules = []
        for spec in args.schedule:
            name, _, faults = spec.partition("=")
            if not name or not faults:
                print(
                    f"repro chaos: --schedule {spec!r} must be NAME=FAULTS",
                    file=sys.stderr,
                )
                return 2
            schedules.append(ChaosSchedule(name, faults))

    cleanup = None
    workdir = args.workdir
    if not workdir:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        workdir = cleanup.name
    else:
        os.makedirs(workdir, exist_ok=True)
    try:
        reports = run_chaos(
            workdir,
            schedules=schedules,
            n_entities=args.entities_count,
            seed=args.seed,
        )
        entity_report = None
        if args.entities:
            entity_report = run_entity_build_chaos(workdir)
    except ChaosError as exc:
        print(f"repro chaos: {exc}", file=sys.stderr)
        return 2
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    failed = [r for r in reports if not r.ok]
    if args.json:
        payload = {
            "schedules": [r.as_dict() for r in reports],
            "entities": entity_report,
            "ok": not failed
            and (entity_report is None or entity_report["ok"]),
        }
        print(json_module.dumps(payload, indent=2, sort_keys=True))
    elif not args.quiet:
        for r in reports:
            verdict = "ok" if r.ok else "FAILED"
            print(
                f"repro chaos: {r.schedule:24s} {verdict}  "
                f"ingests={r.ingests} retries={r.retries} "
                f"restarts={r.restarts} sheds={r.sheds}"
            )
            for failure in r.failures:
                print(f"repro chaos:   - {failure}")
        if entity_report is not None:
            verdict = "ok" if entity_report["ok"] else "FAILED"
            print(
                f"repro chaos: {'entity-build-kill':24s} {verdict}  "
                f"bit_identical={entity_report['bit_identical']}"
            )
    if failed or (entity_report is not None and not entity_report["ok"]):
        return 1
    return 0


def build_scenarios_parser() -> argparse.ArgumentParser:
    """The ``repro scenarios`` argument parser."""
    from repro.scenarios import GRIDS

    parser = argparse.ArgumentParser(
        prog="repro scenarios",
        description="Run the adversarial scenario matrix: every grid "
        "cell (source count × skew × noise × conflict × schema drift × "
        "delta order × duplicates × blocker) through the real pipeline "
        "with conformance oracles on, precision/recall scored against "
        "carried ground truth, and the ILFD drift detector re-checking "
        "baseline-mined constraints against the delta feeds.",
    )
    parser.add_argument(
        "--grid",
        choices=tuple(GRIDS),
        default="default",
        help="named grid to run: 'default' is the full matrix, "
        "'reduced' the CI-sized slice, 'smoke' two quick cells "
        "(default: default)",
    )
    parser.add_argument(
        "--cell",
        action="append",
        default=[],
        metavar="ID",
        help="run only this cell id (repeatable; see --list for the "
        "ids a grid contains)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the grid's cell ids and exit",
    )
    parser.add_argument(
        "--entities",
        type=int,
        default=None,
        metavar="N",
        help="override the grid's universe size per cell (identification "
        "is O(N^2) per source pair)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help="override the grid's base seed (each cell derives its own "
        "seed from this and its cell id)",
    )
    parser.add_argument(
        "--baseline",
        metavar="DIR",
        help="check the canonical report against the committed baseline "
        "for this grid in DIR (per-cell field-level drift reasons on "
        "divergence)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="re-freeze the baseline in --baseline DIR instead of "
        "checking it (the new report goes through code review)",
    )
    parser.add_argument(
        "--inject-drift",
        action="store_true",
        help="canary mode: seed an ILFD conflict into delta-bearing "
        "cells WITHOUT marking it expected — the run must go red "
        "(exit 1) with unexpected constraint-drift findings",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full canonical scenario report as JSON on stdout",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the human-readable summaries (exit status still "
        "reports the verdict)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record a JSON-lines trace (spans + scenarios.* metrics)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the scenarios metrics summary after the run",
    )
    _add_telemetry_arguments(parser)
    return parser


def scenarios_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro scenarios``: 0 green, 1 cell/drift/baseline failure, 2 fatal."""
    import json as json_module

    from repro.scenarios import (
        ScenarioBaselineError,
        ScenarioError,
        ScenarioReport,
        ScenarioRunner,
        check_baseline,
        grid_by_name,
        update_baseline,
    )

    args = build_scenarios_parser().parse_args(argv)
    if args.update_baseline and not args.baseline:
        print("repro scenarios: --update-baseline requires --baseline DIR",
              file=sys.stderr)
        return 2
    if args.entities is not None and args.entities < 4:
        print("repro scenarios: --entities must be >= 4", file=sys.stderr)
        return 2
    if args.inject_drift and (args.baseline and not args.update_baseline):
        # Injected drift deliberately changes the report; comparing it
        # against the healthy baseline would double-report the canary.
        print("repro scenarios: --inject-drift cannot be combined with a "
              "--baseline check", file=sys.stderr)
        return 2
    if args.inject_drift and args.update_baseline:
        print("repro scenarios: refusing to freeze a baseline with "
              "injected drift", file=sys.stderr)
        return 2

    try:
        specs = grid_by_name(
            args.grid, entities=args.entities, seed=args.seed
        )
    except ScenarioError as exc:
        print(f"repro scenarios: {exc}", file=sys.stderr)
        return 2
    if args.cell:
        known = {spec.cell_id for spec in specs}
        unknown = [c for c in args.cell if c not in known]
        if unknown:
            print(
                f"repro scenarios: unknown cell id(s) {unknown} in grid "
                f"{args.grid!r}; use --list to see the ids",
                file=sys.stderr,
            )
            return 2
        specs = [spec for spec in specs if spec.cell_id in args.cell]
    if args.list:
        for spec in specs:
            print(spec.cell_id)
        return 0

    profile_mode = _profile_mode(args)
    tracer = None
    recorder = None
    if args.trace or args.metrics or args.ledger or profile_mode != "off":
        from repro.observability import Tracer

        tracer = Tracer(profile=profile_mode)
    if args.ledger:
        from repro.telemetry import RunRecorder

        recorder = RunRecorder(
            "scenarios", _telemetry_config(args, "scenarios")
        )

    try:
        runner = ScenarioRunner(
            specs, inject_drift=args.inject_drift, tracer=tracer
        )
        results = runner.run()
    except ScenarioError as exc:
        print(f"repro scenarios: {exc}", file=sys.stderr)
        return 2

    report = ScenarioReport.from_results(args.grid, results)
    degraded = not report.ok
    output = report.to_dict()
    output["summary"] = report.summary()
    if not args.quiet and not args.json:
        for cell in report.cells:
            verdict = "ok" if cell["ok"] else "FAILED"
            drift = cell["drift"]
            print(
                f"repro scenarios: {cell['cell']:40s} {verdict}  "
                f"p={cell['precision']:.3f} r={cell['recall']:.3f} "
                f"drift={len(drift['findings'])}"
                + (f" unexpected={drift['unexpected']}"
                   if drift["unexpected"] else "")
            )

    if args.baseline:
        try:
            if args.update_baseline:
                path = update_baseline(args.baseline, report)
                output["baseline"] = {"updated": path}
                if not args.quiet and not args.json:
                    print(f"scenario baseline re-frozen: {path}")
            else:
                drift = check_baseline(args.baseline, report)
                output["baseline"] = {"drift": drift}
                degraded = degraded or bool(drift)
                if tracer is not None:
                    tracer.metrics.inc(
                        "scenarios.baseline_drift", len(drift)
                    )
                if not args.quiet and not args.json:
                    if drift:
                        print("scenario baseline DRIFTED:")
                        for cell_id, detail in sorted(drift.items()):
                            print(f"  {cell_id}: {detail}")
                    else:
                        print("scenario baseline: no drift")
        except ScenarioBaselineError as exc:
            print(f"repro scenarios: {exc}", file=sys.stderr)
            return 2

    output["ok"] = not degraded
    if args.json:
        print(json_module.dumps(output, indent=2, sort_keys=False))
    elif not args.quiet:
        summary = report.summary()
        print(
            "scenarios: "
            + ("all green" if not degraded else "DEGRADED")
            + f" ({summary['cells_ok']}/{summary['cells']} cells ok, "
            f"{summary['drift_findings']} drift finding(s), "
            f"{summary['unexpected_drift']} unexpected)"
        )
    if tracer is not None:
        if profile_mode != "off" and not args.quiet and not args.json:
            from repro.observability import format_profile

            print()
            print(format_profile(tracer))
        if args.metrics:
            from repro.observability import format_metrics

            print()
            print(format_metrics(tracer.metrics.snapshot()))
        if args.trace:
            from repro.observability import write_trace_jsonl

            try:
                write_trace_jsonl(tracer, args.trace)
            except OSError as exc:
                print(f"repro scenarios: cannot write trace: {exc}",
                      file=sys.stderr)
                return 2
    status = 1 if degraded else 0
    if recorder is not None:
        ledger_status = _append_run_report(
            args,
            "scenarios",
            recorder,
            tracer,
            {"exit_status": status, "ok": not degraded},
        )
        status = max(status, ledger_status)
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: dispatches the subcommands (see ``_SUBCOMMANDS``).

    A first argument that is not a subcommand falls through to
    ``identify`` — the historical ``repro-identify R.csv S.csv ...``
    invocation keeps working unchanged.
    """
    arguments = list(argv) if argv is not None else sys.argv[1:]
    if arguments and arguments[0] in _SUBCOMMANDS:
        command, rest = arguments[0], arguments[1:]
        if command == "version":
            print(f"repro {package_version()}")
            return 0
        if command == "stats":
            return stats_main(rest)
        if command == "checkpoint":
            return checkpoint_main(rest)
        if command == "resume":
            return resume_main(rest)
        if command == "explain-pair":
            return explain_pair_main(rest)
        if command == "conform":
            return conform_main(rest)
        if command == "report":
            return report_main(rest)
        if command == "serve":
            return serve_main(rest)
        if command == "entities":
            return entities_main(rest)
        if command == "chaos":
            return chaos_main(rest)
        if command == "scenarios":
            return scenarios_main(rest)
        return identify_main(rest)
    if arguments == ["--version"]:
        print(f"repro {package_version()}")
        return 0
    return identify_main(arguments)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `repro identify ... | head`
        sys.exit(0)

"""The employee/performance domain (the paper's Section-4 motivation).

"A company wanting to dismiss employees with sales performance below
expectation requires matching between the employee records in one
database and their performance records in another database.  It is
crucial that the set of matched records be correct; otherwise, some
people may be wrongly fired."

Employee(name, dept, title) with key (name, dept) is matched against
Performance(name, division, rating) with key (name, division) — no
common candidate key, since the same person name appears in several
departments (homonyms).  The dept → division ILFD family (each
department belongs to exactly one division) lets the identifier derive
division for employee tuples, enabling the extended key
``{name, division}`` … except where two departments of one division
employ a same-named person, in which case ``{name, division}`` is not
unique and the soundness verifier flags the key — the workload
generator avoids such collisions so the shipped workloads are sound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.workloads.generator import Entity, SplitSpec, Workload, split_universe

DIVISIONS: Dict[str, Tuple[str, ...]] = {
    "Sales": ("InsideSales", "FieldSales", "Accounts"),
    "Engineering": ("Systems", "Avionics", "Controls", "Software"),
    "Operations": ("Assembly", "Logistics", "Quality"),
    "Corporate": ("Finance", "Legal", "HR"),
}

DEPT_DIVISION: Dict[str, str] = {
    dept: division
    for division, depts in DIVISIONS.items()
    for dept in depts
}

TITLES: Tuple[str, ...] = (
    "Associate", "Senior", "Principal", "Manager", "Director",
)

FIRST_NAMES: Tuple[str, ...] = (
    "Avery", "Blake", "Casey", "Drew", "Emery", "Flynn", "Gray",
    "Harper", "Indigo", "Jordan", "Kendall", "Logan", "Morgan",
    "Noel", "Oakley", "Parker", "Quinn", "Riley", "Sage", "Taylor",
)

LAST_NAMES: Tuple[str, ...] = (
    "Anderson", "Brooks", "Chen", "Davis", "Erikson", "Flores",
    "Gupta", "Hansen", "Ibrahim", "Jensen", "Kim", "Larson",
    "Nguyen", "Olson", "Patel", "Quist", "Ramirez", "Schmidt",
)

RATINGS: Tuple[str, ...] = ("exceeds", "meets", "below")


@dataclass(frozen=True)
class EmployeeWorkloadSpec:
    """Parameters of an employee/performance workload."""

    n_entities: int = 200
    name_pool: int = 120
    overlap: float = 0.6
    r_only: float = 0.2
    s_only: float = 0.2
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_entities <= 0:
            raise ValueError("n_entities must be positive")


def _generate_universe(spec: EmployeeWorkloadSpec) -> List[Entity]:
    rng = random.Random(spec.seed)
    pool = [
        f"{FIRST_NAMES[i % len(FIRST_NAMES)]} "
        f"{LAST_NAMES[(i // len(FIRST_NAMES)) % len(LAST_NAMES)]}"
        + ("" if i < len(FIRST_NAMES) * len(LAST_NAMES) else f" {i}")
        for i in range(spec.name_pool)
    ]
    depts = sorted(DEPT_DIVISION)
    used_dept: Dict[str, Set[str]] = {name: set() for name in pool}
    used_division: Dict[str, Set[str]] = {name: set() for name in pool}
    universe: List[Entity] = []
    attempts = 0
    while len(universe) < spec.n_entities and attempts < spec.n_entities * 50:
        attempts += 1
        name = rng.choice(pool)
        dept = rng.choice(depts)
        division = DEPT_DIVISION[dept]
        # Keep (name, dept) and (name, division) both unique so the
        # extended key {name, division} stays a key of the universe.
        if dept in used_dept[name] or division in used_division[name]:
            continue
        used_dept[name].add(dept)
        used_division[name].add(division)
        universe.append(
            {
                "name": name,
                "dept": dept,
                "division": division,
                "title": rng.choice(TITLES),
                "rating": rng.choice(RATINGS),
            }
        )
    if len(universe) < spec.n_entities:
        raise ValueError(
            f"could not place {spec.n_entities} employees with a name pool "
            f"of {spec.name_pool}; enlarge name_pool"
        )
    return universe


def employee_workload(spec: EmployeeWorkloadSpec) -> Workload:
    """Employee/Performance relations plus the dept → division family."""
    universe = _generate_universe(spec)
    ilfds = ILFDSet(
        ILFD({"dept": dept}, {"division": division}, name=f"dd:{dept}")
        for dept, division in sorted(DEPT_DIVISION.items())
    )
    split = SplitSpec(
        r_attributes=("name", "dept", "title"),
        s_attributes=("name", "division", "rating"),
        r_key=("name", "dept"),
        s_key=("name", "division"),
        overlap=spec.overlap,
        r_only=spec.r_only,
        s_only=spec.s_only,
        seed=spec.seed,
    )
    r, s, truth = split_universe(universe, split, r_name="Employee", s_name="Performance")
    return Workload(
        r=r,
        s=s,
        ilfds=ilfds,
        extended_key=("name", "division"),
        truth=truth,
        universe=universe,
    )

"""Workload containers and universe splitting.

A *universe* is a list of real-world entities (attribute dicts) whose
extended key is unique by construction.  :func:`split_universe` projects
two overlapping subsets onto two different schemas — the Figure-1
situation: some entities modelled in both relations, some in only one —
and records the ground-truth matching pairs in the same ``KeyValues``
format the core's matching table uses, so results compare directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.core.matching_table import KeyValues
from repro.ilfd.ilfd import ILFDSet
from repro.relational.attribute import Attribute
from repro.relational.nulls import NULL, is_null
from repro.relational.relation import Relation, RelationBuilder
from repro.relational.schema import Schema

Entity = Dict[str, Any]
Pair = Tuple[KeyValues, KeyValues]


@dataclass
class Workload:
    """A ready-to-identify synthetic workload.

    Attributes
    ----------
    r, s:
        The two source relations (unified namespace).
    ilfds:
        ILFDs valid for the generating universe.
    extended_key:
        The attribute set unique over the universe.
    truth:
        Ground-truth matching pairs, as (R-key, S-key) ``KeyValues``.
    universe:
        The generating entities (for diagnostics and Figure-1 counts).
    """

    r: Relation
    s: Relation
    ilfds: ILFDSet
    extended_key: Tuple[str, ...]
    truth: FrozenSet[Pair]
    universe: List[Entity] = field(default_factory=list)

    @property
    def integrated_world_size(self) -> int:
        """Entities modelled by at least one relation (Figure 1)."""
        return len(self.r) + len(self.s) - len(self.truth)


@dataclass(frozen=True)
class SplitSpec:
    """How to split a universe into R and S.

    Attributes
    ----------
    r_attributes / s_attributes:
        Schema of each side (projection of the entity attributes).
    r_key / s_key:
        Candidate key of each side — must be unique over the universe's
        projection for the split to be well-formed.
    overlap:
        Fraction of entities modelled in *both* relations.
    r_only / s_only:
        Fractions modelled in exactly one relation (with overlap they
        need not sum to 1; leftovers go unmodelled, like e4 in Figure 1).
    seed:
        PRNG seed for the assignment.
    """

    r_attributes: Tuple[str, ...]
    s_attributes: Tuple[str, ...]
    r_key: Tuple[str, ...]
    s_key: Tuple[str, ...]
    overlap: float = 0.5
    r_only: float = 0.25
    s_only: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        total = self.overlap + self.r_only + self.s_only
        if not 0.0 <= total <= 1.0 + 1e-9:
            raise ValueError(
                f"overlap + r_only + s_only must be ≤ 1, got {total}"
            )
        if not set(self.r_key) <= set(self.r_attributes):
            raise ValueError("r_key must be within r_attributes")
        if not set(self.s_key) <= set(self.s_attributes):
            raise ValueError("s_key must be within s_attributes")


def _key_values_of(entity: Entity, attributes: Sequence[str]) -> KeyValues:
    return tuple((attr, entity[attr]) for attr in sorted(attributes))


def split_universe(
    universe: Sequence[Entity],
    spec: SplitSpec,
    *,
    r_name: str = "R",
    s_name: str = "S",
) -> Tuple[Relation, Relation, FrozenSet[Pair]]:
    """Split *universe* into two relations plus ground-truth pairs.

    Entities are shuffled deterministically and assigned to
    both/R-only/S-only/neither buckets per the spec's fractions.
    Duplicate projections (two entities projecting onto identical R rows)
    are skipped on that side — they would violate its key.
    """
    rng = random.Random(spec.seed)
    order = list(universe)
    rng.shuffle(order)

    n = len(order)
    n_both = int(n * spec.overlap)
    n_r_only = int(n * spec.r_only)
    n_s_only = int(n * spec.s_only)
    both = order[:n_both]
    r_only = order[n_both : n_both + n_r_only]
    s_only = order[n_both + n_r_only : n_both + n_r_only + n_s_only]

    r_schema = Schema(
        [Attribute(a) for a in spec.r_attributes], keys=[spec.r_key]
    )
    s_schema = Schema(
        [Attribute(a) for a in spec.s_attributes], keys=[spec.s_key]
    )
    r_builder = RelationBuilder(r_schema, name=r_name)
    s_builder = RelationBuilder(s_schema, name=s_name)

    truth: Set[Pair] = set()
    for entity in both:
        r_row = {a: entity[a] for a in spec.r_attributes}
        s_row = {a: entity[a] for a in spec.s_attributes}
        if r_builder.try_add(r_row) and s_builder.try_add(s_row):
            truth.add(
                (
                    _key_values_of(entity, spec.r_key),
                    _key_values_of(entity, spec.s_key),
                )
            )
    for entity in r_only:
        r_builder.try_add({a: entity[a] for a in spec.r_attributes})
    for entity in s_only:
        s_builder.try_add({a: entity[a] for a in spec.s_attributes})
    return r_builder.build(), s_builder.build(), frozenset(truth)


@dataclass(frozen=True)
class SideSpec:
    """One source of an n-way split: schema, key, membership probability."""

    name: str
    attributes: Tuple[str, ...]
    key: Tuple[str, ...]
    membership: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.membership <= 1.0:
            raise ValueError("membership must be in [0, 1]")
        if not set(self.key) <= set(self.attributes):
            raise ValueError("key must be within attributes")


def split_universe_many(
    universe: Sequence[Entity],
    sides: Sequence[SideSpec],
    *,
    seed: int = 0,
) -> Tuple[Dict[str, Relation], Dict[Tuple[str, str], FrozenSet[Pair]]]:
    """Split a universe into any number of overlapping sources.

    Each entity independently joins each side with that side's
    ``membership`` probability.  Returns the relations plus per-source-
    pair ground truth: for sides (a, b) in declaration order, the set of
    (a-key, b-key) pairs of entities modelled in both.
    """
    if len(sides) < 2:
        raise ValueError("need at least two sides")
    rng = random.Random(seed)
    builders = {
        side.name: RelationBuilder(
            Schema([Attribute(a) for a in side.attributes], keys=[side.key]),
            name=side.name,
        )
        for side in sides
    }
    placed: Dict[str, List[Entity]] = {side.name: [] for side in sides}
    for entity in universe:
        for side in sides:
            if rng.random() >= side.membership:
                continue
            row = {a: entity[a] for a in side.attributes}
            if builders[side.name].try_add(row):
                placed[side.name].append(entity)
    relations = {name: builder.build() for name, builder in builders.items()}

    truth: Dict[Tuple[str, str], FrozenSet[Pair]] = {}
    for i, first in enumerate(sides):
        first_ids = {id(e) for e in placed[first.name]}
        for second in sides[i + 1 :]:
            pairs: Set[Pair] = set()
            for entity in placed[second.name]:
                if id(entity) in first_ids:
                    pairs.add(
                        (
                            _key_values_of(entity, first.key),
                            _key_values_of(entity, second.key),
                        )
                    )
            truth[(first.name, second.name)] = frozenset(pairs)
    return relations, truth


def rename_attributes(
    relation: Relation, mapping: Dict[str, str], *, name: str | None = None
) -> Relation:
    """Rename attributes of a relation (schema drift: renamed columns).

    Keys are renamed along; row contents are untouched, so ground-truth
    cluster labels keyed by *values* survive the transformation and the
    inverse mapping restores the original relation exactly.
    """
    schema = relation.schema.rename(mapping)
    rows = [
        {mapping.get(attr, attr): value for attr, value in row.items()}
        for row in relation
    ]
    return Relation(
        schema,
        rows,
        name=name if name is not None else relation.name,
        enforce_keys=False,
    )


def split_attribute(
    relation: Relation,
    attribute: str,
    into: Tuple[str, str],
    splitter: Callable[[Any], Tuple[Any, Any]],
    *,
    name: str | None = None,
) -> Relation:
    """Split one attribute into two (schema drift: split columns).

    ``splitter(value)`` must return one value per part; NULL splits into
    NULLs.  The split attribute's slot in every candidate key is replaced
    by *both* parts, preserving key semantics whenever the splitter is
    injective.
    """
    first, second = into
    schema = relation.schema
    if attribute not in schema:
        raise ValueError(f"unknown attribute {attribute!r}")
    for part in into:
        if part in schema and part != attribute:
            raise ValueError(f"split target {part!r} already exists")
    attrs: List[Attribute] = []
    for attr in schema.attributes:
        if attr.name == attribute:
            attrs.extend([Attribute(first), Attribute(second)])
        else:
            attrs.append(attr)
    keys = [
        (set(key) - {attribute}) | {first, second} if attribute in key else set(key)
        for key in schema.keys
    ]
    rows = []
    for row in relation:
        values = {a: v for a, v in row.items() if a != attribute}
        old = row[attribute]
        if is_null(old):
            values[first], values[second] = NULL, NULL
        else:
            values[first], values[second] = splitter(old)
        rows.append(values)
    return Relation(
        Schema(attrs, keys),
        rows,
        name=name if name is not None else relation.name,
        enforce_keys=False,
    )


def merge_attributes(
    relation: Relation,
    parts: Tuple[str, str],
    into: str,
    merger: Callable[[Any, Any], Any],
    *,
    name: str | None = None,
) -> Relation:
    """Merge two attributes back into one (the inverse of a split).

    The merged attribute takes the position of the first part; a pair
    with any NULL part merges to NULL.  Candidate keys mentioning either
    part have both replaced by the merged attribute.
    """
    first, second = parts
    schema = relation.schema
    for part in parts:
        if part not in schema:
            raise ValueError(f"unknown attribute {part!r}")
    if into in schema and into not in parts:
        raise ValueError(f"merge target {into!r} already exists")
    attrs: List[Attribute] = []
    for attr in schema.attributes:
        if attr.name == first:
            attrs.append(Attribute(into))
        elif attr.name != second:
            attrs.append(attr)
    keys = [
        (set(key) - {first, second}) | {into}
        if (first in key or second in key)
        else set(key)
        for key in schema.keys
    ]
    rows = []
    for row in relation:
        values = {a: v for a, v in row.items() if a not in parts}
        left, right = row[first], row[second]
        if is_null(left) or is_null(right):
            values[into] = NULL
        else:
            values[into] = merger(left, right)
        rows.append(values)
    return Relation(
        Schema(attrs, keys),
        rows,
        name=name if name is not None else relation.name,
        enforce_keys=False,
    )


def with_domain_attribute(
    relation: Relation, value: str, *, attribute: str = "domain"
) -> Relation:
    """Add the Figure-2 domain attribute with a constant value.

    "To differentiate between the two tuples, we include an extra
    attribute in each relation to indicate the domain attribute of value
    'DB1'."  The attribute also joins every candidate key, since tuples
    from different source databases are a priori distinct under it.
    """
    schema = relation.schema
    new_schema = Schema(
        list(schema.attributes) + [Attribute(attribute)],
        keys=[set(key) | {attribute} for key in schema.keys],
    )
    rows = [dict(row, **{attribute: value}) for row in relation]
    return Relation(new_schema, rows, name=relation.name, enforce_keys=False)

"""The restaurant domain: the paper's examples, exact and scaled.

Provides the three worked examples as ready-made workloads (Tables 1, 2,
and 5, with their keys, ILFDs, and ground truth), plus a seeded generator
producing arbitrarily large universes with the same structure:

- restaurant names are drawn from a bounded pool, so names repeat across
  entities — the instance-level homonym pressure of Section 2.1;
- ``(name, cuisine)`` and ``(name, speciality)`` are unique by
  construction (they are the two sides' candidate keys);
- speciality functionally determines cuisine (the I1–I4 family), street
  determines county (the I7 family), and a configurable fraction of
  entities gets an I5/I6-style ``(name, street) → speciality`` ILFD —
  the knob controlling how many R tuples can be completed, i.e. the
  technique's recall.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.relational.attribute import Attribute
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.workloads.generator import Entity, SplitSpec, Workload, split_universe

CUISINE_SPECIALITIES: Dict[str, Tuple[str, ...]] = {
    "Chinese": ("Hunan", "Sichuan", "Cantonese", "DimSum"),
    "Indian": ("Mughalai", "Tandoori", "Dosa"),
    "Greek": ("Gyros", "Souvlaki"),
    "Italian": ("Pasta", "Pizza", "Risotto"),
    "Mexican": ("Tacos", "Mole"),
    "American": ("Burgers", "BBQ", "Diner"),
    "Thai": ("PadThai", "GreenCurry"),
    "French": ("Crepes", "Bistro"),
}

SPECIALITY_CUISINE: Dict[str, str] = {
    speciality: cuisine
    for cuisine, specialities in CUISINE_SPECIALITIES.items()
    for speciality in specialities
}

NAME_STEMS: Tuple[str, ...] = (
    "TwinCities", "VillageWok", "OldCountry", "ExpressCafe", "Anjuman",
    "ItsGreek", "GoldenDragon", "SilverSpoon", "RiverView", "LakeSide",
    "UptownGrill", "CornerBistro", "RedLantern", "BlueOrchid", "GreenLeaf",
    "SunriseDiner", "MoonPalace", "StarOfIndia", "CapitolCafe", "ParkAvenue",
    "GrandCentral", "LittleItaly", "CasaBonita", "ThaiOrchid", "LeBistro",
)

COUNTIES: Tuple[str, ...] = (
    "Ramsey", "Hennepin", "Dakota", "Anoka", "Washington", "Scott",
)

ROAD_NAMES: Tuple[str, ...] = (
    "Wash.Ave.", "Univ.Ave.", "FrontAve.", "LeSalleAve.", "Penn.Ave.",
    "Co.B2", "Co.B3", "GrandAve.", "SnellingAve.", "LakeSt.",
)


@dataclass(frozen=True)
class RestaurantWorkloadSpec:
    """Parameters of a scaled restaurant workload."""

    n_entities: int = 100
    name_pool: int = 25
    derivable_fraction: float = 1.0
    overlap: float = 0.5
    r_only: float = 0.25
    s_only: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_entities <= 0:
            raise ValueError("n_entities must be positive")
        if not 0.0 <= self.derivable_fraction <= 1.0:
            raise ValueError("derivable_fraction must be in [0, 1]")


def _generate_universe(spec: RestaurantWorkloadSpec) -> Tuple[List[Entity], List[ILFD]]:
    rng = random.Random(spec.seed)
    names = [
        NAME_STEMS[i % len(NAME_STEMS)]
        + ("" if i < len(NAME_STEMS) else str(i // len(NAME_STEMS)))
        for i in range(spec.name_pool)
    ]
    used_by_name: Dict[str, Set[Tuple[str, str]]] = {name: set() for name in names}
    universe: List[Entity] = []
    per_entity_ilfds: List[ILFD] = []
    specialities = sorted(SPECIALITY_CUISINE)
    attempts = 0
    while len(universe) < spec.n_entities and attempts < spec.n_entities * 50:
        attempts += 1
        name = rng.choice(names)
        speciality = rng.choice(specialities)
        cuisine = SPECIALITY_CUISINE[speciality]
        taken = used_by_name[name]
        if any(c == cuisine or s == speciality for (c, s) in taken):
            continue  # would break a candidate key for this name
        taken.add((cuisine, speciality))
        county = rng.choice(COUNTIES)
        street = f"{len(universe) + 1} {rng.choice(ROAD_NAMES)}"
        entity: Entity = {
            "name": name,
            "cuisine": cuisine,
            "speciality": speciality,
            "street": street,
            "county": county,
        }
        universe.append(entity)
        per_entity_ilfds.append(
            ILFD({"street": street}, {"county": county}, name=f"street{len(universe)}")
        )
        if rng.random() < spec.derivable_fraction:
            per_entity_ilfds.append(
                ILFD(
                    {"name": name, "street": street},
                    {"speciality": speciality},
                    name=f"loc{len(universe)}",
                )
            )
    if len(universe) < spec.n_entities:
        raise ValueError(
            f"could not place {spec.n_entities} entities with a name pool "
            f"of {spec.name_pool}; enlarge name_pool"
        )
    family = [
        ILFD({"speciality": speciality}, {"cuisine": cuisine}, name=f"sc:{speciality}")
        for speciality, cuisine in sorted(SPECIALITY_CUISINE.items())
    ]
    return universe, family + per_entity_ilfds


def restaurant_universe(
    spec: RestaurantWorkloadSpec,
) -> Tuple[List[Entity], List[ILFD]]:
    """The generating universe plus its ILFDs, without splitting.

    Exposed for consumers that need the raw entities with their implicit
    cluster labels (the list index) — notably the adversarial scenario
    generator (:mod:`repro.scenarios`), which performs its own N-way,
    skewed, duplicate-heavy splits.
    """
    return _generate_universe(spec)


def restaurant_workload(spec: RestaurantWorkloadSpec) -> Workload:
    """A scaled Example-3-shaped workload with ground truth."""
    universe, ilfds = _generate_universe(spec)
    split = SplitSpec(
        r_attributes=("name", "cuisine", "street"),
        s_attributes=("name", "speciality", "county"),
        r_key=("name", "cuisine"),
        s_key=("name", "speciality"),
        overlap=spec.overlap,
        r_only=spec.r_only,
        s_only=spec.s_only,
        seed=spec.seed,
    )
    r, s, truth = split_universe(universe, split)
    return Workload(
        r=r,
        s=s,
        ilfds=ILFDSet(ilfds),
        extended_key=("name", "cuisine", "speciality"),
        truth=truth,
        universe=universe,
    )


# ----------------------------------------------------------------------
# The paper's exact examples
# ----------------------------------------------------------------------
def _string_schema(names: Tuple[str, ...], key: Tuple[str, ...]) -> Schema:
    return Schema([Attribute(n) for n in names], keys=[key])


def restaurant_example_1() -> Workload:
    """Table 1: R(name, street, cuisine) / S(name, city, manager).

    No common candidate key; the one true match (the two VillageWok
    tuples) is only establishable with the extra semantic knowledge the
    paper describes, so the baseline benches use this to show common-key
    matching going wrong.
    """
    r = Relation(
        _string_schema(("name", "street", "cuisine"), ("name", "street")),
        [
            ("VillageWok", "Wash.Ave.", "Chinese"),
            ("Ching", "Co.B Rd.", "Chinese"),
            ("OldCountry", "Co.B2 Rd.", "American"),
        ],
        name="R",
    )
    s = Relation(
        _string_schema(("name", "city", "manager"), ("name", "city")),
        [
            ("VillageWok", "Mpls", "Hwang"),
            ("OldCountry", "Roseville", "Libby"),
            ("ExpressCafe", "Burnsville", "Tom"),
        ],
        name="S",
    )
    ilfds = ILFDSet(
        [
            # "Wash.Ave. is only in city Mpls" and "the restaurant owned
            # by Hwang is only on Wash.Ave." (Section 2.1).
            ILFD({"street": "Wash.Ave."}, {"city": "Mpls"}, name="W1"),
            ILFD({"manager": "Hwang"}, {"street": "Wash.Ave."}, name="W2"),
        ]
    )
    truth = frozenset(
        {
            (
                (("name", "VillageWok"), ("street", "Wash.Ave.")),
                (("city", "Mpls"), ("name", "VillageWok")),
            )
        }
    )
    return Workload(
        r=r,
        s=s,
        ilfds=ilfds,
        extended_key=("name", "street", "city"),
        truth=truth,
    )


def restaurant_example_2() -> Workload:
    """Table 2: the Mughalai → Indian derivation (one match)."""
    r = Relation(
        _string_schema(("name", "cuisine", "street"), ("name", "cuisine")),
        [
            ("TwinCities", "Chinese", "Wash.Ave."),
            ("TwinCities", "Indian", "Univ.Ave."),
        ],
        name="R",
    )
    s = Relation(
        _string_schema(("name", "speciality", "city"), ("name", "speciality")),
        [("TwinCities", "Mughalai", "St.Paul")],
        name="S",
    )
    ilfds = ILFDSet(
        [ILFD({"speciality": "Mughalai"}, {"cuisine": "Indian"}, name="I4")]
    )
    truth = frozenset(
        {
            (
                (("cuisine", "Indian"), ("name", "TwinCities")),
                (("name", "TwinCities"), ("speciality", "Mughalai")),
            )
        }
    )
    return Workload(
        r=r,
        s=s,
        ilfds=ilfds,
        extended_key=("name", "cuisine"),
        truth=truth,
    )


def restaurant_example_3() -> Workload:
    """Table 5 with ILFDs I1–I8 (three matches, Table 7)."""
    r = Relation(
        _string_schema(("name", "cuisine", "street"), ("name", "cuisine")),
        [
            ("TwinCities", "Chinese", "Co.B2"),
            ("TwinCities", "Indian", "Co.B3"),
            ("It'sGreek", "Greek", "FrontAve."),
            ("Anjuman", "Indian", "LeSalleAve."),
            ("VillageWok", "Chinese", "Wash.Ave."),
        ],
        name="R",
    )
    s = Relation(
        _string_schema(("name", "speciality", "county"), ("name", "speciality")),
        [
            ("TwinCities", "Hunan", "Roseville"),
            ("TwinCities", "Sichuan", "Hennepin"),
            ("It'sGreek", "Gyros", "Ramsey"),
            ("Anjuman", "Mughalai", "Mpls."),
        ],
        name="S",
    )
    ilfds = ILFDSet(
        [
            ILFD({"speciality": "Hunan"}, {"cuisine": "Chinese"}, name="I1"),
            ILFD({"speciality": "Sichuan"}, {"cuisine": "Chinese"}, name="I2"),
            ILFD({"speciality": "Gyros"}, {"cuisine": "Greek"}, name="I3"),
            ILFD({"speciality": "Mughalai"}, {"cuisine": "Indian"}, name="I4"),
            ILFD(
                {"name": "TwinCities", "street": "Co.B2"},
                {"speciality": "Hunan"},
                name="I5",
            ),
            ILFD(
                {"name": "Anjuman", "street": "LeSalleAve."},
                {"speciality": "Mughalai"},
                name="I6",
            ),
            ILFD({"street": "FrontAve."}, {"county": "Ramsey"}, name="I7"),
            ILFD(
                {"name": "It'sGreek", "county": "Ramsey"},
                {"speciality": "Gyros"},
                name="I8",
            ),
        ]
    )
    truth = frozenset(
        {
            (
                (("cuisine", "Chinese"), ("name", "TwinCities")),
                (("name", "TwinCities"), ("speciality", "Hunan")),
            ),
            (
                (("cuisine", "Greek"), ("name", "It'sGreek")),
                (("name", "It'sGreek"), ("speciality", "Gyros")),
            ),
            (
                (("cuisine", "Indian"), ("name", "Anjuman")),
                (("name", "Anjuman"), ("speciality", "Mughalai")),
            ),
        }
    )
    return Workload(
        r=r,
        s=s,
        ilfds=ilfds,
        extended_key=("name", "cuisine", "speciality"),
        truth=truth,
    )

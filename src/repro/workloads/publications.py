"""The bibliography domain: publications across two citation databases.

A fitting domain for this paper — which itself exists as an ICDE 1993
conference paper *and* an extended 1996 Information Sciences article with
the same title and authors.  Those are **distinct publication entities**
that naive title matching would merge; venue and year separate them.

- CiteDB stores (title, venue, pages) with key (title, venue);
- LibDB stores (title, year, publisher) with key (title, year);
- no common candidate key, and titles repeat across venues/years (the
  conference-vs-journal homonym).

ILFDs: the venue → publisher family (every venue has one publisher), the
venue → field family, and per-entity (title, pages) → venue and
(title, publisher) → year knowledge at a configurable coverage — the
recall knob, as in the restaurant domain.  The extended key is
``{title, venue, year}``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.workloads.generator import Entity, SplitSpec, Workload, split_universe

VENUE_PUBLISHER: Dict[str, str] = {
    "ICDE": "IEEE",
    "VLDB": "VLDB-Endowment",
    "SIGMOD": "ACM",
    "PODS": "ACM",
    "InfSci": "Elsevier",
    "TKDE": "IEEE",
    "TODS": "ACM",
    "CACM": "ACM",
    "InfSys": "Elsevier",
    "DKE": "Elsevier",
}

VENUE_FIELD: Dict[str, str] = {
    "ICDE": "databases",
    "VLDB": "databases",
    "SIGMOD": "databases",
    "PODS": "theory",
    "InfSci": "information-systems",
    "TKDE": "databases",
    "TODS": "databases",
    "CACM": "general",
    "InfSys": "information-systems",
    "DKE": "databases",
}

TITLE_STEMS: Tuple[str, ...] = (
    "Entity Identification in Database Integration",
    "Schema Integration in Federated Systems",
    "Query Processing over Heterogeneous Sources",
    "A Theory of Attribute Equivalence",
    "Resolving Instance Level Conflicts",
    "Probabilistic Record Matching",
    "Key Equivalence in Multidatabases",
    "Semantic Constraints for Integration",
    "Outer Joins and Missing Information",
    "Functional Dependencies Revisited",
    "Object Identification in Interoperable Systems",
    "The Breakdown of the Information Model",
    "Knowledge Discovery for Data Cleaning",
    "Sound and Complete Matching Rules",
    "Incremental View Maintenance",
)

YEARS: Tuple[str, ...] = tuple(str(year) for year in range(1988, 1997))


@dataclass(frozen=True)
class PublicationWorkloadSpec:
    """Parameters of a bibliography workload."""

    n_entities: int = 120
    title_pool: int = 15
    derivable_fraction: float = 1.0
    overlap: float = 0.5
    r_only: float = 0.25
    s_only: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_entities <= 0:
            raise ValueError("n_entities must be positive")
        if not 0.0 <= self.derivable_fraction <= 1.0:
            raise ValueError("derivable_fraction must be in [0, 1]")


def _generate_universe(
    spec: PublicationWorkloadSpec,
) -> Tuple[List[Entity], List[ILFD]]:
    rng = random.Random(spec.seed)
    titles = [
        TITLE_STEMS[i % len(TITLE_STEMS)]
        + ("" if i < len(TITLE_STEMS) else f" ({i // len(TITLE_STEMS)})")
        for i in range(spec.title_pool)
    ]
    venues = sorted(VENUE_PUBLISHER)
    used_venue: Dict[str, Set[str]] = {t: set() for t in titles}
    used_year: Dict[str, Set[str]] = {t: set() for t in titles}
    universe: List[Entity] = []
    ilfds: List[ILFD] = []
    attempts = 0
    while len(universe) < spec.n_entities and attempts < spec.n_entities * 60:
        attempts += 1
        title = rng.choice(titles)
        venue = rng.choice(venues)
        year = rng.choice(YEARS)
        # (title, venue) and (title, year) are the sources' keys, and
        # {title, venue, year} must be unique over the universe.
        if venue in used_venue[title] or year in used_year[title]:
            continue
        used_venue[title].add(venue)
        used_year[title].add(year)
        pages = f"{rng.randint(1, 400)}-{rng.randint(401, 800)}"
        entity: Entity = {
            "title": title,
            "venue": venue,
            "year": year,
            "publisher": VENUE_PUBLISHER[venue],
            "field": VENUE_FIELD[venue],
            "pages": pages,
        }
        universe.append(entity)
        if rng.random() < spec.derivable_fraction:
            # CiteDB side: complete the missing year from citation detail
            ilfds.append(
                ILFD(
                    {"title": title, "pages": pages},
                    {"year": year},
                    name=f"py{len(universe)}",
                )
            )
            # LibDB side: recover the venue from publisher-level knowledge
            ilfds.append(
                ILFD(
                    {"title": title, "publisher": VENUE_PUBLISHER[venue], "year": year},
                    {"venue": venue},
                    name=f"pv{len(universe)}",
                )
            )
    if len(universe) < spec.n_entities:
        raise ValueError(
            f"could not place {spec.n_entities} publications with a title "
            f"pool of {spec.title_pool}; enlarge title_pool"
        )
    families = [
        ILFD({"venue": venue}, {"publisher": publisher}, name=f"vp:{venue}")
        for venue, publisher in sorted(VENUE_PUBLISHER.items())
    ]
    families.extend(
        ILFD({"venue": venue}, {"field": field}, name=f"vf:{venue}")
        for venue, field in sorted(VENUE_FIELD.items())
    )
    return universe, families + ilfds


def publication_workload(spec: PublicationWorkloadSpec) -> Workload:
    """CiteDB/LibDB relations plus ground truth and ILFDs."""
    universe, ilfds = _generate_universe(spec)
    split = SplitSpec(
        r_attributes=("title", "venue", "pages"),
        s_attributes=("title", "year", "publisher"),
        r_key=("title", "venue"),
        s_key=("title", "year"),
        overlap=spec.overlap,
        r_only=spec.r_only,
        s_only=spec.s_only,
        seed=spec.seed,
    )
    r, s, truth = split_universe(universe, split, r_name="CiteDB", s_name="LibDB")
    return Workload(
        r=r,
        s=s,
        ilfds=ILFDSet(ilfds),
        extended_key=("title", "venue", "year"),
        truth=truth,
        universe=universe,
    )

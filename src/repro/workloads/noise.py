"""Noise injection: attribute-value conflicts, missing and dirty data.

Section 2 lists the instance-level problems that remain *after* entity
identification: "Attribute value conflict … may be caused by data scaling
conflict, inconsistent data, or missing data."  The clean generators
produce perfectly consistent splits; these corruptors manufacture the
messy versions so the conflict-detection and resolution machinery
(:mod:`repro.core.diagnostics`) and the adversarial scenario matrix
(:mod:`repro.scenarios`) have something real to chew on:

- :func:`corrupt_values` rewrites a fraction of non-key values
  (inconsistent data),
- :func:`drop_values` NULLs out a fraction of non-key values (missing
  data),
- :func:`typo_values` substitutes or deletes one character (entry
  errors),
- :func:`transpose_values` swaps two adjacent characters (the classic
  keyboard transposition),
- :func:`format_drift_values` re-renders a value without changing its
  content (case flips, padding, punctuation loss — representation
  drift between feeds),
- :func:`apply_noise` composes all of the above from one
  :class:`NoiseSpec` through one shared PRNG.

Key attributes are never touched — corrupting a key would change *which*
entity a tuple models, not just a property value, and the paper assumes
identification inputs are accurate (footnote 3).

Reproducibility contract: every helper threads **one explicit seeded**
:class:`random.Random` through all of its draws (pass ``rng=`` to share a
generator across several calls; the ``seed`` keyword merely constructs a
fresh one).  No helper ever touches the module-global :mod:`random`
state, so a scenario cell built from a seed is bit-reproducible, and
:class:`Corruption` records round-trip to JSON so the exact change log
can be committed next to a baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.relational.nulls import NULL, is_null
from repro.relational.relation import Relation
from repro.relational.row import Row

__all__ = [
    "Corruption",
    "NoiseSpec",
    "apply_noise",
    "corrupt_values",
    "drop_values",
    "format_drift_values",
    "transpose_values",
    "typo_values",
]

_NULL_MARKER = {"$null": True}
"""JSON stand-in for the NULL singleton (not expressible as a JSON value)."""


def _encode_value(value: Any) -> Any:
    return dict(_NULL_MARKER) if is_null(value) else value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and value == _NULL_MARKER:
        return NULL
    return value


@dataclass(frozen=True)
class Corruption:
    """One injected change: (row index, attribute, old → new, kind)."""

    row_index: int
    attribute: str
    old_value: Any
    new_value: Any
    kind: str = "marker"

    def to_json(self) -> Dict[str, Any]:
        """JSON-ready rendering; NULL values become ``{"$null": true}``."""
        return {
            "row_index": self.row_index,
            "attribute": self.attribute,
            "old_value": _encode_value(self.old_value),
            "new_value": _encode_value(self.new_value),
            "kind": self.kind,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Corruption":
        """Inverse of :meth:`to_json` (exact round trip, NULL included)."""
        return cls(
            row_index=data["row_index"],
            attribute=data["attribute"],
            old_value=_decode_value(data["old_value"]),
            new_value=_decode_value(data["new_value"]),
            kind=data.get("kind", "marker"),
        )


def _resolve_rng(rng: Optional[random.Random], seed: int) -> random.Random:
    return rng if rng is not None else random.Random(seed)


def _corruptible_attributes(relation: Relation, attributes: Sequence[str] | None) -> List[str]:
    key = relation.schema.primary_key
    eligible = [
        name
        for name in (attributes or relation.schema.names)
        if name not in key
    ]
    if not eligible:
        raise ValueError("no non-key attributes available to corrupt")
    return eligible


def _check_rate(rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")


def _rebuild(relation: Relation, rows: List[Row]) -> Relation:
    rebuilt = Relation(relation.schema, (), name=relation.name, enforce_keys=False)
    rebuilt._rows = tuple(rows)
    rebuilt._row_set = frozenset(rows)
    return rebuilt


def _mutate_cells(
    relation: Relation,
    rate: float,
    rng: random.Random,
    attributes: Sequence[str] | None,
    mutate: Callable[[Any, random.Random], Any],
    kind: str,
) -> Tuple[Relation, List[Corruption]]:
    """The shared engine: visit every eligible cell once, in row-major
    schema order, drawing exactly one uniform variate per non-NULL cell
    (so two runs with equal-state generators corrupt identical cells)."""
    _check_rate(rate)
    eligible = _corruptible_attributes(relation, attributes)
    rows: List[Row] = []
    log: List[Corruption] = []
    for index, row in enumerate(relation):
        values: Dict[str, Any] = dict(row)
        for attribute in eligible:
            old = values[attribute]
            if is_null(old) or rng.random() >= rate:
                continue
            new = mutate(old, rng)
            if new == old:
                continue
            values[attribute] = new
            log.append(Corruption(index, attribute, old, new, kind))
        rows.append(Row(values))
    return _rebuild(relation, rows), log


def corrupt_values(
    relation: Relation,
    rate: float,
    *,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    attributes: Sequence[str] | None = None,
    marker: str = "~corrupted~",
) -> Tuple[Relation, List[Corruption]]:
    """Rewrite a fraction of non-key values (inconsistent data).

    Each (row, eligible attribute) cell is independently corrupted with
    probability *rate*; corrupted values get the old value prefixed by
    *marker*, so tests can recognise them.  Returns the corrupted relation
    plus the change log.
    """
    return _mutate_cells(
        relation,
        rate,
        _resolve_rng(rng, seed),
        attributes,
        lambda old, _rng: f"{marker}{old}",
        "marker",
    )


def drop_values(
    relation: Relation,
    rate: float,
    *,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    attributes: Sequence[str] | None = None,
) -> Tuple[Relation, List[Corruption]]:
    """NULL out a fraction of non-key values (missing data)."""
    return _mutate_cells(
        relation,
        rate,
        _resolve_rng(rng, seed),
        attributes,
        lambda _old, _rng: NULL,
        "drop",
    )


_TYPO_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def _typo(old: Any, rng: random.Random) -> Any:
    """Substitute one character (or delete it, for longer strings)."""
    if not isinstance(old, str) or not old:
        return old
    position = rng.randrange(len(old))
    if len(old) > 3 and rng.random() < 0.3:
        return old[:position] + old[position + 1 :]
    replacement = rng.choice(_TYPO_ALPHABET)
    while replacement == old[position]:
        replacement = rng.choice(_TYPO_ALPHABET)
    return old[:position] + replacement + old[position + 1 :]


def typo_values(
    relation: Relation,
    rate: float,
    *,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    attributes: Sequence[str] | None = None,
) -> Tuple[Relation, List[Corruption]]:
    """Inject single-character typos (substitution or deletion).

    Only string values are touched; non-string cells survive unchanged
    even when selected.
    """
    return _mutate_cells(
        relation, rate, _resolve_rng(rng, seed), attributes, _typo, "typo"
    )


def _transpose(old: Any, rng: random.Random) -> Any:
    """Swap two adjacent characters."""
    if not isinstance(old, str) or len(old) < 2:
        return old
    position = rng.randrange(len(old) - 1)
    swapped = (
        old[:position] + old[position + 1] + old[position] + old[position + 2 :]
    )
    return swapped


def transpose_values(
    relation: Relation,
    rate: float,
    *,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    attributes: Sequence[str] | None = None,
) -> Tuple[Relation, List[Corruption]]:
    """Swap two adjacent characters (keyboard transpositions)."""
    return _mutate_cells(
        relation,
        rate,
        _resolve_rng(rng, seed),
        attributes,
        _transpose,
        "transposition",
    )


def _format_drift(old: Any, rng: random.Random) -> Any:
    """Re-render the value without changing its content."""
    if not isinstance(old, str) or not old:
        return old
    style = rng.randrange(3)
    if style == 0:
        return old.upper() if old != old.upper() else old.lower()
    if style == 1:
        return f" {old} "
    stripped = "".join(ch for ch in old if ch not in ".,-_'")
    return stripped if stripped else old


def format_drift_values(
    relation: Relation,
    rate: float,
    *,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    attributes: Sequence[str] | None = None,
) -> Tuple[Relation, List[Corruption]]:
    """Representation drift: case flips, padding, punctuation loss.

    The value still *means* the same thing — exactly the corruption the
    paper's exact-equality matching is blind to, so scenario recall
    under format drift measures the cost of byte-level comparison.
    """
    return _mutate_cells(
        relation,
        rate,
        _resolve_rng(rng, seed),
        attributes,
        _format_drift,
        "format-drift",
    )


@dataclass(frozen=True)
class NoiseSpec:
    """A composite corruption profile, applied through one shared PRNG.

    Rates are per-cell probabilities for each corruption kind, applied
    in the fixed order: marker corruption, typos, transpositions,
    format drift, drops.  One :class:`random.Random` seeded with
    ``seed`` is threaded through every stage, so the whole profile is a
    single reproducible stream.
    """

    corrupt: float = 0.0
    typo: float = 0.0
    transpose: float = 0.0
    format_drift: float = 0.0
    drop: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for field_name in ("corrupt", "typo", "transpose", "format_drift", "drop"):
            _check_rate(getattr(self, field_name))

    @property
    def is_clean(self) -> bool:
        """True iff this spec never corrupts anything."""
        return not any(
            (self.corrupt, self.typo, self.transpose, self.format_drift, self.drop)
        )


def apply_noise(
    relation: Relation,
    spec: NoiseSpec,
    *,
    rng: Optional[random.Random] = None,
    attributes: Sequence[str] | None = None,
) -> Tuple[Relation, List[Corruption]]:
    """Apply a whole :class:`NoiseSpec`, one corruption kind at a time.

    Returns the noisy relation plus the concatenated change log (stage
    order, so replaying the log left-to-right reproduces the output).
    """
    shared = _resolve_rng(rng, spec.seed)
    stages: Tuple[Tuple[float, Callable[..., Tuple[Relation, List[Corruption]]]], ...] = (
        (spec.corrupt, corrupt_values),
        (spec.typo, typo_values),
        (spec.transpose, transpose_values),
        (spec.format_drift, format_drift_values),
        (spec.drop, drop_values),
    )
    log: List[Corruption] = []
    current = relation
    for rate, stage in stages:
        if rate <= 0.0:
            continue
        current, stage_log = stage(current, rate, rng=shared, attributes=attributes)
        log.extend(stage_log)
    return current, log

"""Noise injection: attribute-value conflicts and missing data.

Section 2 lists the instance-level problems that remain *after* entity
identification: "Attribute value conflict … may be caused by data scaling
conflict, inconsistent data, or missing data."  The clean generators
produce perfectly consistent splits; these corruptors manufacture the
messy versions so the conflict-detection and resolution machinery
(:mod:`repro.core.diagnostics`) has something real to chew on:

- :func:`corrupt_values` rewrites a fraction of non-key values
  (inconsistent data),
- :func:`drop_values` NULLs out a fraction of non-key values (missing
  data).

Key attributes are never touched — corrupting a key would change *which*
entity a tuple models, not just a property value, and the paper assumes
identification inputs are accurate (footnote 3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.relational.nulls import NULL, is_null
from repro.relational.relation import Relation
from repro.relational.row import Row


@dataclass(frozen=True)
class Corruption:
    """One injected change: (row index, attribute, old value, new value)."""

    row_index: int
    attribute: str
    old_value: Any
    new_value: Any


def _corruptible_attributes(relation: Relation, attributes: Sequence[str] | None) -> List[str]:
    key = relation.schema.primary_key
    eligible = [
        name
        for name in (attributes or relation.schema.names)
        if name not in key
    ]
    if not eligible:
        raise ValueError("no non-key attributes available to corrupt")
    return eligible


def corrupt_values(
    relation: Relation,
    rate: float,
    *,
    seed: int = 0,
    attributes: Sequence[str] | None = None,
    marker: str = "~corrupted~",
) -> Tuple[Relation, List[Corruption]]:
    """Rewrite a fraction of non-key values (inconsistent data).

    Each (row, eligible attribute) cell is independently corrupted with
    probability *rate*; corrupted values get the old value prefixed by
    *marker*, so tests can recognise them.  Returns the corrupted relation
    plus the change log.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    rng = random.Random(seed)
    eligible = _corruptible_attributes(relation, attributes)
    rows: List[Row] = []
    log: List[Corruption] = []
    for index, row in enumerate(relation):
        values: Dict[str, Any] = dict(row)
        for attribute in eligible:
            old = values[attribute]
            if is_null(old) or rng.random() >= rate:
                continue
            new = f"{marker}{old}"
            values[attribute] = new
            log.append(Corruption(index, attribute, old, new))
        rows.append(Row(values))
    corrupted = Relation(relation.schema, (), name=relation.name, enforce_keys=False)
    corrupted._rows = tuple(rows)
    corrupted._row_set = frozenset(rows)
    return corrupted, log


def drop_values(
    relation: Relation,
    rate: float,
    *,
    seed: int = 0,
    attributes: Sequence[str] | None = None,
) -> Tuple[Relation, List[Corruption]]:
    """NULL out a fraction of non-key values (missing data)."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    rng = random.Random(seed)
    eligible = _corruptible_attributes(relation, attributes)
    rows: List[Row] = []
    log: List[Corruption] = []
    for index, row in enumerate(relation):
        values: Dict[str, Any] = dict(row)
        for attribute in eligible:
            old = values[attribute]
            if is_null(old) or rng.random() >= rate:
                continue
            values[attribute] = NULL
            log.append(Corruption(index, attribute, old, NULL))
        rows.append(Row(values))
    sparse = Relation(relation.schema, (), name=relation.name, enforce_keys=False)
    sparse._rows = tuple(rows)
    sparse._row_set = frozenset(rows)
    return sparse, log

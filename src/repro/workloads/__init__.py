"""Synthetic workload generators.

The paper evaluates with a worked example; the benches additionally need
laptop-scale synthetic workloads with *known ground truth* to measure
soundness/completeness of the technique and the baselines, and to size
the scaling experiments.  Generators are deterministic (seeded) and
produce data **consistent with their ILFD sets by construction** — the
paper's standing assumption (Section 4.1).

- :mod:`repro.workloads.generator` -- the :class:`Workload` container and
  the universe-splitting machinery (overlap, missing attributes,
  instance-level homonyms, optional domain attributes à la Figure 2),
- :mod:`repro.workloads.restaurants` -- the paper's running domain,
  scaled: names reused across entities (homonym pressure), speciality →
  cuisine and street → county ILFD families, per-entity (name, street) →
  speciality ILFDs,
- :mod:`repro.workloads.employees` -- the Section-4 motivation (matching
  employee records to performance records before dismissals), with a
  dept → division ILFD family.
"""

from repro.workloads.generator import (
    SideSpec,
    SplitSpec,
    Workload,
    merge_attributes,
    rename_attributes,
    split_attribute,
    split_universe,
    split_universe_many,
    with_domain_attribute,
)
from repro.workloads.restaurants import (
    RestaurantWorkloadSpec,
    restaurant_example_1,
    restaurant_example_2,
    restaurant_example_3,
    restaurant_universe,
    restaurant_workload,
)
from repro.workloads.employees import (
    EmployeeWorkloadSpec,
    employee_workload,
)
from repro.workloads.noise import (
    Corruption,
    NoiseSpec,
    apply_noise,
    corrupt_values,
    drop_values,
    format_drift_values,
    transpose_values,
    typo_values,
)
from repro.workloads.publications import (
    PublicationWorkloadSpec,
    publication_workload,
)

__all__ = [
    "Corruption",
    "EmployeeWorkloadSpec",
    "NoiseSpec",
    "PublicationWorkloadSpec",
    "RestaurantWorkloadSpec",
    "SideSpec",
    "SplitSpec",
    "Workload",
    "apply_noise",
    "corrupt_values",
    "drop_values",
    "employee_workload",
    "format_drift_values",
    "merge_attributes",
    "publication_workload",
    "rename_attributes",
    "restaurant_example_1",
    "restaurant_example_2",
    "restaurant_example_3",
    "restaurant_universe",
    "restaurant_workload",
    "split_attribute",
    "split_universe",
    "split_universe_many",
    "transpose_values",
    "typo_values",
    "with_domain_attribute",
]

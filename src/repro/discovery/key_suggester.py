"""Searching for sound extended keys.

The prototype makes the user propose an extended key and then verifies it
("Message: The extended key causes unsound matching result." on failure).
This module automates that propose-verify loop: it enumerates candidate
attribute subsets (smallest first), runs the full identification for
each, and reports the minimal ones whose matching table satisfies the
uniqueness constraint — together with how many matches each finds, since
among sound keys the DBA usually wants the most productive one.

The suggestions are instance-level: a key that verifies on today's data
may still be wrong for the integrated world (the paper's Figure-2
lesson), so the DBA confirms, exactly as with mined ILFDs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.extended_key import ExtendedKey
from repro.core.identifier import EntityIdentifier
from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.relational.relation import Relation


@dataclass(frozen=True)
class KeySuggestion:
    """One verified extended-key candidate."""

    key: Tuple[str, ...]
    match_count: int
    is_sound: bool

    def __str__(self) -> str:
        verdict = "sound" if self.is_sound else "UNSOUND"
        return f"{{{', '.join(self.key)}}}: {self.match_count} matches, {verdict}"


def suggest_extended_keys(
    r: Relation,
    s: Relation,
    candidates: Sequence[str],
    *,
    ilfds: ILFDSet | Iterable[ILFD] = (),
    max_size: Optional[int] = None,
    require_covering: bool = False,
    include_unsound: bool = False,
) -> List[KeySuggestion]:
    """Enumerate candidate extended keys and verify each.

    Parameters
    ----------
    r, s:
        The (unified) source relations.
    candidates:
        The semantically equivalent attributes eligible for the key
        (the prototype's Name/Spec/Cui menu).
    ilfds:
        Available ILFDs for deriving missing values.
    max_size:
        Largest subset size to try (default: all of *candidates*).
    require_covering:
        Only report keys of the paper's ``K1 ∪ K2 ∪ Ā`` shape, i.e.
        containing both relations' primary keys.
    include_unsound:
        Also report failing candidates (with ``is_sound=False``) so the
        DBA sees *why* smaller keys were rejected.

    Sound suggestions are *minimal*: a sound key suppresses all its
    supersets (matching on a superset can only find fewer or equal
    matches while costing more knowledge).
    """
    limit = len(candidates) if max_size is None else min(max_size, len(candidates))
    ilfd_list = list(ilfds)
    suggestions: List[KeySuggestion] = []
    sound_keys: List[frozenset] = []
    for size in range(1, limit + 1):
        for combo in combinations(candidates, size):
            key_set = frozenset(combo)
            if any(existing <= key_set for existing in sound_keys):
                continue  # a sound subset already suffices
            extended = ExtendedKey(list(combo))
            if require_covering and not extended.covers_keys(r, s):
                continue
            identifier = EntityIdentifier(
                r, s, extended, ilfds=ilfd_list, derive_ilfd_distinctness=False
            )
            matching = identifier.matching_table()
            report = identifier.verify()
            if report.is_sound:
                sound_keys.append(key_set)
                suggestions.append(
                    KeySuggestion(tuple(combo), len(matching), True)
                )
            elif include_unsound:
                suggestions.append(
                    KeySuggestion(tuple(combo), len(matching), False)
                )
    suggestions.sort(
        key=lambda sug: (not sug.is_sound, len(sug.key), -sug.match_count, sug.key)
    )
    return suggestions

"""Mining candidate ILFDs from relation instances.

An ILFD ``(A1=a1) ∧ … ∧ (An=an) → (B=b)`` holds in an instance when every
tuple matching the antecedent has ``B = b``.  The miner enumerates
antecedent value patterns up to a size bound, measures each candidate's

- **support** — how many tuples match the antecedent (non-NULL), and
- **confidence** — the largest fraction of those agreeing on one
  consequent value,

and emits candidates above the thresholds.  Confidence-1.0 candidates are
consistent with the given instances (exceptionless); anything below 1.0
is only a *heuristic* suggestion in the paper's Section-2.2 sense and is
clearly marked.  All suggestions need DBA confirmation: an instance-level
regularity is a necessary but not sufficient condition for a constraint
on the integrated world.

Pruning keeps the search tractable and the output non-redundant:

- antecedent patterns below ``min_support`` are skipped along with all
  their extensions (support is antitone in the pattern),
- a candidate implied by an already-accepted exceptionless candidate
  (same consequent, antecedent superset) is suppressed.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from itertools import combinations
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.relational.nulls import is_null
from repro.relational.relation import Relation


@dataclass(frozen=True)
class MinedILFD:
    """One mined candidate with its instance statistics."""

    ilfd: ILFD
    support: int
    confidence: float

    @property
    def is_exceptionless(self) -> bool:
        """True iff no tuple of the mined instances contradicts it."""
        return self.confidence == 1.0

    def __str__(self) -> str:
        return (
            f"{self.ilfd!r}  [support={self.support}, "
            f"confidence={self.confidence:.3f}]"
        )


def _pattern_groups(
    rows: Sequence[Dict[str, Any]],
    antecedent_attrs: Tuple[str, ...],
) -> Dict[Tuple[Any, ...], List[Dict[str, Any]]]:
    groups: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = defaultdict(list)
    for row in rows:
        values = tuple(row.get(attr) for attr in antecedent_attrs)
        if any(value is None or is_null(value) for value in values):
            continue
        groups[values].append(row)
    return groups


def mine_ilfds(
    relation: Relation,
    *,
    max_antecedent: int = 2,
    min_support: int = 2,
    min_confidence: float = 1.0,
    targets: Optional[Iterable[str]] = None,
) -> List[MinedILFD]:
    """Mine candidate ILFDs from one relation instance.

    Parameters
    ----------
    relation:
        The instance to mine.
    max_antecedent:
        Largest antecedent pattern size to enumerate.
    min_support:
        Minimum matching tuples for a pattern to be considered.
    min_confidence:
        Minimum confidence to emit (1.0 = only exceptionless candidates).
    targets:
        Restrict consequent attributes (default: all attributes).

    Returns candidates sorted by (antecedent size, -support, repr) so
    more general, better-supported rules come first.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError(f"min_confidence must be in (0, 1], got {min_confidence}")
    if min_support < 1:
        raise ValueError("min_support must be ≥ 1")
    names = list(relation.schema.names)
    wanted = set(targets) if targets is not None else set(names)
    rows = [dict(row) for row in relation]

    found: List[MinedILFD] = []
    exceptionless: Dict[Tuple[str, Any], List[ILFD]] = defaultdict(list)
    blocked_patterns: set = set()

    for size in range(1, max_antecedent + 1):
        for antecedent_attrs in combinations(names, size):
            if any(
                frozenset(sub) in blocked_patterns
                for sub in combinations(antecedent_attrs, size - 1)
                if size > 1
            ):
                continue
            groups = _pattern_groups(rows, antecedent_attrs)
            all_below = bool(groups)
            for values, matched in groups.items():
                if len(matched) < min_support:
                    continue
                all_below = False
                antecedent = dict(zip(antecedent_attrs, values))
                for consequent_attr in names:
                    if consequent_attr in antecedent_attrs:
                        continue
                    if consequent_attr not in wanted:
                        continue
                    tally = Counter(
                        row[consequent_attr]
                        for row in matched
                        if not is_null(row.get(consequent_attr))
                    )
                    if not tally:
                        continue
                    value, count = tally.most_common(1)[0]
                    confidence = count / sum(tally.values())
                    if confidence < min_confidence:
                        continue
                    candidate = ILFD(antecedent, {consequent_attr: value})
                    if _is_subsumed(candidate, exceptionless):
                        continue
                    mined = MinedILFD(candidate, len(matched), confidence)
                    found.append(mined)
                    if mined.is_exceptionless:
                        key = (consequent_attr, value)
                        exceptionless[key].append(candidate)
            if all_below and groups:
                # every group is under-supported; extensions can only shrink
                blocked_patterns.add(frozenset(antecedent_attrs))
    found.sort(
        key=lambda m: (len(m.ilfd.antecedent), -m.support, repr(m.ilfd))
    )
    return found


def _is_subsumed(
    candidate: ILFD,
    exceptionless: Dict[Tuple[str, Any], List[ILFD]],
) -> bool:
    """True iff an accepted exceptionless rule implies *candidate*."""
    (consequent,) = candidate.consequent
    for accepted in exceptionless.get((consequent.attribute, consequent.value), ()):
        if accepted.antecedent < candidate.antecedent:
            return True
    return False


def mine_from_relations(
    relations: Sequence[Relation],
    *,
    max_antecedent: int = 2,
    min_support: int = 2,
    min_confidence: float = 1.0,
    targets: Optional[Iterable[str]] = None,
) -> List[MinedILFD]:
    """Mine across several instances, keeping cross-instance consistency.

    A candidate mined from one relation is dropped when any *other*
    relation (that stores the relevant attributes) contains a
    counter-example — the paper's setting has several databases modelling
    one world, so a sound suggestion must hold in all of them.  Support
    is summed over the instances that can evaluate the rule.
    """
    merged: Dict[ILFD, MinedILFD] = {}
    for relation in relations:
        for mined in mine_ilfds(
            relation,
            max_antecedent=max_antecedent,
            min_support=1,
            min_confidence=min_confidence,
            targets=targets,
        ):
            existing = merged.get(mined.ilfd)
            if existing is None:
                merged[mined.ilfd] = mined
            else:
                merged[mined.ilfd] = MinedILFD(
                    mined.ilfd,
                    existing.support + mined.support,
                    min(existing.confidence, mined.confidence),
                )
    out: List[MinedILFD] = []
    for mined in merged.values():
        attrs = mined.ilfd.antecedent_attributes | mined.ilfd.consequent_attributes
        violated = any(
            attrs <= set(relation.schema.names)
            and any(mined.ilfd.violated_by(row) for row in relation)
            for relation in relations
        )
        if violated or mined.support < min_support:
            continue
        out.append(mined)
    out.sort(key=lambda m: (len(m.ilfd.antecedent), -m.support, repr(m.ilfd)))
    return out


def as_ilfd_set(mined: Iterable[MinedILFD], *, exceptionless_only: bool = True) -> ILFDSet:
    """Collect mined candidates into an ILFDSet for the identifier."""
    return ILFDSet(
        m.ilfd
        for m in mined
        if m.is_exceptionless or not exceptionless_only
    )

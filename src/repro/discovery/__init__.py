"""Knowledge acquisition for entity identification.

The paper leaves the *supply* of semantic knowledge to people and tools:

    "Advanced techniques in knowledge discovery may also suggest some
    identity or distinctness rules that have been overlooked by the
    database administrator."  (Section 3.2)

    "Such semantic information can be supplied either by database
    administrators during schema integration or through some knowledge
    acquisition tools."  (Section 7)

This subpackage is that knowledge-acquisition tool:

- :mod:`repro.discovery.ilfd_miner` -- mine candidate ILFDs from relation
  instances (value-level association patterns with support/confidence;
  only exceptionless candidates are *sound* suggestions, and every
  suggestion remains subject to DBA confirmation — an instance-level
  regularity is necessary, not sufficient, for an integrated-world
  constraint),
- :mod:`repro.discovery.key_suggester` -- search for minimal extended keys
  that pass the prototype's soundness verification on the given
  instances (automating the setup_extkey/verify loop of Section 6).
"""

from repro.discovery.ilfd_miner import (
    MinedILFD,
    mine_ilfds,
    mine_from_relations,
)
from repro.discovery.key_suggester import (
    KeySuggestion,
    suggest_extended_keys,
)

__all__ = [
    "KeySuggestion",
    "MinedILFD",
    "mine_from_relations",
    "mine_ilfds",
    "suggest_extended_keys",
]

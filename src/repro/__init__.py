"""repro — Entity Identification in Database Integration.

A from-scratch reproduction of Lim, Srivastava, Prabhakar & Richardson,
"Entity Identification in Database Integration" (ICDE 1993; extended in
Information Sciences 89, 1996): sound entity identification across
relations that share **no common candidate key**, via extended-key
equivalence and instance-level functional dependencies (ILFDs).

Quickstart::

    from repro import EntityIdentifier, ILFD, Relation, Schema, Attribute

    R = Relation(Schema([Attribute("name"), Attribute("cuisine"),
                         Attribute("street")], keys=[("name", "cuisine")]),
                 [("TwinCities", "Indian", "Univ.Ave.")], name="R")
    S = Relation(Schema([Attribute("name"), Attribute("speciality")],
                        keys=[("name", "speciality")]),
                 [("TwinCities", "Mughalai")], name="S")
    ident = EntityIdentifier(
        R, S, ["name", "cuisine"],
        ilfds=[ILFD({"speciality": "Mughalai"}, {"cuisine": "Indian"})],
    )
    result = ident.run()            # matching table + soundness report
    integrated = ident.integrate()  # T_RS

Subpackages: :mod:`repro.relational` (algebra substrate),
:mod:`repro.ilfd` (ILFD theory), :mod:`repro.rules` (identity and
distinctness rules), :mod:`repro.core` (the identification pipeline),
:mod:`repro.prolog` (mini-Prolog engine + the paper's prototype),
:mod:`repro.baselines` (the Section-2.2 approaches),
:mod:`repro.workloads` (seeded synthetic workloads with ground truth),
:mod:`repro.observability` (opt-in pipeline tracing and metrics).
"""

from repro.relational import (
    NULL,
    Attribute,
    Domain,
    Relation,
    Schema,
    format_relation,
    full_outer_join,
    natural_join,
    non_null_eq,
    project,
    read_csv,
    rename,
    select,
    union,
    write_csv,
)
from repro.ilfd import (
    Condition,
    DerivationEngine,
    DerivationPolicy,
    ILFD,
    ILFDSet,
    ILFDTable,
    closure,
    implies,
    minimal_cover,
    prove,
    saturate,
)
from repro.discovery import (
    mine_from_relations,
    mine_ilfds,
    suggest_extended_keys,
)
from repro.federation import IncrementalIdentifier, VirtualIntegratedView
from repro.observability import (
    NO_OP_TRACER,
    MetricsRegistry,
    NoOpTracer,
    Span,
    Tracer,
    format_metrics,
    format_span_tree,
    format_trace_summary,
    read_trace_jsonl,
    write_trace_jsonl,
)
from repro.rules import (
    DistinctnessRule,
    IdentityRule,
    MatchStatus,
    RuleEngine,
    extended_key_rule,
    ilfd_to_distinctness_rules,
    key_equivalence_rule,
)
from repro.core import (
    AttributeCorrespondence,
    EntityIdentifier,
    ExtendedKey,
    IdentificationResult,
    IntegratedTable,
    MatchingTable,
    MonotonicityTracker,
    NegativeMatchingTable,
    SoundnessError,
    SoundnessReport,
    algebraic_matching_table,
    integrate,
    verify_soundness,
)

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "AttributeCorrespondence",
    "Condition",
    "DerivationEngine",
    "DerivationPolicy",
    "DistinctnessRule",
    "Domain",
    "EntityIdentifier",
    "ExtendedKey",
    "ILFD",
    "ILFDSet",
    "ILFDTable",
    "IdentificationResult",
    "IdentityRule",
    "IncrementalIdentifier",
    "IntegratedTable",
    "MatchStatus",
    "MatchingTable",
    "MetricsRegistry",
    "MonotonicityTracker",
    "NO_OP_TRACER",
    "NULL",
    "NegativeMatchingTable",
    "NoOpTracer",
    "Relation",
    "RuleEngine",
    "Span",
    "Tracer",
    "Schema",
    "SoundnessError",
    "SoundnessReport",
    "VirtualIntegratedView",
    "algebraic_matching_table",
    "closure",
    "extended_key_rule",
    "format_metrics",
    "format_relation",
    "format_span_tree",
    "format_trace_summary",
    "full_outer_join",
    "ilfd_to_distinctness_rules",
    "implies",
    "integrate",
    "key_equivalence_rule",
    "mine_from_relations",
    "mine_ilfds",
    "minimal_cover",
    "natural_join",
    "non_null_eq",
    "project",
    "prove",
    "read_csv",
    "read_trace_jsonl",
    "rename",
    "saturate",
    "select",
    "suggest_extended_keys",
    "union",
    "verify_soundness",
    "write_csv",
    "write_trace_jsonl",
    "__version__",
]

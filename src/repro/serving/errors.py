"""Errors raised by the serving layer."""

from __future__ import annotations

__all__ = [
    "ServingError",
    "BadRequestError",
    "ServiceUnavailableError",
]


class ServingError(Exception):
    """Base class for serving-layer failures."""


class BadRequestError(ServingError):
    """The request itself is malformed (HTTP 400)."""


class ServiceUnavailableError(ServingError):
    """The backend cannot answer right now (HTTP 503).

    Raised when a lookup misses its deadline or every replica read
    fails and no stale cache entry can stand in — the degradation
    policy's last resort (``docs/SERVING.md``).  ``retry_after`` (when
    not ``None``) becomes the response's ``Retry-After`` header: the
    breaker-open path knows when the next probe is due and says so.
    """

    def __init__(
        self, message: str, *, retry_after: "float | None" = None
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after

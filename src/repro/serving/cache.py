"""In-process LRU cache for resolve results, with a stale tier.

One :class:`LRUCache` sits in front of the replica lookups: resolve
results are cached by ``(side, encoded key)`` and served without
touching SQLite until a write invalidates them.  Invalidation is
**explicit** — the ingestion path knows exactly which keys a new tuple
affects (the inserted key plus every partner it matched) and calls
:meth:`LRUCache.invalidate` for each, so cached entries never serve a
stale verdict on the fast path.

Invalidated entries are demoted to a bounded *stale* tier instead of
being dropped.  They are invisible to normal :meth:`LRUCache.get` calls,
but when every replica read fails or a lookup misses its deadline the
degradation policy may serve them explicitly marked as stale
(:meth:`LRUCache.get_stale`) — last-known-good beats an error page for
read-mostly traffic (``docs/SERVING.md``).

Hit / miss / eviction / invalidation counts feed the
``serving.cache_*`` metrics through the shared
:class:`~repro.observability.MetricsRegistry` when a tracer is attached,
and are always available locally via :meth:`LRUCache.stats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.observability.tracer import NO_OP_TRACER, Tracer

__all__ = ["LRUCache"]


class LRUCache:
    """A thread-safe LRU mapping with metrics and a stale tier.

    Parameters
    ----------
    capacity:
        Maximum live entries; the least recently used entry is evicted
        when a put would exceed it.  ``0`` disables caching entirely
        (every get misses, every put is dropped).
    tracer:
        Optional tracer; when enabled, cache activity is counted under
        ``serving.cache_*`` / ``serving.stale_serves``.
    """

    def __init__(self, capacity: int, *, tracer: Optional[Tracer] = None) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._tracer = tracer if tracer is not None else NO_OP_TRACER
        self._lock = threading.Lock()
        self._live: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._stale: "OrderedDict[Hashable, Any]" = OrderedDict()
        # Invalidation epochs close the read/write race: a lookup takes
        # a token *before* reading the replica and a put carrying that
        # token is rejected when the key was invalidated in between —
        # otherwise a slow read could re-cache a pre-commit answer as
        # live right after the ingest that superseded it.
        self._epoch = 0
        self._invalidated_at: "OrderedDict[Hashable, int]" = OrderedDict()
        # Tokens at or below the floor are suspect wholesale: a clear()
        # (or an evicted per-key record) invalidated *something* they
        # may predate.
        self._floor = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.stale_serves = 0
        self.rejected_puts = 0

    def _inc(self, metric: str) -> None:
        if self._tracer.enabled:
            self._tracer.metrics.inc(metric)

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """The configured live-entry capacity."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._live)

    def get(self, key: Hashable) -> Tuple[Any, bool]:
        """``(value, True)`` on a hit, ``(None, False)`` on a miss."""
        with self._lock:
            if key in self._live:
                self._live.move_to_end(key)
                self.hits += 1
                self._inc("serving.cache_hits")
                return self._live[key], True
            self.misses += 1
            self._inc("serving.cache_misses")
            return None, False

    def get_stale(self, key: Hashable) -> Tuple[Any, bool]:
        """Last-known-good value for *key*, live or invalidated.

        The degradation path only: a hit here is counted as a stale
        serve, not a cache hit, so the hit ratio stays honest.
        """
        with self._lock:
            value, found = None, False
            if key in self._live:
                value, found = self._live[key], True
            elif key in self._stale:
                value, found = self._stale[key], True
            if found:
                self.stale_serves += 1
                self._inc("serving.stale_serves")
            return value, found

    def token(self) -> int:
        """The current invalidation epoch, taken *before* a replica read.

        Pass it to :meth:`put`: the put is dropped when any invalidation
        (targeted or :meth:`clear`) happened after the token was taken —
        the freshly-read value may predate the write that invalidated.
        """
        with self._lock:
            return self._epoch

    def put(
        self, key: Hashable, value: Any, *, token: Optional[int] = None
    ) -> bool:
        """Insert/refresh *key*, evicting the LRU entry on overflow.

        With *token* (from :meth:`token`), the put only lands when *key*
        has not been invalidated since — returns False (and counts a
        rejected put) otherwise, which is what keeps a concurrent
        ingest+resolve from ever pinning a stale answer as live.
        """
        if self._capacity == 0:
            return False
        with self._lock:
            if token is not None and (
                token < self._floor
                or self._invalidated_at.get(key, -1) > token
            ):
                self.rejected_puts += 1
                self._inc("serving.cache_rejected_puts")
                return False
            self._stale.pop(key, None)  # fresh value supersedes stale
            self._live[key] = value
            self._live.move_to_end(key)
            while len(self._live) > self._capacity:
                self._live.popitem(last=False)
                self.evictions += 1
                self._inc("serving.cache_evictions")
            return True

    def invalidate(self, key: Hashable) -> bool:
        """Demote *key* to the stale tier; True iff it was live.

        The write path's hook: after an ingest commits, every affected
        key is invalidated so the next read sees the new matches.  The
        stale tier is capacity-bounded like the live one.  The key's
        invalidation epoch is recorded even when it was not cached, so
        an in-flight read that started before the write cannot re-cache
        its pre-commit answer (see :meth:`token`).
        """
        with self._lock:
            self._epoch += 1
            self._invalidated_at[key] = self._epoch
            self._invalidated_at.move_to_end(key)
            while len(self._invalidated_at) > max(4 * max(self._capacity, 1), 64):
                _, evicted_epoch = self._invalidated_at.popitem(last=False)
                self._floor = max(self._floor, evicted_epoch)
            if key not in self._live:
                return False
            self._stale[key] = self._live.pop(key)
            self._stale.move_to_end(key)
            while len(self._stale) > max(self._capacity, 1):
                self._stale.popitem(last=False)
            self.invalidations += 1
            self._inc("serving.cache_invalidations")
            return True

    def clear(self) -> int:
        """Drop every live and stale entry; returns the live count dropped."""
        with self._lock:
            dropped = len(self._live)
            self.invalidations += dropped
            if dropped and self._tracer.enabled:
                self._tracer.metrics.inc("serving.cache_invalidations", dropped)
            self._live.clear()
            self._stale.clear()
            # A full clear invalidates *every* key, including ones never
            # seen: raise the floor so all outstanding tokens go stale.
            self._epoch += 1
            self._invalidated_at.clear()
            self._floor = self._epoch
            return dropped

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (JSON-serialisable, used by ``/stats``)."""
        with self._lock:
            return {
                "capacity": self._capacity,
                "entries": len(self._live),
                "stale_entries": len(self._stale),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "stale_serves": self.stale_serves,
                "rejected_puts": self.rejected_puts,
            }

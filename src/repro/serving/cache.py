"""In-process LRU cache for resolve results, with a stale tier.

One :class:`LRUCache` sits in front of the replica lookups: resolve
results are cached by ``(side, encoded key)`` and served without
touching SQLite until a write invalidates them.  Invalidation is
**explicit** — the ingestion path knows exactly which keys a new tuple
affects (the inserted key plus every partner it matched) and calls
:meth:`LRUCache.invalidate` for each, so cached entries never serve a
stale verdict on the fast path.

Invalidated entries are demoted to a bounded *stale* tier instead of
being dropped.  They are invisible to normal :meth:`LRUCache.get` calls,
but when every replica read fails or a lookup misses its deadline the
degradation policy may serve them explicitly marked as stale
(:meth:`LRUCache.get_stale`) — last-known-good beats an error page for
read-mostly traffic (``docs/SERVING.md``).

Hit / miss / eviction / invalidation counts feed the
``serving.cache_*`` metrics through the shared
:class:`~repro.observability.MetricsRegistry` when a tracer is attached,
and are always available locally via :meth:`LRUCache.stats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.observability.tracer import NO_OP_TRACER, Tracer

__all__ = ["LRUCache"]


class LRUCache:
    """A thread-safe LRU mapping with metrics and a stale tier.

    Parameters
    ----------
    capacity:
        Maximum live entries; the least recently used entry is evicted
        when a put would exceed it.  ``0`` disables caching entirely
        (every get misses, every put is dropped).
    tracer:
        Optional tracer; when enabled, cache activity is counted under
        ``serving.cache_*`` / ``serving.stale_serves``.
    """

    def __init__(self, capacity: int, *, tracer: Optional[Tracer] = None) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._tracer = tracer if tracer is not None else NO_OP_TRACER
        self._lock = threading.Lock()
        self._live: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._stale: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.stale_serves = 0

    def _inc(self, metric: str) -> None:
        if self._tracer.enabled:
            self._tracer.metrics.inc(metric)

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """The configured live-entry capacity."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._live)

    def get(self, key: Hashable) -> Tuple[Any, bool]:
        """``(value, True)`` on a hit, ``(None, False)`` on a miss."""
        with self._lock:
            if key in self._live:
                self._live.move_to_end(key)
                self.hits += 1
                self._inc("serving.cache_hits")
                return self._live[key], True
            self.misses += 1
            self._inc("serving.cache_misses")
            return None, False

    def get_stale(self, key: Hashable) -> Tuple[Any, bool]:
        """Last-known-good value for *key*, live or invalidated.

        The degradation path only: a hit here is counted as a stale
        serve, not a cache hit, so the hit ratio stays honest.
        """
        with self._lock:
            value, found = None, False
            if key in self._live:
                value, found = self._live[key], True
            elif key in self._stale:
                value, found = self._stale[key], True
            if found:
                self.stale_serves += 1
                self._inc("serving.stale_serves")
            return value, found

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh *key*, evicting the LRU entry on overflow."""
        if self._capacity == 0:
            return
        with self._lock:
            self._stale.pop(key, None)  # fresh value supersedes stale
            self._live[key] = value
            self._live.move_to_end(key)
            while len(self._live) > self._capacity:
                self._live.popitem(last=False)
                self.evictions += 1
                self._inc("serving.cache_evictions")

    def invalidate(self, key: Hashable) -> bool:
        """Demote *key* to the stale tier; True iff it was live.

        The write path's hook: after an ingest commits, every affected
        key is invalidated so the next read sees the new matches.  The
        stale tier is capacity-bounded like the live one.
        """
        with self._lock:
            if key not in self._live:
                return False
            self._stale[key] = self._live.pop(key)
            self._stale.move_to_end(key)
            while len(self._stale) > max(self._capacity, 1):
                self._stale.popitem(last=False)
            self.invalidations += 1
            self._inc("serving.cache_invalidations")
            return True

    def clear(self) -> int:
        """Drop every live and stale entry; returns the live count dropped."""
        with self._lock:
            dropped = len(self._live)
            self.invalidations += dropped
            if dropped and self._tracer.enabled:
                self._tracer.metrics.inc("serving.cache_invalidations", dropped)
            self._live.clear()
            self._stale.clear()
            return dropped

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (JSON-serialisable, used by ``/stats``)."""
        with self._lock:
            return {
                "capacity": self._capacity,
                "entries": len(self._live),
                "stale_entries": len(self._stale),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "stale_serves": self.stale_serves,
            }

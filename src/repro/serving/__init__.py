"""repro.serving — async match-lookup & resolve API over the store.

The batch pipeline identifies entities and persists its verdicts; this
package serves them.  It turns a checkpointed
:class:`~repro.store.SqliteStore` into a long-running lookup service:

- :class:`MatchLookupService` — the operations: point ``resolve``
  lookups (row, entity cluster, matched pairs, journal provenance) over
  a pool of read-only WAL replicas, and search-before-insert ``ingest``
  that routes new tuples through extended-key resolution before the
  insert, journalled with rule attribution exactly like a batch run.
- :class:`ServingServer` — a stdlib asyncio JSON-over-HTTP front end
  (``repro serve``): ``/resolve``, ``/ingest``, ``/health``,
  ``/stats``, ``/metrics``, ``/invalidate``.
- :class:`LRUCache` — the in-process resolve cache with explicit
  write-path invalidation and a stale tier for degraded serving.
- :class:`ReplicaPool` — per-worker-thread read-only replica
  connections with reopen-and-retry on failure.

See ``docs/SERVING.md`` for the API contract, cache semantics,
degradation modes, and bench methodology.
"""

from repro.serving.cache import LRUCache
from repro.serving.errors import (
    BadRequestError,
    ServiceUnavailableError,
    ServingError,
)
from repro.serving.http import ServingServer, parse_query_key
from repro.serving.replica import ReplicaPool
from repro.serving.service import (
    MatchLookupService,
    decode_key_json,
    encode_key_json,
    encode_row_json,
)
from repro.serving.tracing import ServingTracer

__all__ = [
    "BadRequestError",
    "LRUCache",
    "MatchLookupService",
    "ReplicaPool",
    "ServiceUnavailableError",
    "ServingError",
    "ServingServer",
    "ServingTracer",
    "decode_key_json",
    "encode_key_json",
    "encode_row_json",
    "parse_query_key",
]

"""The match-lookup and resolve service over a persisted store.

:class:`MatchLookupService` is the transport-free core of ``repro
serve``: the HTTP layer (:mod:`repro.serving.http`) is a thin JSON
codec around the two operations here, and tests drive the service
directly.

**Reads** (:meth:`MatchLookupService.resolve`) answer "which entity is
this tuple, who does it match, and why": the tuple's entity cluster
(every tuple across both sources sharing its complete extended-key
values — the equivalence-class grouping of
:class:`~repro.core.multiway.MultiwayIdentifier`, rendered as
:class:`~repro.core.multiway.EntityCluster`), its matching-table
entries, and per-pair provenance reconstructed from the derivation
journal (:func:`repro.store.journal.explain_pair`).  Lookups run on a
:class:`~repro.serving.replica.ReplicaPool` worker against a read-only
WAL replica, behind an :class:`~repro.serving.cache.LRUCache`.

**Writes** (:meth:`MatchLookupService.ingest`) are search-before-insert:
an incoming tuple is ILFD-extended, resolved against the *opposite*
source's extended-key index, and journaled with exactly the rule
attribution a batch run would record — ILFD firings under their rule
names, identity matches under the extended key's identity-rule name —
so a store grown tuple-by-tuple through the API is indistinguishable
from one built by a cold batch run (the conformance suite fingerprints
both).  Every write funnels through one dedicated writer thread, which
is the single-writer discipline that makes the WAL replica reads safe.

**Degradation** is explicit and bounded: each lookup gets a deadline
(``--deadline-ms``), replica failures are retried per the shared
:class:`~repro.resilience.RetryPolicy`, and when the budget is spent
the service serves the last-known-good cached answer marked ``stale``
rather than failing the request — or raises
:class:`~repro.serving.errors.ServiceUnavailableError` when it never
knew one (``docs/SERVING.md``).
"""

from __future__ import annotations

import sqlite3
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.extended_key import ExtendedKey
from repro.core.matching_table import key_values
from repro.core.multiway import EntityCluster
from repro.ilfd.derivation import DerivationEngine, DerivationPolicy
from repro.observability.tracer import NO_OP_TRACER, Tracer
from repro.relational.nulls import NULL
from repro.relational.row import Row
from repro.relational.schema import Schema
from repro.resilience.errors import (
    CircuitOpenError,
    InjectedFault,
    ResilienceError,
)
from repro.resilience.faults import (
    NO_OP_INJECTOR,
    SITE_SERVING_INVALIDATE,
    SITE_SERVING_REQUEST,
    FaultInjector,
)
from repro.resilience.overload import CircuitBreaker
from repro.resilience.retry import RetryPolicy
from repro.serving.cache import LRUCache
from repro.serving.errors import BadRequestError, ServiceUnavailableError, ServingError
from repro.serving.replica import ReplicaPool
from repro.store.base import SIDES, MatchStore
from repro.store.checkpoint import (
    compute_section_digests,
    META_DIGEST_PREFIX,
    META_ILFDS,
    META_POLICY,
    META_R_SCHEMA,
    META_S_SCHEMA,
    META_VERSION,
    _DIGEST_SECTIONS,
    _decode_ilfds,
)
from repro.store.codec import (
    KeyValues,
    decode_schema,
    decode_value,
    encode_key,
    encode_value,
)
from repro.store.errors import StoreError
from repro.store.journal import explain_pair
from repro.store.sqlite import SqliteStore

__all__ = [
    "MatchLookupService",
    "decode_key_json",
    "encode_key_json",
    "encode_row_json",
]


def encode_row_json(row: Row) -> Dict[str, Any]:
    """A row as a JSON-safe mapping (NULL → the codec's marker object)."""
    return {name: encode_value(value) for name, value in row.items()}


def encode_key_json(key: KeyValues) -> List[List[Any]]:
    """A key as JSON-safe ``[[attr, value], ...]`` pairs."""
    return [[attr, encode_value(value)] for attr, value in key]


def decode_key_json(obj: Any) -> KeyValues:
    """A request's key — mapping or pair list — as canonical KeyValues."""
    if isinstance(obj, Mapping):
        items = obj.items()
    elif isinstance(obj, (list, tuple)):
        try:
            items = [(attr, value) for attr, value in obj]
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"malformed key {obj!r}: {exc}") from exc
    else:
        raise BadRequestError(
            f"key must be an object or [attr, value] pairs, got {obj!r}"
        )
    if not items:
        raise BadRequestError("key names no attributes")
    return tuple(sorted((str(attr), decode_value(value)) for attr, value in items))


class MatchLookupService:
    """Point lookups and search-before-insert over one SQLite store.

    Parameters
    ----------
    path:
        The store file (a checkpoint written by ``repro checkpoint`` /
        ``IncrementalIdentifier.checkpoint``, or any store carrying
        source rows).  Ingestion additionally needs the knowledge
        metadata (schemas, ILFDs, policy) checkpoints seal; a store
        without it serves resolve-only.
    workers:
        Replica connections / reader threads (default 2).
    cache_size:
        LRU capacity for resolve results (0 disables caching).
    deadline:
        Per-lookup budget in **seconds** (None = unbounded).  A lookup
        that misses it degrades to the stale cache.
    retry_policy:
        Applied both to replica reads (reopen + retry) and to writer
        commits.
    allow_stale:
        Serve last-known-good cached answers when replicas fail
        (default True); False turns degradation into hard 503s.
    read_breaker / write_breaker:
        Optional :class:`~repro.resilience.CircuitBreaker` instances
        around the replica pool and the single-writer thread.  While a
        breaker is open its side fails fast (reads degrade to the stale
        cache, writes 503 with ``Retry-After``) instead of piling
        doomed work onto a failing dependency.
    fault_injector:
        Optional deterministic :class:`~repro.resilience.FaultInjector`
        fired at the serving sites (``serving.request``,
        ``serving.invalidate``) and plumbed into the writer store's
        ``store.commit`` site — the hook ``repro serve
        --inject-faults`` and the chaos harness drive.
    """

    def __init__(
        self,
        path: str,
        *,
        workers: int = 2,
        cache_size: int = 1024,
        deadline: Optional[float] = None,
        tracer: Optional[Tracer] = None,
        retry_policy: Optional[RetryPolicy] = None,
        allow_stale: bool = True,
        read_breaker: Optional[CircuitBreaker] = None,
        write_breaker: Optional[CircuitBreaker] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        self._tracer = tracer if tracer is not None else NO_OP_TRACER
        self._deadline = deadline
        self._allow_stale = allow_stale
        self._closed = False
        self._injector = (
            fault_injector if fault_injector is not None else NO_OP_INJECTOR
        )
        self._write_breaker = write_breaker
        # Single-writer discipline: this connection is only ever used
        # from the one writer thread below, which is what justifies
        # check_same_thread=False (see SqliteStore's docstring).
        self._writer = SqliteStore(
            path,
            tracer=self._tracer,
            retry_policy=retry_policy,
            fault_injector=fault_injector,
            check_same_thread=False,
        )
        try:
            self._write_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serving-write"
            )
            self._pool = ReplicaPool(
                path,
                workers,
                tracer=self._tracer,
                retry_policy=retry_policy,
                breaker=read_breaker,
            )
        except BaseException:
            self._writer.close()
            raise
        self._cache = LRUCache(cache_size, tracer=self._tracer)
        self._unsealed = False
        self._load_knowledge()

    def _load_knowledge(self) -> None:
        """Ingestion state from the store's (checkpoint) metadata."""
        store = self._writer
        self._sides: Tuple[str, ...] = store.sides()
        attributes = store.extended_key_attributes()
        self._extended_key: Optional[ExtendedKey] = (
            ExtendedKey(list(attributes)) if attributes else None
        )
        self._identity_rule_name = (
            self._extended_key.identity_rule().name if self._extended_key else ""
        )
        self._schemas: Dict[str, Schema] = {}
        for side, meta_key in (("r", META_R_SCHEMA), ("s", META_S_SCHEMA)):
            text = store.get_meta(meta_key, "")
            if text:
                self._schemas[side] = decode_schema(text)
        ilfds = _decode_ilfds(store.get_meta(META_ILFDS, ""))
        policy = DerivationPolicy(
            store.get_meta(META_POLICY, DerivationPolicy.FIRST_MATCH.value)
        )
        self._engine = DerivationEngine(ilfds, policy=policy, tracer=self._tracer)
        self._version = int(store.get_meta(META_VERSION, "0"))

    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """The served store file."""
        return self._writer.path

    @property
    def version(self) -> int:
        """The store's delta cursor (bumped by every ingest)."""
        return self._version

    @property
    def can_ingest(self) -> bool:
        """True iff the store carries the knowledge metadata ingestion needs."""
        return self._extended_key is not None and len(self._schemas) == len(SIDES)

    @property
    def cache(self) -> LRUCache:
        """The resolve cache (tests and ``/stats`` read it)."""
        return self._cache

    @property
    def sides(self) -> Tuple[str, ...]:
        """The source names this store serves (``("r", "s")`` unless an
        entity build registered its own vocabulary)."""
        return self._sides

    def _check_side(self, side: str) -> str:
        if side not in self._sides:
            raise BadRequestError(
                f"unknown source {side!r}; expected one of {self._sides}"
            )
        return side

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def resolve(
        self, side: str, key: KeyValues, *, use_cache: bool = True
    ) -> Dict[str, Any]:
        """Entity cluster, matches, and provenance for one tuple key.

        Returns a JSON-serialisable mapping; its ``cache`` field tells
        how the answer was produced (``hit`` / ``miss`` / ``stale``).
        """
        self._check_side(side)
        cache_key = (side, encode_key(key))
        if use_cache:
            cached, hit = self._cache.get(cache_key)
            if hit:
                return dict(cached, cache="hit")
        # The token closes the read/write race: if an ingest invalidates
        # this key while the replica read is in flight, the put below is
        # rejected and the pre-commit answer never becomes a live entry.
        token = self._cache.token()
        try:
            result = self._pool.run(
                lambda replica: self._lookup(replica, side, key),
                timeout=self._deadline,
            )
        except (
            FutureTimeoutError,
            ResilienceError,
            StoreError,
            sqlite3.Error,
        ) as exc:
            return dict(self._degrade(cache_key, exc), cache="stale")
        self._cache.put(cache_key, result, token=token)
        return dict(result, cache="miss")

    def _degrade(self, cache_key: Tuple[str, str], exc: BaseException) -> Dict[str, Any]:
        """Stale-cache fallback after a failed/late lookup (or give up)."""
        if self._tracer.enabled:
            self._tracer.metrics.inc("serving.degraded")
        if self._allow_stale:
            stale, found = self._cache.get_stale(cache_key)
            if found:
                return dict(stale, degraded=str(exc) or type(exc).__name__)
        raise ServiceUnavailableError(
            f"lookup failed and no cached answer exists: {exc}",
            retry_after=getattr(exc, "retry_after", None),
        ) from exc

    def _lookup(
        self, replica: MatchStore, side: str, key: KeyValues
    ) -> Dict[str, Any]:
        started = time.perf_counter()
        self._injector.fire(SITE_SERVING_REQUEST)
        with self._tracer.span("serving.lookup", source=side):
            row = replica.get_row(side, key)
            if row is None:
                result: Dict[str, Any] = {
                    "found": False,
                    "source": side,
                    "key": encode_key_json(key),
                }
            else:
                raw, extended = row
                ext_text = replica.extended_key_text(extended)
                cluster = self._cluster_of(replica, extended, ext_text)
                entity = self._entity_of(replica, ext_text)
                matches = replica.matches_for_key(side, key)
                result = {
                    "found": True,
                    "source": side,
                    "key": encode_key_json(key),
                    "row": encode_row_json(raw),
                    "extended": encode_row_json(extended),
                    "cluster": cluster,
                    "entity": entity,
                    "matches": [
                        {
                            "r_key": encode_key_json(r_key),
                            "s_key": encode_key_json(s_key),
                        }
                        for (r_key, s_key), _rows in matches
                    ],
                    "provenance": [
                        explain_pair(
                            replica.journal_entries(r_key=r_key, s_key=s_key),
                            r_key,
                            s_key,
                        )
                        for (r_key, s_key), _rows in matches
                    ],
                }
        if self._tracer.enabled:
            metrics = self._tracer.metrics
            metrics.inc("serving.lookups")
            metrics.observe(
                "serving.lookup_ms", (time.perf_counter() - started) * 1000.0
            )
        return result

    def _cluster_of(
        self, store: MatchStore, extended: Row, ext_text: Optional[str]
    ) -> Optional[Dict[str, Any]]:
        """The tuple's entity cluster, in multiway's equivalence terms.

        ``None`` when the extended key is incomplete — Section 6.2's
        NULL semantics mean such a tuple belongs to no cluster.
        """
        if ext_text is None:
            return None
        attributes = store.extended_key_attributes()
        members: List[Tuple[str, Row]] = []
        member_keys: List[Tuple[str, KeyValues]] = []
        for side in self._sides:
            for key, _raw, member_extended in store.rows_by_extended_key(
                side, ext_text
            ):
                members.append((side, member_extended))
                member_keys.append((side, key))
        cluster = EntityCluster(
            key=extended.values_for(attributes), members=tuple(members)
        )
        return {
            "entity_key": [
                [attr, encode_value(value)]
                for attr, value in zip(attributes, cluster.key)
            ],
            "sources": list(cluster.sources),
            "size": len(cluster),
            "members": [
                {"source": side, "key": encode_key_json(key)}
                for side, key in member_keys
            ],
        }

    def _entity_of(
        self, store: MatchStore, ext_text: Optional[str]
    ) -> Optional[Dict[str, Any]]:
        """The persisted canonical entity for this extended key, if an
        entity build (``repro entities build``) sealed one — the golden
        record plus its ``entity_resolution_log`` provenance."""
        if ext_text is None:
            return None
        record = store.entity_by_ext_key(ext_text)
        if record is None:
            return None
        if self._tracer.enabled:
            self._tracer.metrics.inc("serving.entity_lookups")
        return {
            "id": record.entity_id,
            "golden": encode_row_json(record.golden),
            "members": [
                {"source": source, "key": encode_key_json(key)}
                for source, key in record.members
            ],
            "resolution_log": [
                {
                    "seq": entry.seq,
                    "rule": entry.rule,
                    "event": entry.payload.get("event", "golden"),
                    "detail": {
                        k: v
                        for k, v in entry.payload.items()
                        if k not in ("entity_id", "event")
                    },
                }
                for entry in store.entity_log(record.entity_id)
            ],
        }

    # ------------------------------------------------------------------
    # Writes (search-before-insert)
    # ------------------------------------------------------------------
    def ingest(self, side: str, values: Mapping[str, Any]) -> Dict[str, Any]:
        """Resolve an incoming tuple against the store, then insert it.

        Mirrors :meth:`IncrementalIdentifier.insert_r/s` against the
        persisted state: normalise → ILFD-extend (journaling rule
        firings) → probe the opposite source by complete extended-key
        value → journal one identity match per partner, all inside one
        store transaction on the single writer thread.  Returns the new
        tuple's key, the matches created, and its entity cluster.
        """
        self._check_side(side)
        if not self.can_ingest:
            raise ServingError(
                "this store lacks the knowledge metadata ingestion needs "
                "(schemas, extended key); serve a checkpoint file instead"
            )
        if self._write_breaker is not None:
            try:
                self._write_breaker.before_call()
            except CircuitOpenError as exc:
                raise ServiceUnavailableError(
                    f"ingest refused: {exc}", retry_after=exc.retry_after
                ) from exc
        future = self._write_executor.submit(self._ingest_on_writer, side, values)
        try:
            result = future.result()
        except (StoreError, sqlite3.Error, ResilienceError):
            if self._write_breaker is not None:
                self._write_breaker.record_failure()
            raise
        except BaseException:
            if self._write_breaker is not None:
                self._write_breaker.record_success()
            raise
        if self._write_breaker is not None:
            self._write_breaker.record_success()
        return result

    def _ingest_on_writer(
        self, side: str, raw_values: Mapping[str, Any]
    ) -> Dict[str, Any]:
        store = self._writer
        schema = self._schemas[side]
        other = "s" if side == "r" else "r"
        self._injector.fire(SITE_SERVING_REQUEST)
        with self._tracer.span("serving.ingest", source=side):
            # Unseal the checkpoint's section digests once: like a
            # resumed session, serving writes through the file, so the
            # sealed digests stop describing it at the first ingest.
            if not self._unsealed:
                with store.transaction():
                    for name in _DIGEST_SECTIONS:
                        if store.get_meta(META_DIGEST_PREFIX + name, ""):
                            store.set_meta(META_DIGEST_PREFIX + name, "")
                self._unsealed = True
            # Normalise exactly as IncrementalIdentifier._admit does:
            # absent and None both become NULL.
            values: Dict[str, Any] = {}
            for name in schema.names:
                value = raw_values[name] if name in raw_values else NULL
                values[name] = NULL if value is None else decode_value(value)
            normalised = Row(values)
            key_attrs = tuple(
                n for n in schema.names if n in schema.primary_key
            )
            key = key_values(normalised, key_attrs)
            if store.get_row(side, key) is not None:
                raise BadRequestError(f"duplicate key {key!r} on insert")
            result = self._engine.extend_row(
                normalised, list(self._extended_key.attributes)
            )
            extended = result.row
            added: List[Tuple[KeyValues, KeyValues]] = []
            with store.transaction():
                self._version += 1
                store.set_meta(META_VERSION, str(self._version))
                store.put_row(side, key, normalised, extended)
                if result.fired:
                    store.record_derivation(
                        side,
                        key,
                        rule=", ".join(f.name or repr(f) for f in result.fired),
                        derived=result.derived,
                    )
                ext_text = store.extended_key_text(extended)
                partners: List[Tuple[KeyValues, Row, Row]] = []
                if ext_text is not None:
                    partners = store.rows_by_extended_key(other, ext_text)
                    for partner_key, _praw, partner_extended in partners:
                        pair = (
                            (key, partner_key) if side == "r" else (partner_key, key)
                        )
                        if store.has_match(*pair):
                            continue
                        r_row = extended if side == "r" else partner_extended
                        s_row = partner_extended if side == "r" else extended
                        store.record_match(
                            pair[0],
                            pair[1],
                            r_row,
                            s_row,
                            rule=self._identity_rule_name,
                        )
                        added.append(pair)
            # Write committed: invalidate every cache entry the new
            # tuple's cluster touches (itself, and each member whose
            # cluster/matches just changed).  A fault here must fail
            # safe — the write is already durable, so an interrupted
            # invalidation drops the *whole* cache rather than risk one
            # affected key staying live with its pre-write answer.
            try:
                self._injector.fire(SITE_SERVING_INVALIDATE)
                self._cache.invalidate((side, encode_key(key)))
                if ext_text is not None:
                    for member_side in self._sides:
                        for member_key, _r, _e in store.rows_by_extended_key(
                            member_side, ext_text
                        ):
                            self._cache.invalidate(
                                (member_side, encode_key(member_key))
                            )
            except InjectedFault:
                self._cache.clear()
                raise
        if self._tracer.enabled:
            metrics = self._tracer.metrics
            metrics.inc("serving.ingests")
            metrics.inc("serving.ingest_matches", len(added))
        return {
            "inserted": True,
            "source": side,
            "key": encode_key_json(key),
            "version": self._version,
            "matches_added": [
                {"r_key": encode_key_json(r), "s_key": encode_key_json(s)}
                for r, s in added
            ],
            "derivations_fired": [
                f.name or repr(f) for f in result.fired
            ],
        }

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def invalidate(self) -> int:
        """Drop the whole cache (live and stale); returns entries dropped."""
        return self._cache.clear()

    def stats(self) -> Dict[str, Any]:
        """JSON-serialisable operational snapshot (the ``/stats`` body)."""
        counts = self._pool.run(lambda replica: replica.counts())
        snapshot: Dict[str, Any] = (
            self._tracer.metrics.snapshot() if self._tracer.enabled else {}
        )
        breakers: Dict[str, Any] = {}
        if self._pool.breaker is not None:
            breakers["read"] = self._pool.breaker.stats()
        if self._write_breaker is not None:
            breakers["write"] = self._write_breaker.stats()
        return {
            "store": {"path": self.path, "version": self._version, **counts},
            "cache": self._cache.stats(),
            "workers": self._pool.workers,
            "deadline_s": self._deadline,
            "can_ingest": self.can_ingest,
            "breakers": breakers,
            "metrics": snapshot,
        }

    def seal_digests(self) -> bool:
        """Re-seal the checkpoint's section digests after serving writes.

        The graceful-drain contract (``docs/SERVING.md``): ingest unseals
        the digests because they stop describing a file being written
        through, and a clean shutdown recomputes and reseals them so the
        next ``repro resume --verify`` gets the same integrity cover a
        cold checkpoint would.  Returns True iff a reseal happened.
        """
        if not self._unsealed:
            return False

        def reseal() -> None:
            digests = compute_section_digests(self._writer)
            with self._writer.transaction():
                for name, digest in digests.items():
                    self._writer.set_meta(META_DIGEST_PREFIX + name, digest)

        # On the writer thread when it is still up (single-writer
        # discipline); directly when called after executor shutdown.
        try:
            self._write_executor.submit(reseal).result()
        except RuntimeError:  # executor already shut down
            reseal()
        self._unsealed = False
        if self._tracer.enabled:
            self._tracer.metrics.inc("serving.digests_resealed")
        return True

    def close(self) -> None:
        """Drain the writer, reseal digests, stop readers, close all.

        In-flight writes finish first (executor drain), then the section
        digests are resealed so an interrupted-then-restarted server is
        the only thing that leaves them open — exactly the signal
        salvage keys on.
        """
        if self._closed:
            return
        self._closed = True
        self._write_executor.shutdown(wait=True)
        try:
            self.seal_digests()
        except (StoreError, sqlite3.Error):  # pragma: no cover - dying store
            pass
        self._pool.close()
        self._writer.close()

    def __enter__(self) -> "MatchLookupService":
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> None:
        self.close()

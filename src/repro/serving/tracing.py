"""A tracer variant safe for a long-running, multi-threaded server.

The pipeline's :class:`~repro.observability.Tracer` is built for one
observed run: it keeps **every** span and tracks nesting through a
single ``_current`` pointer.  Neither survives serving — a server at
even modest QPS would grow the span list without bound, and requests
overlap across the event loop, replica workers, and the writer thread,
so one shared nesting pointer races.

:class:`ServingTracer` keeps the same interface (``repro stats``,
``write_trace_jsonl``, and the run ledger consume it unchanged) with two
serving-shaped changes:

- spans are kept in a bounded ring — the most recent ``keep_spans``
  finished regions, enough for the shutdown ledger row and trace dump
  without ever leaking;
- span creation is locked and the nesting pointer is thread-local, so
  concurrent requests each get a coherent (per-thread) parent chain.

The :class:`~repro.observability.MetricsRegistry` is already
thread-safe, so every ``serving.*`` counter and histogram aggregates
across all threads for the whole lifetime of the process — the ring
bounds only the span *details*, never the numbers.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Span, Tracer

__all__ = ["ServingTracer"]


class ServingTracer(Tracer):
    """Thread-safe tracer keeping only the most recent finished spans."""

    def __init__(
        self,
        *,
        keep_spans: int = 512,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if keep_spans < 1:
            raise ValueError(f"keep_spans must be >= 1, got {keep_spans}")
        # _tls must exist before Tracer.__init__ assigns _current (the
        # property below routes that assignment through thread-locals).
        self._tls = threading.local()
        self._span_lock = threading.Lock()
        self._keep = keep_spans
        self._next_id = 0
        super().__init__(metrics=metrics)

    # Nesting pointer, per thread: overlapping requests on different
    # threads each see their own parent chain.
    @property
    def _current(self) -> Optional[int]:
        return getattr(self._tls, "current", None)

    @_current.setter
    def _current(self, value: Optional[int]) -> None:
        self._tls.current = value

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span; the retained window slides past ``keep_spans``."""
        with self._span_lock:
            span = Span(name, attributes, self._next_id, self)
            self._next_id += 1
            self._spans.append(span)
            overflow = len(self._spans) - self._keep
            if overflow > 0:
                del self._spans[:overflow]
        return span

    def reset(self) -> None:
        """Drop retained spans and metrics (ids keep increasing)."""
        with self._span_lock:
            self._spans.clear()
        self._tls = threading.local()
        self.metrics.reset()

"""Read-only replica connections, one per worker thread.

SQLite in WAL mode gives exactly the replication the serving layer
needs for free: any number of ``mode=ro`` connections read a consistent
snapshot of the store while the single writer commits — no reader ever
blocks the writer or sees a half-applied transaction.  The catch is
that a connection is not safely shareable across threads, so
:class:`ReplicaPool` owns a small :class:`ThreadPoolExecutor` and lazily
opens **one read-only** :class:`~repro.store.SqliteStore` **per worker
thread** (thread-local), rather than handing one connection to everyone
or leaning on ``check_same_thread`` defaults.

Failure handling reuses :class:`~repro.resilience.RetryPolicy`: when a
read fails with :class:`sqlite3.OperationalError` (replica file
unreadable, dropped NFS mount, torn WAL), the worker's **failed replica
is closed first** — never merely dropped, so repeated faults cannot leak
file descriptors — and reopened per the policy, counted under
``serving.replica_reopens``.  A :class:`~repro.resilience.CircuitBreaker`
may additionally front the pool: once reads fail persistently the
breaker opens and further calls are refused in O(1) with
:class:`~repro.resilience.CircuitOpenError` instead of burning a worker
slot per doomed attempt.  What happens then is the *service*'s decision
(stale-cache degradation, see :mod:`repro.serving.service`) — the pool
just raises.
"""

from __future__ import annotations

import sqlite3
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, List, Optional, TypeVar

from repro.observability.tracer import NO_OP_TRACER, Tracer
from repro.resilience.errors import ResilienceError
from repro.resilience.overload import CircuitBreaker
from repro.resilience.retry import NO_RETRY, RetryPolicy
from repro.store.errors import StoreError
from repro.store.sqlite import SqliteStore

__all__ = ["ReplicaPool"]

T = TypeVar("T")


class ReplicaPool:
    """N worker threads, each reading through its own replica connection.

    Parameters
    ----------
    path:
        The SQLite store file to open replicas of.
    workers:
        Worker-thread (and therefore replica-connection) count.
    tracer:
        Optional tracer for ``serving.*`` metrics.
    retry_policy:
        Reopen-and-retry policy for failed reads (default: no retry).
    breaker:
        Optional circuit breaker fronting the pool: consulted before a
        read is submitted (an open circuit raises
        :class:`~repro.resilience.CircuitOpenError` without queueing
        anything) and fed the post-retry verdict of every read.
    """

    def __init__(
        self,
        path: str,
        workers: int = 2,
        *,
        tracer: Optional[Tracer] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._path = str(path)
        self._workers = workers
        self._tracer = tracer if tracer is not None else NO_OP_TRACER
        self._retry = retry_policy if retry_policy is not None else NO_RETRY
        self._breaker = breaker
        self._local = threading.local()
        # Track every store ever opened so close() can reach connections
        # living in worker threads; check_same_thread=False is safe here
        # because each store is only *queried* by its owning worker —
        # the flag exists solely so close() may run from the shutdown
        # thread.
        self._opened: List[SqliteStore] = []
        self._opened_lock = threading.Lock()
        self._closed = False
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serving-read"
        )
        # Fail fast on an unopenable store instead of at first request.
        probe = self._open_replica()
        probe.close()

    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """The replicated store file."""
        return self._path

    @property
    def workers(self) -> int:
        """Worker-thread count (= maximum live replica connections)."""
        return self._workers

    @property
    def breaker(self) -> Optional[CircuitBreaker]:
        """The circuit breaker fronting the pool, if one is attached."""
        return self._breaker

    def open_connections(self) -> int:
        """Live replica connections right now (the fd-leak audit's probe)."""
        with self._opened_lock:
            return len(self._opened)

    def _open_replica(self) -> SqliteStore:
        return SqliteStore(
            self._path,
            tracer=self._tracer,
            read_only=True,
            check_same_thread=False,
        )

    def _replica(self) -> SqliteStore:
        store = getattr(self._local, "store", None)
        if store is None:
            store = self._open_replica()
            self._local.store = store
            with self._opened_lock:
                self._opened.append(store)
        return store

    def _drop_replica(self) -> None:
        """Close-then-forget this thread's replica (fd-leak audited).

        Ordering matters: the failed store is **closed before** the
        thread-local slot is cleared, so even if close raises unexpectedly
        the connection is never silently abandoned to the GC — 100
        forced reopens must leave the process fd count flat
        (``tests/serving/test_replica.py``).
        """
        store = getattr(self._local, "store", None)
        if store is None:
            return
        try:
            store.close()
        except sqlite3.Error:  # pragma: no cover - close of a dead handle
            pass
        finally:
            self._local.store = None
            with self._opened_lock:
                if store in self._opened:
                    self._opened.remove(store)

    def _run_with_replica(self, fn: Callable[[SqliteStore], T]) -> T:
        """Worker-side body: run *fn* on this thread's replica, retrying.

        An :class:`sqlite3.OperationalError` or :class:`StoreError`
        discards the thread's connection before the retry, so the next
        attempt reopens from scratch — the recovery that helps when the
        old handle (not the file) is what broke.
        """

        def attempt() -> T:
            try:
                return fn(self._replica())
            except (sqlite3.OperationalError, StoreError):
                self._drop_replica()
                if self._tracer.enabled:
                    # replica_reconnects kept as a legacy alias of the
                    # documented replica_reopens counter.
                    self._tracer.metrics.inc("serving.replica_reopens")
                    self._tracer.metrics.inc("serving.replica_reconnects")
                raise

        if self._retry.max_attempts > 1:
            return self._retry.call(
                attempt,
                operation="serving.replica_read",
                retry_on=(sqlite3.OperationalError, StoreError),
                tracer=self._tracer,
            )
        return attempt()

    def submit(self, fn: Callable[[SqliteStore], T]) -> "Future[T]":
        """Run ``fn(replica)`` on a worker thread; returns its future.

        With a breaker attached, an open circuit refuses the call here —
        on the *calling* thread, before any work is queued — and the
        read's eventual verdict is recorded when its future resolves.
        """
        if self._closed:
            raise StoreError("replica pool is closed")
        if self._breaker is None:
            return self._executor.submit(self._run_with_replica, fn)
        self._breaker.before_call()
        future = self._executor.submit(self._run_with_replica, fn)

        def record(done: "Future[T]") -> None:
            try:
                exc = done.exception()
            except BaseException:  # pragma: no cover - cancelled future
                exc = None
            if isinstance(exc, (sqlite3.Error, StoreError, ResilienceError)):
                self._breaker.record_failure()
            else:
                self._breaker.record_success()

        future.add_done_callback(record)
        return future

    def run(
        self, fn: Callable[[SqliteStore], T], *, timeout: Optional[float] = None
    ) -> T:
        """Run ``fn(replica)`` on a worker thread and wait for the result.

        *timeout* (seconds) bounds the wait, not the query — a
        lookup that blows the deadline raises
        :class:`concurrent.futures.TimeoutError` here while the worker
        finishes (and discards) the slow read in the background.
        """
        return self.submit(fn).result(timeout=timeout)

    def close(self) -> None:
        """Shut down the workers and close every replica connection."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        with self._opened_lock:
            stores, self._opened = list(self._opened), []
        for store in stores:
            try:
                store.close()
            except sqlite3.Error:  # pragma: no cover - close of a dead handle
                pass

    def __enter__(self) -> "ReplicaPool":
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> None:
        self.close()

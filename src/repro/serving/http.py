"""A stdlib-only asyncio JSON-over-HTTP front end for the service.

No framework, no dependencies: :func:`asyncio.start_server` plus a
minimal HTTP/1.1 parser (request line, headers, ``Content-Length``
bodies, keep-alive).  The event loop only ever parses and serialises;
every store touch happens off-loop — reads on the
:class:`~repro.serving.replica.ReplicaPool` workers, writes on the
service's single writer thread — via ``run_in_executor`` semantics
wrapped by the service, so one slow lookup never stalls the accept
loop.

Routes (see ``docs/SERVING.md`` for the contract):

====== ============= ====================================================
method path          meaning
====== ============= ====================================================
GET    /health       liveness + store identity
GET    /resolve      point lookup; ``?source=r&key=attr=value,...``
POST   /resolve      same, JSON body ``{"source": ..., "key": {...}}``
POST   /ingest       search-before-insert ``{"source": ..., "row": {...}}``
POST   /invalidate   drop the resolve cache
GET    /stats        cache/store/metrics snapshot (JSON)
GET    /metrics      Prometheus text exposition
====== ============= ====================================================

Every request is wrapped in a ``serving.request`` tracer span and
counted under ``serving.requests`` / ``serving.errors`` with its wall
time observed in ``serving.request_ms`` — the numbers ``repro stats``
and the ``/metrics`` exposition render.

**Overload** is handled *before* work is queued: when an
:class:`~repro.resilience.AdmissionController` is attached, each
request is classified (``/resolve``/``/stats`` → ``read``,
``/ingest``/``/invalidate`` → ``write``; ``/health`` and ``/metrics``
are exempt so probes keep working under load) and admitted — or shed
right here with a structured 429 (rate limit) / 503 (queue full) body
and a ``Retry-After`` header, never touching the service.  That is
what keeps the admitted requests' p99 bounded at 2× capacity
(``docs/SERVING.md``).
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.parse
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.observability.tracer import NO_OP_TRACER, Tracer
from repro.resilience.errors import CircuitOpenError, OverloadShedError
from repro.resilience.overload import AdmissionController
from repro.serving.errors import (
    BadRequestError,
    ServiceUnavailableError,
    ServingError,
)
from repro.serving.service import MatchLookupService, decode_key_json
from repro.store.codec import KeyValues
from repro.telemetry.prometheus import metrics_to_prometheus

__all__ = ["ServingServer", "parse_query_key"]

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 4 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Admission endpoint classes; paths absent here bypass the controller.
_ENDPOINT_CLASS = {
    "/resolve": "read",
    "/stats": "read",
    "/ingest": "write",
    "/invalidate": "write",
}


def _retry_after_header(seconds: "float | None") -> Dict[str, str]:
    """A ``Retry-After`` header for *seconds* (integral, minimum 1)."""
    if seconds is None:
        return {}
    return {"Retry-After": str(max(1, int(-(-float(seconds) // 1))))}


def parse_query_key(text: str) -> KeyValues:
    """``attr=value,attr=value`` (percent-decoded) as canonical KeyValues."""
    pairs = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise BadRequestError(
                f"key spec {text!r}: {part!r} is not of the form attr=value"
            )
        attr, _, value = part.partition("=")
        pairs.append((attr.strip(), value.strip()))
    if not pairs:
        raise BadRequestError(f"key spec {text!r} names no attributes")
    return tuple(sorted(pairs))


class _HttpError(Exception):
    """Internal: carries a status + JSON error body to the writer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServingServer:
    """Asyncio HTTP server speaking JSON around a :class:`MatchLookupService`."""

    def __init__(
        self,
        service: MatchLookupService,
        *,
        host: str = "127.0.0.1",
        port: int = 8571,
        tracer: Optional[Tracer] = None,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._tracer = tracer if tracer is not None else NO_OP_TRACER
        self._admission = admission
        self._server: Optional[asyncio.AbstractServer] = None
        self._inflight = 0
        self._draining = False
        self._idle: Optional[asyncio.Event] = None

    @property
    def admission(self) -> Optional[AdmissionController]:
        """The attached admission controller, if any (``/stats`` reads it)."""
        return self._admission

    @property
    def inflight(self) -> int:
        """Requests currently being dispatched (the drain's wait target)."""
        return self._inflight

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — port resolved after :meth:`start`."""
        if self._server is not None and self._server.sockets:
            bound = self._server.sockets[0].getsockname()
            return bound[0], bound[1]
        return self._host, self._port

    async def start(self) -> None:
        """Bind and start accepting connections (idempotent)."""
        if self._server is None:
            self._idle = asyncio.Event()
            self._idle.set()
            self._draining = False
            self._server = await asyncio.start_server(
                self._handle_connection, self._host, self._port
            )

    async def stop(
        self, *, drain: bool = True, drain_timeout: float = 10.0
    ) -> None:
        """Stop accepting; optionally drain in-flight requests first.

        The graceful path (SIGINT *and* SIGTERM take it, see
        ``repro serve``): close the listening sockets so no new request
        arrives, mark the server draining so keep-alive loops end after
        their current response, then wait up to *drain_timeout* seconds
        for every in-flight request to finish.  Requests still running
        at the timeout are abandoned to the connection close.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain and self._idle is not None and self._inflight:
            try:
                await asyncio.wait_for(self._idle.wait(), drain_timeout)
            except asyncio.TimeoutError:  # pragma: no cover - slow request
                if self._tracer.enabled:
                    self._tracer.metrics.inc("serving.drain_timeouts")

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI cancels on SIGINT/SIGTERM)."""
        await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # One connection: keep-alive loop over single requests
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, query, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive") != "close"
                    and not self._draining
                )
                status, payload, content_type, extra = await self._dispatch(
                    method, path, query, body
                )
                await self._write_response(
                    writer, status, payload, content_type, keep_alive, extra
                )
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away mid-request; nothing to answer
        except _HttpError as exc:
            # Unparseable request framing: answer once, then hang up.
            try:
                await self._write_response(
                    writer,
                    exc.status,
                    json.dumps({"error": str(exc)}),
                    "application/json",
                    False,
                )
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], Dict[str, str], bytes]]:
        """One parsed request, or None on clean EOF between requests."""
        try:
            line = await reader.readline()
        except (ConnectionResetError, BrokenPipeError):
            return None
        if not line:
            return None
        if len(line) > _MAX_HEADER_BYTES:
            raise _HttpError(400, "request line too long")
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            raise _HttpError(400, f"malformed request line {line!r}") from None
        headers: Dict[str, str] = {}
        total = 0
        while True:
            line = await reader.readline()
            total += len(line)
            if total > _MAX_HEADER_BYTES:
                raise _HttpError(400, "headers too long")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise _HttpError(413, f"body of {length} bytes exceeds the limit")
        body = await reader.readexactly(length) if length else b""
        parsed = urllib.parse.urlsplit(target)
        query = {
            name: values[-1]
            for name, values in urllib.parse.parse_qs(
                parsed.query, keep_blank_values=True
            ).items()
        }
        return method.upper(), parsed.path, query, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: str,
        content_type: str,
        keep_alive: bool,
        extra_headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        body = payload.encode("utf-8")
        extras = "".join(
            f"{name}: {value}\r\n"
            for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extras}"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        method: str,
        path: str,
        query: Mapping[str, str],
        body: bytes,
    ) -> Tuple[int, str, str, Dict[str, str]]:
        started = time.perf_counter()
        status = 500
        content_type = "application/json"
        extra: Dict[str, str] = {}
        # Admission first: a shed request is refused here, before any
        # work is queued on the service — that is the whole point.
        ticket = None
        endpoint_class = _ENDPOINT_CLASS.get(path)
        if self._admission is not None and endpoint_class is not None:
            try:
                ticket = self._admission.admit(endpoint_class)
            except OverloadShedError as exc:
                payload = json.dumps(
                    {
                        "error": str(exc),
                        "shed": True,
                        "endpoint_class": endpoint_class,
                        "retry_after_s": exc.retry_after,
                    }
                )
                if self._tracer.enabled:
                    self._tracer.metrics.inc("serving.requests")
                    self._tracer.metrics.inc("serving.errors")
                return (
                    exc.status,
                    payload,
                    content_type,
                    _retry_after_header(exc.retry_after),
                )
        try:
            with self._tracer.span(
                "serving.request", method=method, path=path
            ) as span:
                self._inflight += 1
                if self._idle is not None:
                    self._idle.clear()
                try:
                    status, payload, content_type = await self._route(
                        method, path, query, body
                    )
                except BadRequestError as exc:
                    status, payload = 400, json.dumps({"error": str(exc)})
                except ServiceUnavailableError as exc:
                    status, payload = 503, json.dumps({"error": str(exc)})
                    extra = _retry_after_header(exc.retry_after)
                except CircuitOpenError as exc:
                    status, payload = 503, json.dumps({"error": str(exc)})
                    extra = _retry_after_header(exc.retry_after)
                except ServingError as exc:
                    status, payload = 400, json.dumps({"error": str(exc)})
                except Exception as exc:  # noqa: BLE001 - last-resort 500
                    status, payload = 500, json.dumps(
                        {"error": f"{type(exc).__name__}: {exc}"}
                    )
                span.set("status", status)
        finally:
            self._inflight -= 1
            if self._inflight == 0 and self._idle is not None:
                self._idle.set()
            if ticket is not None:
                ticket.release()
        if self._tracer.enabled:
            metrics = self._tracer.metrics
            metrics.inc("serving.requests")
            if status >= 400:
                metrics.inc("serving.errors")
            metrics.observe(
                "serving.request_ms", (time.perf_counter() - started) * 1000.0
            )
        return status, payload, content_type, extra

    async def _route(
        self,
        method: str,
        path: str,
        query: Mapping[str, str],
        body: bytes,
    ) -> Tuple[int, str, str]:
        loop = asyncio.get_running_loop()
        if path == "/health":
            if method != "GET":
                return self._method_not_allowed("GET")
            return (
                200,
                json.dumps(
                    {
                        "status": "ok",
                        "store": self._service.path,
                        "version": self._service.version,
                        "can_ingest": self._service.can_ingest,
                    }
                ),
                "application/json",
            )
        if path == "/resolve":
            side, key = self._resolve_arguments(method, query, body)
            # The pool already runs the lookup off-thread; run_in_executor
            # here keeps the *wait* for its future off the event loop too.
            result = await loop.run_in_executor(
                None, lambda: self._service.resolve(side, key)
            )
            return 200, json.dumps(result), "application/json"
        if path == "/ingest":
            if method != "POST":
                return self._method_not_allowed("POST")
            data = self._json_body(body)
            side = str(data.get("source", ""))
            row = data.get("row")
            if not isinstance(row, Mapping):
                raise BadRequestError('"row" must be an attribute/value object')
            result = await loop.run_in_executor(
                None, lambda: self._service.ingest(side, row)
            )
            return 200, json.dumps(result), "application/json"
        if path == "/invalidate":
            if method != "POST":
                return self._method_not_allowed("POST")
            dropped = self._service.invalidate()
            return 200, json.dumps({"invalidated": dropped}), "application/json"
        if path == "/stats":
            if method != "GET":
                return self._method_not_allowed("GET")
            stats = await loop.run_in_executor(None, self._service.stats)
            if self._admission is not None:
                stats["admission"] = self._admission.stats()
            return 200, json.dumps(stats), "application/json"
        if path == "/metrics":
            if method != "GET":
                return self._method_not_allowed("GET")
            snapshot = (
                self._tracer.metrics.snapshot() if self._tracer.enabled else {}
            )
            return (
                200,
                metrics_to_prometheus(snapshot),
                "text/plain; version=0.0.4",
            )
        return 404, json.dumps({"error": f"no route {path!r}"}), "application/json"

    @staticmethod
    def _method_not_allowed(allowed: str) -> Tuple[int, str, str]:
        return (
            405,
            json.dumps({"error": f"method not allowed; use {allowed}"}),
            "application/json",
        )

    @staticmethod
    def _json_body(body: bytes) -> Dict[str, Any]:
        if not body:
            raise BadRequestError("request body is empty")
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequestError(f"body is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise BadRequestError("body must be a JSON object")
        return data

    def _resolve_arguments(
        self, method: str, query: Mapping[str, str], body: bytes
    ) -> Tuple[str, KeyValues]:
        if method == "GET":
            side = query.get("source", "")
            key_text = query.get("key", "")
            if not side or not key_text:
                raise BadRequestError(
                    "GET /resolve needs ?source=NAME&key=attr=value,..."
                )
            return side, parse_query_key(key_text)
        if method == "POST":
            data = self._json_body(body)
            return str(data.get("source", "")), decode_key_json(data.get("key"))
        raise BadRequestError("use GET or POST for /resolve")

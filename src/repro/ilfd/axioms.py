"""Armstrong's axioms for ILFDs (Section 5.2).

The paper proves that reflexivity, augmentation, and transitivity are a
sound and complete inference system for ILFDs (Lemma 1, Theorem 1), and
derives the union, pseudo-transitivity, and decomposition rules (Lemma 2).

This module provides:

- the individual inference rules as functions producing new ILFDs
  (:func:`augmentation`, :func:`transitivity`, :func:`union_rule`,
  :func:`pseudo_transitivity`, :func:`decompose`),
- :func:`is_trivial` (reflexivity: ILFDs that hold in any entity set),
- :func:`implies` -- decide ``F ⊨ X → Y`` via the closure algorithm, which
  Theorem 1 guarantees coincides with derivability from the axioms,
- :func:`prove` -- reconstruct an explicit axiom-level proof of an implied
  ILFD, in the style of the textbook FD proof, from closure provenance.

Inference *statements* are represented as ILFD objects themselves: an
ILFD is syntactically a pair of conjunctions, which is exactly what a
sequent ``X → Y`` is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.ilfd.closure import closure
from repro.ilfd.conditions import Condition, conjunction
from repro.ilfd.errors import MalformedILFDError
from repro.ilfd.ilfd import ILFD, ILFDSet


# ----------------------------------------------------------------------
# Individual inference rules
# ----------------------------------------------------------------------
def is_trivial(ilfd: ILFD) -> bool:
    """Reflexivity test: ``X → Y`` is trivial iff ``Y ⊆ X``.

    "ILFDs of this form are known as trivial ILFDs because they hold in
    any entity set and do not depend on F."
    """
    return ilfd.consequent <= ilfd.antecedent


def reflexivity(symbols: Iterable[Condition], subset: Iterable[Condition]) -> ILFD:
    """Build the trivial ILFD ``X → X'`` for ``X' ⊆ X``."""
    x = conjunction(symbols)
    sub = conjunction(subset)
    if not sub <= x:
        raise MalformedILFDError("reflexivity requires the consequent to be a subset")
    return ILFD(x, sub)


def augmentation(ilfd: ILFD, extra: Iterable[Condition]) -> ILFD:
    """Augmentation: from ``X → Y`` infer ``(X ∧ Z) → (Y ∧ Z)``."""
    z = conjunction(extra)
    return ILFD(ilfd.antecedent | z, ilfd.consequent | z)


def transitivity(first: ILFD, second: ILFD) -> ILFD:
    """Transitivity: from ``X → Y`` and ``Y' → Z`` with ``Y' ⊆ Y``, infer ``X → Z``.

    The subset allowance is the usual harmless strengthening (formally it
    is reflexivity + transitivity, both axioms).
    """
    if not second.antecedent <= first.consequent:
        raise MalformedILFDError(
            f"transitivity requires {second!r}'s antecedent to be contained "
            f"in {first!r}'s consequent"
        )
    return ILFD(first.antecedent, second.consequent)


def union_rule(first: ILFD, second: ILFD) -> ILFD:
    """Union (Lemma 2.1): from ``X → Y`` and ``X → Z`` infer ``X → (Y ∧ Z)``."""
    if first.antecedent != second.antecedent:
        raise MalformedILFDError("union rule requires identical antecedents")
    return ILFD(first.antecedent, first.consequent | second.consequent)


def pseudo_transitivity(first: ILFD, second: ILFD) -> ILFD:
    """Pseudo-transitivity (Lemma 2.2).

    From ``X → Y`` and ``(W ∧ Y) → Z`` infer ``(W ∧ X) → Z``.  The paper's
    Example-3 ILFD I9 is exactly such a derivation (I7 then I8).
    """
    if not first.consequent <= second.antecedent:
        raise MalformedILFDError(
            "pseudo-transitivity requires the first consequent to appear in "
            "the second antecedent"
        )
    w = second.antecedent - first.consequent
    return ILFD(w | first.antecedent, second.consequent)


def decompose(ilfd: ILFD) -> List[ILFD]:
    """Decomposition (Lemma 2.3): ``X → (Y ∧ Z)`` yields ``X → Z`` for each part."""
    return ilfd.split()


# ----------------------------------------------------------------------
# Implication and proof extraction
# ----------------------------------------------------------------------
def implies(ilfds: ILFDSet | Iterable[ILFD], candidate: ILFD) -> bool:
    """Decide ``F ⊨ candidate`` (equivalently ``F ⊢ candidate``, Theorem 1).

    True iff the candidate's consequent is contained in the closure of its
    antecedent under F.
    """
    result = closure(candidate.antecedent, ilfds)
    return candidate.consequent <= result.symbols


@dataclass(frozen=True)
class Sequent:
    """An unvalidated inference statement ``X → Y``.

    Proof lines use Sequent rather than ILFD because the paper's
    propositional semantics lets intermediate statements mention two values
    of one attribute (its completeness proof happily sets all symbols of a
    closure true), which the tuple-realizability validation in
    :class:`~repro.ilfd.ilfd.ILFD` would reject.
    """

    antecedent: FrozenSet[Condition]
    consequent: FrozenSet[Condition]

    @classmethod
    def of(cls, ilfd: ILFD) -> "Sequent":
        """View an ILFD as a sequent."""
        return cls(ilfd.antecedent, ilfd.consequent)

    def __repr__(self) -> str:
        ante = " ∧ ".join(str(c) for c in sorted(self.antecedent))
        cons = " ∧ ".join(str(c) for c in sorted(self.consequent))
        return f"{ante} → {cons}"


@dataclass(frozen=True)
class ProofStep:
    """One line of an axiom-level proof.

    Attributes
    ----------
    rule:
        One of ``"given"``, ``"reflexivity"``, ``"augmentation"``,
        ``"transitivity"``.
    statement:
        The sequent established by this step.
    premises:
        Indices (into the proof) of the statements this step uses.
    """

    rule: str
    statement: Sequent
    premises: Tuple[int, ...] = ()

    def __str__(self) -> str:
        src = f" [{', '.join(map(str, self.premises))}]" if self.premises else ""
        return f"{self.rule}{src}: {self.statement!r}"


def prove(ilfds: ILFDSet | Iterable[ILFD], candidate: ILFD) -> Optional[List[ProofStep]]:
    """Produce an explicit proof of *candidate* from F, or None.

    Follows the standard completeness argument: replay the closure's ILFD
    firings, maintaining the invariant that ``X → Z_i`` is proved where
    ``Z_i`` is the symbol set after *i* firings:

    1. reflexivity gives ``X → X``;
    2. for a fired ILFD ``W → Q`` with ``W ⊆ Z``: augmentation by ``Z``
       gives ``(W ∧ Z) → (Q ∧ Z)``, i.e. ``Z → (Z ∧ Q)`` since ``W ⊆ Z``,
       and transitivity with ``X → Z`` yields ``X → (Z ∧ Q)``;
    3. a final reflexivity + transitivity projects onto the candidate's
       consequent.
    """
    if not isinstance(ilfds, ILFDSet):
        ilfds = ILFDSet(ilfds)
    x = candidate.antecedent
    result = closure(x, ilfds)
    if not candidate.consequent <= result.symbols:
        return None

    steps: List[ProofStep] = []

    def emit(rule: str, statement: Sequent, *premises: int) -> int:
        steps.append(ProofStep(rule, statement, tuple(premises)))
        return len(steps) - 1

    current = emit("reflexivity", Sequent(x, x))
    known: FrozenSet[Condition] = frozenset(x)

    # Replay firings in an order compatible with the closure: fire any
    # not-yet-fired ILFD whose antecedent is satisfied, until the
    # consequent is covered.
    pending = [f for f in ilfds if f.consequent & result.symbols]
    progress = True
    while not candidate.consequent <= known and progress:
        progress = False
        for ilfd in list(pending):
            if ilfd.antecedent <= known:
                pending.remove(ilfd)
                if ilfd.consequent <= known:
                    continue
                given = emit("given", Sequent.of(ilfd))
                augmented = emit(
                    "augmentation",
                    Sequent(ilfd.antecedent | known, ilfd.consequent | known),
                    given,
                )
                new_known = known | ilfd.consequent
                combined = emit(
                    "transitivity",
                    Sequent(x, new_known),
                    current,
                    augmented,
                )
                known = new_known
                current = combined
                progress = True
    if not candidate.consequent <= known:  # pragma: no cover - guarded by closure
        return None

    if candidate.consequent != known:
        projection = emit("reflexivity", Sequent(known, candidate.consequent))
        current = emit(
            "transitivity", Sequent.of(candidate), current, projection
        )
    return steps


def equivalent(first: ILFDSet | Iterable[ILFD], second: ILFDSet | Iterable[ILFD]) -> bool:
    """True iff the two ILFD sets have the same closure (F ≡ G).

    Each ILFD of one set must be implied by the other set, both ways.
    """
    first_set = first if isinstance(first, ILFDSet) else ILFDSet(first)
    second_set = second if isinstance(second, ILFDSet) else ILFDSet(second)
    return all(implies(second_set, f) for f in first_set) and all(
        implies(first_set, g) for g in second_set
    )

"""Exceptions for the ILFD subpackage."""


class ILFDError(Exception):
    """Base class for ILFD-related errors."""


class MalformedILFDError(ILFDError):
    """An ILFD (or condition set) is syntactically ill-formed.

    Raised for empty antecedents/consequents and for internally
    contradictory sides (two different values asserted for one attribute
    within the same conjunction).
    """


class DerivationConflictError(ILFDError):
    """Exhaustive derivation produced two different values for an attribute.

    The paper assumes "all tuples modeling the real world are consistent
    with the ILFDs" (Section 4.1); a conflict means either the data or the
    ILFD set violates that assumption, so we surface it rather than pick a
    winner.
    """

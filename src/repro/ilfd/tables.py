"""ILFD tables: uniform ILFD families stored as relations.

Section 4.2: "For the second category of useful ILFDs, it may be storage
efficient to store the ILFDs as relations.  ILFDs of the form
``(E.A1=a1) ∧ … ∧ (E.An=an) → (E.B=b)`` can be stored in the relation
schema ``ILFD(A1, A2, …, An, B)``" — Table 8 shows
``IM(speciality, cuisine)`` holding I1–I4.

An :class:`ILFDTable` wraps such a relation: the first *n* attributes are
the antecedent pattern ``x̄`` and the last attribute is the derived
attribute *y*.  The matching-table construction joins source relations
with these tables (the ``R ⋈ IM(r̄;j, yi)`` expressions of Section 4.2).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.ilfd.conditions import Condition
from repro.ilfd.errors import ILFDError, MalformedILFDError
from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.relational.attribute import Attribute
from repro.relational.errors import KeyViolationError
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class ILFDTable:
    """A uniform family of ILFDs ``x̄ → y`` materialised as a relation.

    Parameters
    ----------
    antecedent_attributes:
        The attributes ``A1..An`` of the antecedent pattern.
    derived_attribute:
        The consequent attribute ``B``.
    rows:
        Value tuples ``(a1, .., an, b)`` or mappings; each row is one ILFD.

    The antecedent attributes form the table's key: two rows with the same
    antecedent values but different derived values would be contradictory
    ILFDs, and the Relation key machinery rejects them.
    """

    def __init__(
        self,
        antecedent_attributes: Sequence[str],
        derived_attribute: str,
        rows: Iterable[Mapping[str, Any] | Sequence[Any]] = (),
        *,
        name: str = "",
    ) -> None:
        ante = list(antecedent_attributes)
        if not ante:
            raise MalformedILFDError("ILFD table needs at least one antecedent attribute")
        if derived_attribute in ante:
            raise MalformedILFDError(
                f"derived attribute {derived_attribute!r} cannot also be an "
                "antecedent attribute"
            )
        if len(set(ante)) != len(ante):
            raise MalformedILFDError(f"duplicate antecedent attributes in {ante}")
        self._antecedent_attributes: Tuple[str, ...] = tuple(ante)
        self._derived_attribute = derived_attribute
        schema = Schema(
            [Attribute(a) for a in ante] + [Attribute(derived_attribute)],
            keys=[tuple(ante)],
        )
        display = name or "IM(" + ",".join(ante) + ";" + derived_attribute + ")"
        try:
            self._relation = Relation(schema, rows, name=display)
        except KeyViolationError as exc:
            raise ILFDError(
                f"contradictory ILFD rows in table {display}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    @property
    def antecedent_attributes(self) -> Tuple[str, ...]:
        """The antecedent pattern attributes x̄."""
        return self._antecedent_attributes

    @property
    def derived_attribute(self) -> str:
        """The consequent attribute y."""
        return self._derived_attribute

    @property
    def relation(self) -> Relation:
        """The backing relation (Table-8 layout)."""
        return self._relation

    def __len__(self) -> int:
        return len(self._relation)

    def __repr__(self) -> str:
        return (
            f"ILFDTable({','.join(self._antecedent_attributes)} → "
            f"{self._derived_attribute}; {len(self)} rows)"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ILFDTable):
            return NotImplemented
        return (
            self._antecedent_attributes == other._antecedent_attributes
            and self._derived_attribute == other._derived_attribute
            and self._relation == other._relation
        )

    def __hash__(self) -> int:
        return hash(
            (self._antecedent_attributes, self._derived_attribute, self._relation)
        )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_ilfds(self) -> ILFDSet:
        """Expand the table into individual ILFD objects."""
        out: List[ILFD] = []
        for index, row in enumerate(self._relation, start=1):
            antecedent = {a: row[a] for a in self._antecedent_attributes}
            consequent = {self._derived_attribute: row[self._derived_attribute]}
            label = f"{self._relation.name}[{index}]"
            out.append(ILFD(antecedent, consequent, name=label))
        return ILFDSet(out)

    @classmethod
    def from_ilfds(
        cls,
        ilfds: ILFDSet | Iterable[ILFD],
        *,
        name: str = "",
    ) -> "ILFDTable":
        """Materialise a *uniform* ILFD family as a table.

        All ILFDs must share the same antecedent attribute set and the
        same single consequent attribute; otherwise the family is not
        tabular and :class:`~repro.ilfd.errors.MalformedILFDError` is
        raised (store it as a plain ILFDSet instead).
        """
        items = list(ilfds)
        if not items:
            raise MalformedILFDError("cannot build an ILFD table from no ILFDs")
        ante_attrs = sorted(items[0].antecedent_attributes)
        cons_attrs = sorted(items[0].consequent_attributes)
        if len(cons_attrs) != 1:
            raise MalformedILFDError(
                "ILFD tables require single-attribute consequents; "
                "split() the ILFDs first"
            )
        rows: List[Mapping[str, Any]] = []
        for ilfd in items:
            if sorted(ilfd.antecedent_attributes) != ante_attrs or sorted(
                ilfd.consequent_attributes
            ) != cons_attrs:
                raise MalformedILFDError(
                    f"non-uniform ILFD {ilfd!r}; expected antecedent over "
                    f"{ante_attrs} deriving {cons_attrs[0]}"
                )
            values = {c.attribute: c.value for c in ilfd.antecedent}
            values.update({c.attribute: c.value for c in ilfd.consequent})
            rows.append(values)
        return cls(ante_attrs, cons_attrs[0], rows, name=name)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def derive(self, row: Mapping[str, Any]) -> Optional[Any]:
        """Value of the derived attribute for *row*, or None.

        Fires iff the row binds every antecedent attribute to a value that
        matches some table row (NULLs never match, per ``non_null_eq``).
        """
        conditions = []
        for attr in self._antecedent_attributes:
            try:
                value = row[attr]
            except Exception:
                return None
            conditions.append((attr, value))
        for table_row in self._relation:
            if all(
                Condition(attr, table_row[attr]).holds_in(row)
                for attr in self._antecedent_attributes
            ):
                return table_row[self._derived_attribute]
        return None


def partition_into_tables(ilfds: ILFDSet | Iterable[ILFD]) -> List[ILFDTable]:
    """Group a (split) ILFD set into the fewest uniform ILFD tables.

    ILFDs are grouped by (antecedent attribute set, consequent attribute);
    each group becomes one table.  This is how the Section-4.2 algebraic
    construction obtains its ``IM(r̄;j, yi)`` inputs from a flat ILFD set.
    """
    groups: dict = {}
    order: List[Tuple[Tuple[str, ...], str]] = []
    items = list(ilfds)
    for ilfd in items:
        for part in ilfd.split():
            ante = tuple(sorted(part.antecedent_attributes))
            cons = next(iter(part.consequent_attributes))
            key = (ante, cons)
            if key not in groups:
                groups[key] = []
                order.append(key)
            if part not in groups[key]:
                groups[key].append(part)
    return [ILFDTable.from_ilfds(groups[key]) for key in order]

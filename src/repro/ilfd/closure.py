"""Closure of a set of propositional symbols with respect to ILFDs.

Section 5.2: "computing the closure X+_F of a set of propositional symbols
X with respect to a set of ILFDs F is relatively easier [than computing
F+].  Essentially, the algorithm for computing X+_F is the same as that
for computing the closure of a set of attributes with respect to a set of
FDs."

We implement that forward-chaining algorithm with two extras the rest of
the system relies on:

- **provenance**: each derived symbol records the ILFD that produced it,
  so proofs (Theorem 1) and derived-ILFD explanations (the paper's I9) can
  be reconstructed;
- **consistency diagnostics**: the paper's propositional treatment regards
  ``(A=a1)`` and ``(A=a2)`` as independent symbols, so a closure may
  contain two values for one attribute.  We faithfully keep the
  propositional semantics but expose :func:`is_attribute_consistent` so
  callers can detect when a symbol set can never be realised by a tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.ilfd.conditions import Condition, conjunction
from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.observability.tracer import NO_OP_TRACER, Tracer

__all__ = [
    "ClosureResult",
    "closure",
    "is_attribute_consistent",
    "conflicting_attributes",
]


@dataclass(frozen=True)
class ClosureResult:
    """The closure X+_F plus the provenance of every derived symbol.

    Attributes
    ----------
    start:
        The original symbol set X.
    symbols:
        The closure X+_F.
    provenance:
        Maps each *derived* symbol (in ``symbols - start``) to the ILFD
        whose firing added it.  Symbols of ``start`` have no provenance.
    rounds:
        Number of fixpoint iterations the computation took (for the
        scaling benchmarks).
    """

    start: FrozenSet[Condition]
    symbols: FrozenSet[Condition]
    provenance: Mapping[Condition, ILFD]
    rounds: int

    def derived(self) -> FrozenSet[Condition]:
        """Symbols added by the closure (i.e. not in the start set)."""
        return self.symbols - self.start

    def __contains__(self, symbol: object) -> bool:
        return symbol in self.symbols

    def explain(self, symbol: Condition) -> List[ILFD]:
        """The chain of ILFDs that led to *symbol*, outermost last.

        Returns [] for symbols of the start set; raises KeyError for
        symbols outside the closure.
        """
        if symbol in self.start:
            return []
        if symbol not in self.symbols:
            raise KeyError(f"{symbol} is not in the closure")
        chain: List[ILFD] = []
        frontier = [symbol]
        seen: set = set()
        while frontier:
            current = frontier.pop()
            if current in seen or current in self.start:
                continue
            seen.add(current)
            ilfd = self.provenance[current]
            if ilfd not in chain:
                chain.append(ilfd)
            frontier.extend(ilfd.antecedent)
        chain.reverse()
        return chain


def closure(
    start: Iterable[Condition] | Mapping[str, object],
    ilfds: ILFDSet | Iterable[ILFD],
    *,
    tracer: Optional[Tracer] = None,
) -> ClosureResult:
    """Compute X+_F by forward chaining to a fixpoint.

    Uses the classic counting algorithm (one counter of unsatisfied
    antecedent symbols per ILFD) so each ILFD fires at most once and the
    total work is linear in the size of F plus the closure.  With a
    *tracer*, records saturation rounds, firings, and derived-symbol
    counts into its metrics registry.
    """
    if tracer is None:
        tracer = NO_OP_TRACER
    if not isinstance(ilfds, ILFDSet):
        ilfds = ILFDSet(ilfds)
    x = conjunction(start) if not isinstance(start, frozenset) else start
    # Re-validate even pre-frozen inputs: conjunction() rejects
    # contradictory starts, which are always caller bugs.
    x = conjunction(x)

    waiting: Dict[Condition, List[int]] = {}
    missing: List[int] = []
    fired: List[bool] = []
    for index, ilfd in enumerate(ilfds):
        outstanding = [c for c in ilfd.antecedent if c not in x]
        missing.append(len(outstanding))
        fired.append(False)
        for cond in outstanding:
            waiting.setdefault(cond, []).append(index)

    symbols: set = set(x)
    provenance: Dict[Condition, ILFD] = {}
    agenda: List[int] = [i for i, count in enumerate(missing) if count == 0]
    rounds = 0
    while agenda:
        rounds += 1
        index = agenda.pop()
        if fired[index]:
            continue
        fired[index] = True
        ilfd = ilfds[index]
        for cond in ilfd.consequent:
            if cond in symbols:
                continue
            symbols.add(cond)
            provenance[cond] = ilfd
            for follower in waiting.get(cond, ()):  # wake ILFDs waiting on cond
                missing[follower] -= 1
                if missing[follower] == 0 and not fired[follower]:
                    agenda.append(follower)
    if tracer.enabled:
        metrics = tracer.metrics
        metrics.inc("closure.computations")
        metrics.inc("closure.firings", sum(fired))
        metrics.inc("closure.derived_symbols", len(provenance))
        metrics.observe("closure.rounds", rounds)
    return ClosureResult(
        start=x,
        symbols=frozenset(symbols),
        provenance=provenance,
        rounds=rounds,
    )


def is_attribute_consistent(symbols: Iterable[Condition]) -> bool:
    """True iff no attribute is assigned two different values.

    The paper's propositional semantics never checks this (its
    completeness proof builds a "relation" in which all symbols of X+ are
    true); a False here flags a symbol set unrealisable by any tuple.
    """
    seen: Dict[str, object] = {}
    for cond in symbols:
        if cond.attribute in seen and seen[cond.attribute] != cond.value:
            return False
        seen[cond.attribute] = cond.value
    return True


def conflicting_attributes(symbols: Iterable[Condition]) -> Dict[str, Tuple]:
    """Attributes assigned ≥2 values, with the values (diagnostics)."""
    values: Dict[str, set] = {}
    for cond in symbols:
        values.setdefault(cond.attribute, set()).add(cond.value)
    return {
        attr: tuple(sorted(map(repr, vals)))
        for attr, vals in values.items()
        if len(vals) > 1
    }

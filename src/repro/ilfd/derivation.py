"""Applying ILFDs to derive missing attribute values.

"ILFDs can be used to derive the missing key attribute values that are
required for using extended key equivalence" (Section 4.1).  The paper's
prototype realises this with Prolog rules ending in a cut, giving a
*first-match-wins*, top-down, recursive semantics; the Section-4.2
algebraic formulation instead joins all ILFD tables and unions the
results.  Both are implemented here:

- :attr:`DerivationPolicy.FIRST_MATCH` — the prototype's semantics: to
  value attribute *B* of a tuple, try the ILFDs deriving *B* in
  declaration order; antecedent conditions are checked recursively (a
  missing antecedent value may itself be derived, which is how Example 3
  derives ``speciality=Gyros`` via ``county=Ramsey`` without ever
  materialising the "derived ILFD" I9); the first ILFD that fires wins
  (the cut) and remaining ILFDs for *B* are not consulted.
- :attr:`DerivationPolicy.ALL_CONSISTENT` — an exhaustive fixpoint chase:
  every applicable ILFD fires; two ILFDs deriving different values for
  one attribute raise :class:`~repro.ilfd.errors.DerivationConflictError`
  (the paper assumes data and ILFDs are mutually consistent, so a
  conflict is a specification error worth surfacing, not a tie to break).

Values already present in the tuple are never overwritten — the paper
assumes "the attribute values of tuples are accurate with respect to that
of the corresponding real-world entities" (Section 3.1) — but a derived
value *contradicting* a present value is reported.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.ilfd.errors import DerivationConflictError
from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.observability.tracer import NO_OP_TRACER, Tracer
from repro.relational.attribute import Attribute
from repro.relational.nulls import NULL, is_null
from repro.relational.relation import Relation
from repro.relational.row import Row

__all__ = ["DerivationPolicy", "DerivationResult", "DerivationEngine"]


class DerivationPolicy(enum.Enum):
    """How to resolve multiple applicable ILFDs for one attribute."""

    FIRST_MATCH = "first_match"
    ALL_CONSISTENT = "all_consistent"


@dataclass(frozen=True)
class DerivationResult:
    """Outcome of extending one tuple.

    Attributes
    ----------
    row:
        The extended row; requested target attributes are present, NULL
        where underivable.
    derived:
        Attribute → value mapping of newly derived (previously NULL or
        absent) values.
    fired:
        The ILFDs that fired, in firing order.
    contradictions:
        Attribute → (existing, derived) pairs where an ILFD would have
        contradicted a present non-NULL value.  Non-empty means the tuple
        violates the ILFD set (Section 4.1's consistency assumption).
    """

    row: Row
    derived: Mapping[str, Any]
    fired: Tuple[ILFD, ...]
    contradictions: Mapping[str, Tuple[Any, Any]]

    def is_clean(self) -> bool:
        """True iff no contradiction was observed."""
        return not self.contradictions


class DerivationEngine:
    """Derives missing attribute values of tuples from an ILFD set.

    Parameters
    ----------
    ilfds:
        The available ILFDs, in declaration order (order is semantic for
        ``FIRST_MATCH``, mirroring the prototype's rule order and cuts).
    policy:
        The resolution policy; defaults to the prototype's
        ``FIRST_MATCH``.
    tracer:
        Optional :class:`~repro.observability.Tracer`; when given, the
        engine records per-row derivation metrics (firings, chain
        depths, contradictions) and a span per relation extension.
        Defaults to the free no-op tracer.
    """

    def __init__(
        self,
        ilfds: ILFDSet | Iterable[ILFD],
        *,
        policy: DerivationPolicy = DerivationPolicy.FIRST_MATCH,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._ilfds = ilfds if isinstance(ilfds, ILFDSet) else ILFDSet(ilfds)
        self._policy = policy
        self._tracer = tracer if tracer is not None else NO_OP_TRACER
        # Split to single-consequent form and index by derived attribute,
        # preserving declaration order within each attribute.
        self._by_attribute: Dict[str, List[ILFD]] = {}
        for ilfd in self._ilfds:
            for part in ilfd.split():
                attr = next(iter(part.consequent_attributes))
                self._by_attribute.setdefault(attr, []).append(part)
        # For FIRST_MATCH, additionally hash-index each attribute's rules
        # by (antecedent attribute set → antecedent value tuple).  Uniform
        # ILFD families (the paper's Table-8 kind) then cost one lookup
        # per family instead of one check per rule, while the recorded
        # declaration index preserves the exact first-match (cut) order.
        self._groups_by_attribute: Dict[
            str, List[Tuple[Tuple[str, ...], Dict[Tuple[Any, ...], Tuple[int, ILFD]]]]
        ] = {}
        for attr, parts in self._by_attribute.items():
            groups: Dict[Tuple[str, ...], Dict[Tuple[Any, ...], Tuple[int, ILFD]]] = {}
            order: List[Tuple[str, ...]] = []
            for index, part in enumerate(parts):
                signature = tuple(sorted(part.antecedent_attributes))
                if signature not in groups:
                    groups[signature] = {}
                    order.append(signature)
                values = tuple(
                    cond.value for cond in sorted(part.antecedent)
                )
                groups[signature].setdefault(values, (index, part))
            self._groups_by_attribute[attr] = [
                (signature, groups[signature]) for signature in order
            ]

    @property
    def ilfds(self) -> ILFDSet:
        """The engine's ILFD set."""
        return self._ilfds

    @property
    def policy(self) -> DerivationPolicy:
        """The active derivation policy."""
        return self._policy

    def derivable_attributes(self) -> FrozenSet[str]:
        """Attributes some ILFD can derive."""
        return frozenset(self._by_attribute)

    # ------------------------------------------------------------------
    # Single-row derivation
    # ------------------------------------------------------------------
    def extend_row(
        self,
        row: Mapping[str, Any],
        targets: Optional[Iterable[str]] = None,
    ) -> DerivationResult:
        """Extend *row* with derived values for *targets*.

        *targets* defaults to every derivable attribute.  The input row is
        not modified; absent target attributes are added (NULL if
        underivable).
        """
        wanted = list(targets) if targets is not None else sorted(self._by_attribute)
        if self._policy is DerivationPolicy.FIRST_MATCH:
            result = self._extend_first_match(row, wanted)
        else:
            result = self._extend_all_consistent(row, wanted)
        if self._tracer.enabled:
            metrics = self._tracer.metrics
            metrics.inc("ilfd.rows_extended")
            metrics.inc("ilfd.firings", len(result.fired))
            metrics.inc("ilfd.derived_values", len(result.derived))
            metrics.observe("ilfd.chain_depth", len(result.fired))
            if result.contradictions:
                metrics.inc("ilfd.contradictions", len(result.contradictions))
        return result

    def extend_relation(
        self,
        relation: Relation,
        targets: Sequence[str],
        *,
        strict: bool = False,
        observer: Optional[Callable[[Row, DerivationResult], None]] = None,
    ) -> Relation:
        """The paper's R → R' step: add *targets*, derive values per row.

        With ``strict=True`` a contradiction anywhere raises
        :class:`DerivationConflictError`; otherwise present values win and
        the contradiction is dropped (the prototype's behaviour — facts
        shadow rules).

        *observer*, when given, is called as ``observer(original_row,
        result)`` for every row whose derivation fired at least one ILFD —
        the hook the store subsystem uses to journal derivations.
        """
        new_attrs = [
            Attribute(name)
            for name in targets
            if name not in relation.schema
        ]
        schema = relation.schema.extend(new_attrs) if new_attrs else relation.schema
        rows: List[Row] = []
        with self._tracer.span(
            "derive.extend_relation",
            relation=relation.name,
            rows=len(relation),
            ilfds=len(self._ilfds),
        ):
            for row in relation:
                result = self.extend_row(row, targets)
                if strict and result.contradictions:
                    raise DerivationConflictError(
                        f"row {row!r} contradicts ILFDs on "
                        f"{sorted(result.contradictions)}"
                    )
                if observer is not None and result.fired:
                    observer(row, result)
                rows.append(result.row)
        extended = Relation(schema, (), name=f"{relation.name}'", enforce_keys=False)
        extended._rows = tuple(rows)
        extended._row_set = frozenset(rows)
        return extended

    # ------------------------------------------------------------------
    # FIRST_MATCH (prototype / Prolog cut semantics)
    # ------------------------------------------------------------------
    def _extend_first_match(
        self, row: Mapping[str, Any], targets: List[str]
    ) -> DerivationResult:
        cache: Dict[str, Any] = {}
        fired: List[ILFD] = []
        contradictions: Dict[str, Tuple[Any, Any]] = {}
        in_progress: Set[str] = set()

        def value_of(attribute: str) -> Any:
            """Top-down evaluation mirroring the Prolog rules.

            Facts (non-NULL stored values) shadow rules; otherwise the
            lowest-declaration-index ILFD for the attribute whose
            antecedent holds fires and cuts (looked up per antecedent
            signature via the value index, so uniform families cost one
            dict probe).  ``in_progress`` breaks recursive cycles the way
            Prolog's depth-first search would loop (we fail instead).
            """
            if attribute in cache:
                return cache[attribute]
            try:
                stored = row[attribute]
            except Exception:
                stored = NULL
            if not is_null(stored):
                cache[attribute] = stored
                return stored
            if attribute in in_progress:
                return NULL
            in_progress.add(attribute)
            try:
                best: Optional[Tuple[int, ILFD]] = None
                for signature, index in self._groups_by_attribute.get(attribute, ()):
                    resolved = tuple(value_of(a) for a in signature)
                    if any(is_null(v) for v in resolved):
                        continue
                    candidate = index.get(resolved)
                    if candidate is not None and (
                        best is None or candidate[0] < best[0]
                    ):
                        best = candidate
                if best is None:
                    cache[attribute] = NULL
                    return NULL
                ilfd = best[1]
                (consequent,) = ilfd.consequent
                cache[attribute] = consequent.value
                fired.append(ilfd)
                return consequent.value  # the cut
            finally:
                in_progress.discard(attribute)

        derived: Dict[str, Any] = {}
        out = dict(row)
        for target in targets:
            value = value_of(target)
            existing = out.get(target, NULL)
            if not is_null(existing):
                continue
            out[target] = value
            if not is_null(value):
                derived[target] = value
        # Detect contradictions: an ILFD whose antecedent holds entirely on
        # *stored* values but whose consequent clashes with a stored value.
        # The value index makes this one dict probe per antecedent
        # signature instead of one scan per ILFD.
        def stored_value(attribute: str) -> Any:
            try:
                value = row[attribute]
            except Exception:
                return NULL
            return value

        for groups in self._groups_by_attribute.values():
            for signature, index in groups:
                resolved = tuple(stored_value(a) for a in signature)
                if any(is_null(v) for v in resolved):
                    continue
                candidate = index.get(resolved)
                if candidate is None:
                    continue
                (cond,) = candidate[1].consequent
                if cond.contradicts(row):
                    contradictions[cond.attribute] = (
                        row[cond.attribute],
                        cond.value,
                    )
        return DerivationResult(
            row=Row(out),
            derived=derived,
            fired=tuple(fired),
            contradictions=contradictions,
        )

    # ------------------------------------------------------------------
    # ALL_CONSISTENT (exhaustive fixpoint chase)
    # ------------------------------------------------------------------
    def _extend_all_consistent(
        self, row: Mapping[str, Any], targets: List[str]
    ) -> DerivationResult:
        current: Dict[str, Any] = dict(row)
        fired: List[ILFD] = []
        derived: Dict[str, Any] = {}
        contradictions: Dict[str, Tuple[Any, Any]] = {}
        remaining = [part for parts in self._by_attribute.values() for part in parts]
        rounds = 0
        changed = True
        while changed:
            rounds += 1
            changed = False
            still: List[ILFD] = []
            for ilfd in remaining:
                if not ilfd.antecedent_holds_in(current):
                    still.append(ilfd)
                    continue
                (consequent,) = ilfd.consequent
                attr, value = consequent.attribute, consequent.value
                existing = current.get(attr, NULL)
                fired.append(ilfd)
                if is_null(existing):
                    current[attr] = value
                    derived[attr] = value
                    changed = True
                elif existing != value:
                    if attr in derived:
                        # Two ILFDs disagree about a value we derived.
                        raise DerivationConflictError(
                            f"ILFDs derive both {derived[attr]!r} and "
                            f"{value!r} for attribute {attr!r} of row {row!r}"
                        )
                    contradictions[attr] = (existing, value)
            remaining = still
        if self._tracer.enabled:
            self._tracer.metrics.observe("ilfd.chase_rounds", rounds)
        out = dict(current)
        for target in targets:
            out.setdefault(target, NULL)
        return DerivationResult(
            row=Row(out),
            derived=derived,
            fired=tuple(fired),
            contradictions=contradictions,
        )

"""ILFDs and ordered ILFD sets.

An ILFD (Section 4.1) is a semantic constraint

    ∀e ∈ E, (e.A1=a1) ∧ … ∧ (e.An=an) → (e.B=b)

on the real-world entities modelled by a relation.  Following Section 5 we
allow a conjunctive consequent (several ILFDs with identical antecedents
combine into one formula) and treat each ``(A=a)`` as a propositional
symbol.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Tuple, Union

from repro.ilfd.conditions import (
    Condition,
    as_assignment,
    attributes_of,
    conditions_hold_in,
    conjunction,
)
from repro.ilfd.errors import MalformedILFDError

ConditionsLike = Union[Iterable[Condition], Mapping[str, Any]]


class ILFD:
    """One instance-level functional dependency.

    Parameters
    ----------
    antecedent:
        Non-empty conjunction of conditions (iterable of
        :class:`~repro.ilfd.conditions.Condition` or an
        ``{attribute: value}`` mapping).
    consequent:
        Non-empty conjunction of derived conditions.
    name:
        Optional label ("I1", "I4", ...) used in proofs and provenance.

    The paper's well-formedness is enforced: both sides must be
    internally consistent, and a consequent condition may not contradict an
    antecedent condition on the same attribute (such an ILFD could never be
    satisfied by any tuple satisfying its antecedent).
    """

    __slots__ = ("_antecedent", "_consequent", "name")

    def __init__(
        self,
        antecedent: ConditionsLike,
        consequent: ConditionsLike,
        *,
        name: str = "",
    ) -> None:
        ante = conjunction(antecedent)
        cons = conjunction(consequent)
        if not ante:
            raise MalformedILFDError("ILFD antecedent cannot be empty")
        if not cons:
            raise MalformedILFDError("ILFD consequent cannot be empty")
        merged: Dict[str, Any] = as_assignment(ante)
        for cond in cons:
            if cond.attribute in merged and merged[cond.attribute] != cond.value:
                raise MalformedILFDError(
                    f"ILFD consequent {cond} contradicts its antecedent on "
                    f"{cond.attribute!r}"
                )
        self._antecedent = ante
        self._consequent = cons
        self.name = name

    # ------------------------------------------------------------------
    @property
    def antecedent(self) -> FrozenSet[Condition]:
        """The antecedent conjunction."""
        return self._antecedent

    @property
    def consequent(self) -> FrozenSet[Condition]:
        """The consequent conjunction."""
        return self._consequent

    @property
    def antecedent_attributes(self) -> FrozenSet[str]:
        """Attributes mentioned by the antecedent."""
        return attributes_of(self._antecedent)

    @property
    def consequent_attributes(self) -> FrozenSet[str]:
        """Attributes mentioned by the consequent."""
        return attributes_of(self._consequent)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ILFD):
            return NotImplemented
        return (
            self._antecedent == other._antecedent
            and self._consequent == other._consequent
        )

    def __hash__(self) -> int:
        return hash((self._antecedent, self._consequent))

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        ante = " ∧ ".join(str(c) for c in sorted(self._antecedent))
        cons = " ∧ ".join(str(c) for c in sorted(self._consequent))
        return f"{label}{ante} → {cons}"

    # ------------------------------------------------------------------
    # Semantics over tuples
    # ------------------------------------------------------------------
    def antecedent_holds_in(self, row: Mapping[str, Any]) -> bool:
        """True iff the row satisfies every antecedent condition."""
        return conditions_hold_in(self._antecedent, row)

    def satisfied_by(self, row: Mapping[str, Any]) -> bool:
        """Material implication: antecedent fails, or consequent holds.

        Mirrors the paper: "checking for violation of ILFDs involves only
        one tuple".  A NULL consequent attribute neither satisfies nor
        contradicts a condition; the paper treats such a tuple as not
        violating the ILFD (the value is merely unknown), so we require the
        consequent to be *non-contradicted* rather than bound.
        """
        if not self.antecedent_holds_in(row):
            return True
        return not any(cond.contradicts(row) for cond in self._consequent)

    def violated_by(self, row: Mapping[str, Any]) -> bool:
        """True iff the antecedent holds but some consequent is contradicted."""
        return not self.satisfied_by(row)

    def derivable_values(self, row: Mapping[str, Any]) -> Dict[str, Any]:
        """Consequent assignment derived for *row*, or {} if antecedent fails."""
        if not self.antecedent_holds_in(row):
            return {}
        return as_assignment(self._consequent)

    # ------------------------------------------------------------------
    # Structural helpers
    # ------------------------------------------------------------------
    def split(self) -> List["ILFD"]:
        """Decomposition rule: one ILFD per consequent condition."""
        return [
            ILFD(self._antecedent, [cond], name=self.name)
            for cond in sorted(self._consequent)
        ]

    def renamed_attributes(self, mapping: Mapping[str, str]) -> "ILFD":
        """ILFD with attributes renamed (aligning source-local names)."""

        def rename(conds: FrozenSet[Condition]) -> List[Condition]:
            return [
                Condition(mapping.get(c.attribute, c.attribute), c.value)
                for c in conds
            ]

        return ILFD(rename(self._antecedent), rename(self._consequent), name=self.name)

    @classmethod
    def of(cls, antecedent: Mapping[str, Any], consequent: Mapping[str, Any], *, name: str = "") -> "ILFD":
        """Shorthand constructor from two assignment dicts."""
        return cls(antecedent, consequent, name=name)


class ILFDSet:
    """An *ordered* collection of distinct ILFDs.

    Order matters operationally: the Prolog prototype commits to the first
    ILFD whose antecedent matches (the cut at the end of each rule), so the
    ``FIRST_MATCH`` derivation policy consults ILFDs in this order.
    Logically the set is unordered, and the closure/implication machinery
    ignores order.
    """

    __slots__ = ("_ilfds",)

    def __init__(self, ilfds: Iterable[ILFD] = ()) -> None:
        seen: List[ILFD] = []
        for ilfd in ilfds:
            if not isinstance(ilfd, ILFD):
                raise MalformedILFDError(f"expected ILFD, got {ilfd!r}")
            if ilfd not in seen:
                seen.append(ilfd)
        self._ilfds: Tuple[ILFD, ...] = tuple(seen)

    def __iter__(self) -> Iterator[ILFD]:
        return iter(self._ilfds)

    def __len__(self) -> int:
        return len(self._ilfds)

    def __contains__(self, ilfd: object) -> bool:
        return ilfd in self._ilfds

    def __getitem__(self, index: int) -> ILFD:
        return self._ilfds[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ILFDSet):
            return NotImplemented
        return frozenset(self._ilfds) == frozenset(other._ilfds)

    def __hash__(self) -> int:
        return hash(frozenset(self._ilfds))

    def __repr__(self) -> str:
        inner = "; ".join(repr(f) for f in self._ilfds)
        return f"ILFDSet[{inner}]"

    def add(self, ilfd: ILFD) -> "ILFDSet":
        """New set with *ilfd* appended (no-op if already present)."""
        if ilfd in self._ilfds:
            return self
        return ILFDSet(self._ilfds + (ilfd,))

    def extend(self, ilfds: Iterable[ILFD]) -> "ILFDSet":
        """New set with *ilfds* appended in order."""
        return ILFDSet(list(self._ilfds) + list(ilfds))

    def without(self, ilfd: ILFD) -> "ILFDSet":
        """New set with *ilfd* removed."""
        return ILFDSet(f for f in self._ilfds if f != ilfd)

    def split_all(self) -> "ILFDSet":
        """Set with every ILFD decomposed to single-condition consequents."""
        out: List[ILFD] = []
        for ilfd in self._ilfds:
            out.extend(ilfd.split())
        return ILFDSet(out)

    def combined(self) -> "ILFDSet":
        """Set with identical-antecedent ILFDs merged (Section 5 combination).

        ``(X→Q1) ∧ (X→Q2) ≡ X→(Q1∧Q2)``.  Order follows first occurrence
        of each antecedent.
        """
        grouped: Dict[FrozenSet[Condition], List[Condition]] = {}
        order: List[FrozenSet[Condition]] = []
        names: Dict[FrozenSet[Condition], List[str]] = {}
        for ilfd in self._ilfds:
            if ilfd.antecedent not in grouped:
                grouped[ilfd.antecedent] = []
                names[ilfd.antecedent] = []
                order.append(ilfd.antecedent)
            grouped[ilfd.antecedent].extend(ilfd.consequent)
            if ilfd.name:
                names[ilfd.antecedent].append(ilfd.name)
        return ILFDSet(
            ILFD(ante, grouped[ante], name="+".join(names[ante]))
            for ante in order
        )

    def mentioning(self, attribute: str) -> "ILFDSet":
        """ILFDs whose consequent can derive *attribute*."""
        return ILFDSet(
            f for f in self._ilfds if attribute in f.consequent_attributes
        )

    def attributes(self) -> FrozenSet[str]:
        """All attributes mentioned anywhere in the set."""
        out: set = set()
        for ilfd in self._ilfds:
            out |= ilfd.antecedent_attributes | ilfd.consequent_attributes
        return frozenset(out)

    def symbols(self) -> FrozenSet[Condition]:
        """All propositional symbols mentioned anywhere in the set."""
        out: set = set()
        for ilfd in self._ilfds:
            out |= ilfd.antecedent | ilfd.consequent
        return frozenset(out)

"""Classical functional dependencies and Proposition 2.

Section 5.1 relates ILFDs to textbook FDs:

    **Proposition 2.** If for each combination of values a1..am in the
    domains of A1..Am there is an ILFD ``(A1=a1) ∧ … ∧ (Am=am) →
    (B1=b1) ∧ … ∧ (Bn=bn)`` that holds in the relation R, then the FD
    ``{A1..Am} → {B1..Bn}`` also holds in R.  (The converse fails: FDs do
    not suggest particular values.)

This module provides a small classical-FD theory (enough to state and test
the proposition) and the bridge functions:

- :func:`ilfds_complete_for_fd` -- is there an implied ILFD for *every*
  value combination over given finite domains?
- :func:`ilfd_family_implies_fd` -- apply Proposition 2, returning the FD.
- :func:`fd_holds_in` -- instance-level FD check (the two-tuple test).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.ilfd.closure import closure
from repro.ilfd.conditions import Condition
from repro.ilfd.errors import MalformedILFDError
from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.relational.nulls import is_null
from repro.relational.relation import Relation


@dataclass(frozen=True)
class FD:
    """A classical functional dependency ``lhs → rhs`` over attribute sets."""

    lhs: FrozenSet[str]
    rhs: FrozenSet[str]

    def __post_init__(self) -> None:
        if not self.lhs or not self.rhs:
            raise MalformedILFDError("FD sides cannot be empty")
        object.__setattr__(self, "lhs", frozenset(self.lhs))
        object.__setattr__(self, "rhs", frozenset(self.rhs))

    def __repr__(self) -> str:
        return (
            "{" + ",".join(sorted(self.lhs)) + "} → {"
            + ",".join(sorted(self.rhs)) + "}"
        )

    def is_trivial(self) -> bool:
        """True iff rhs ⊆ lhs."""
        return self.rhs <= self.lhs


class FDSet:
    """An unordered set of FDs with closure-based implication."""

    def __init__(self, fds: Iterable[FD] = ()) -> None:
        self._fds: Tuple[FD, ...] = tuple(dict.fromkeys(fds))

    def __iter__(self) -> Iterator[FD]:
        return iter(self._fds)

    def __len__(self) -> int:
        return len(self._fds)

    def __contains__(self, fd: object) -> bool:
        return fd in self._fds

    def __repr__(self) -> str:
        return "FDSet[" + "; ".join(map(repr, self._fds)) + "]"

    def implies(self, fd: FD) -> bool:
        """True iff this set logically implies *fd*."""
        return fd.rhs <= attribute_closure(fd.lhs, self)


def attribute_closure(attributes: Iterable[str], fds: FDSet | Iterable[FD]) -> FrozenSet[str]:
    """The attribute-set closure X+ under classical FDs."""
    result = set(attributes)
    items = list(fds)
    changed = True
    while changed:
        changed = False
        for fd in items:
            if fd.lhs <= result and not fd.rhs <= result:
                result |= fd.rhs
                changed = True
    return frozenset(result)


def fd_holds_in(relation: Relation, fd: FD) -> bool:
    """Instance check: no two rows agree on lhs but differ on rhs.

    Rows with NULL in any lhs attribute are skipped (their grouping is
    undefined); NULL rhs values only violate when both rows are non-NULL
    and different.
    """
    groups: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    lhs = sorted(fd.lhs)
    rhs = sorted(fd.rhs)
    for row in relation:
        key = row.values_for(lhs)
        if any(is_null(v) for v in key):
            continue
        witness = groups.get(key)
        if witness is None:
            groups[key] = {attr: row[attr] for attr in rhs}
            continue
        for attr in rhs:
            seen, now = witness[attr], row[attr]
            if not is_null(seen) and not is_null(now) and seen != now:
                return False
            if is_null(seen) and not is_null(now):
                witness[attr] = now
    return True


def ilfds_complete_for_fd(
    ilfds: ILFDSet | Iterable[ILFD],
    lhs: Sequence[str],
    rhs: Sequence[str],
    domains: Mapping[str, Iterable[Any]],
) -> bool:
    """Check Proposition 2's hypothesis over finite domains.

    True iff for *every* combination of values of *lhs* drawn from
    *domains*, the ILFD set implies some value for each attribute of
    *rhs* (i.e. an ILFD of the required shape is in F+).
    """
    if not isinstance(ilfds, ILFDSet):
        ilfds = ILFDSet(ilfds)
    lhs = list(lhs)
    rhs = list(rhs)
    missing = [attr for attr in lhs if attr not in domains]
    if missing:
        raise MalformedILFDError(f"no domain given for lhs attributes {missing}")
    value_lists = [list(domains[attr]) for attr in lhs]
    for combo in iter_product(*value_lists):
        start = [Condition(attr, value) for attr, value in zip(lhs, combo)]
        implied = closure(start, ilfds).symbols
        implied_attrs = {cond.attribute for cond in implied}
        if not set(rhs) <= implied_attrs:
            return False
    return True


def ilfd_family_implies_fd(
    ilfds: ILFDSet | Iterable[ILFD],
    lhs: Sequence[str],
    rhs: Sequence[str],
    domains: Mapping[str, Iterable[Any]],
) -> Optional[FD]:
    """Proposition 2: return the implied FD, or None if the family is
    incomplete for some value combination."""
    if ilfds_complete_for_fd(ilfds, lhs, rhs, domains):
        return FD(frozenset(lhs), frozenset(rhs))
    return None


def fds_from_ilfd_tables(
    ilfds: ILFDSet | Iterable[ILFD],
    domains: Mapping[str, Iterable[Any]],
) -> List[FD]:
    """All FDs obtainable from uniform ILFD families via Proposition 2.

    Groups the (split) ILFDs by antecedent-attribute-set/consequent
    attribute and applies the completeness test to each group.
    """
    if not isinstance(ilfds, ILFDSet):
        ilfds = ILFDSet(ilfds)
    shapes: Dict[Tuple[Tuple[str, ...], str], None] = {}
    for ilfd in ilfds:
        for part in ilfd.split():
            ante = tuple(sorted(part.antecedent_attributes))
            cons = next(iter(part.consequent_attributes))
            shapes[(ante, cons)] = None
    found: List[FD] = []
    for ante, cons in shapes:
        if not all(attr in domains for attr in ante):
            continue
        fd = ilfd_family_implies_fd(ilfds, list(ante), [cons], domains)
        if fd is not None and fd not in found:
            found.append(fd)
    return found

"""Checking relations against ILFD sets.

"We say that a relation R satisfies ILFD X → Y if for every possible tuple
r ∈ R, such that X holds, it is also true that Y holds in r.  We say that
a relation R violates ILFD X → Y iff R does not satisfy the ILFD."
(Section 5.)  Unlike FD checking, "checking for violation of ILFDs
involves only one tuple".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.relational.relation import Relation
from repro.relational.row import Row


@dataclass(frozen=True)
class Violation:
    """One (row, ILFD) pair where the ILFD's consequent is contradicted."""

    row: Row
    ilfd: ILFD

    def __str__(self) -> str:
        return f"row {dict(self.row)!r} violates {self.ilfd!r}"


def satisfies(relation: Relation, ilfds: ILFDSet | Iterable[ILFD]) -> bool:
    """True iff every row satisfies every ILFD."""
    items = list(ilfds)
    return all(ilfd.satisfied_by(row) for row in relation for ilfd in items)


def check_relation(
    relation: Relation, ilfds: ILFDSet | Iterable[ILFD]
) -> List[Violation]:
    """All (row, ILFD) violations, in row order then ILFD order."""
    items = list(ilfds)
    return [
        Violation(row, ilfd)
        for row in relation
        for ilfd in items
        if ilfd.violated_by(row)
    ]


def consistent_subset(
    relation: Relation, ilfds: ILFDSet | Iterable[ILFD]
) -> Tuple[Relation, List[Violation]]:
    """Split a relation into (clean rows, violations).

    "Only the attribute values that are consistent with properties of the
    real-world entities can participate in the entity-identification
    process" (Section 3.1, footnote 3): callers can identify on the clean
    part and surface the rest to the DBA.
    """
    items = list(ilfds)
    violations = check_relation(relation, items)
    dirty = {violation.row for violation in violations}
    clean = relation.without(lambda row: row in dirty)
    return clean, violations

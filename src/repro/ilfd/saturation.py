"""Derived-ILFD saturation.

Example 3 lists I9 — ``(name=It'sGreek) ∧ (street=FrontAve.) →
(speciality=Gyros)`` — as "a derived ILFD": it is not asserted by the DBA
but follows from I7 and I8 by pseudo-transitivity, and the paper includes
it among "the available ILFDs" so that the *single-pass* relational
construction of Section 4.2 can complete the It'sGreek tuple.

:func:`saturate` materialises exactly such derivations: given an ILFD set
and a *base* attribute set (typically a source relation's schema), it
closes the set under pseudo-transitivity until every derivable consequent
is reachable from base-only antecedents.  With the saturated set, the
single-pass (``max_rounds=1``) algebraic construction produces the same
matching table as the multi-round fixpoint — verified by the test suite
and ablated in ``benchmarks/bench_ablations.py``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Set

from repro.ilfd.axioms import is_trivial, pseudo_transitivity
from repro.ilfd.errors import MalformedILFDError
from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.observability.tracer import NO_OP_TRACER, Tracer

__all__ = ["saturate", "derived_only"]


def saturate(
    ilfds: ILFDSet | Iterable[ILFD],
    base_attributes: Optional[Iterable[str]] = None,
    *,
    max_new: int = 10_000,
    tracer: Optional[Tracer] = None,
) -> ILFDSet:
    """Close *ilfds* under pseudo-transitivity toward *base_attributes*.

    Parameters
    ----------
    ilfds:
        The DBA-asserted ILFDs.
    base_attributes:
        Attributes a source relation actually stores.  When given, the
        saturation is goal-directed: a composition is only added when it
        *reduces* the number of non-base antecedent conditions, so the
        result stays finite and relevant.  When None, the full
        pseudo-transitive closure is computed (bounded by ``max_new``).
    max_new:
        Safety bound on the number of derived ILFDs.
    tracer:
        Optional :class:`~repro.observability.Tracer`; records
        saturation rounds and derived-ILFD counts when given.

    Returns the input ILFDs (split to single consequents) plus every
    derived ILFD, in derivation order.  Derived ILFDs get names like
    ``"I7*I8"`` recording their provenance.
    """
    if tracer is None:
        tracer = NO_OP_TRACER
    base: Optional[FrozenSet[str]] = (
        frozenset(base_attributes) if base_attributes is not None else None
    )
    split = (ilfds if isinstance(ilfds, ILFDSet) else ILFDSet(ilfds)).split_all()

    def non_base_count(ilfd: ILFD) -> int:
        if base is None:
            return 0
        return sum(1 for a in ilfd.antecedent_attributes if a not in base)

    known: List[ILFD] = list(split)
    seen: Set[ILFD] = set(known)
    added = 0
    rounds = 0
    changed = True
    while changed:
        rounds += 1
        changed = False
        for provider in list(known):
            for consumer in list(known):
                if provider is consumer:
                    continue
                if not provider.consequent <= consumer.antecedent:
                    continue
                try:
                    derived = pseudo_transitivity(provider, consumer)
                except MalformedILFDError:
                    continue  # contradictory composition: vacuous, skip
                if is_trivial(derived) or derived in seen:
                    continue
                if base is not None and non_base_count(derived) >= non_base_count(consumer):
                    continue  # not making progress toward the base
                name = "*".join(
                    part for part in (provider.name, consumer.name) if part
                )
                named = ILFD(derived.antecedent, derived.consequent, name=name)
                known.append(named)
                seen.add(named)
                added += 1
                changed = True
                if added >= max_new:
                    raise MalformedILFDError(
                        f"saturation exceeded {max_new} derived ILFDs; "
                        "the ILFD set composes explosively"
                    )
    if tracer.enabled:
        metrics = tracer.metrics
        metrics.inc("saturation.runs")
        metrics.inc("saturation.derived_ilfds", added)
        metrics.observe("saturation.rounds", rounds)
    return ILFDSet(known)


def derived_only(
    original: ILFDSet | Iterable[ILFD], saturated: ILFDSet
) -> ILFDSet:
    """The ILFDs saturation added (e.g. Example 3's I9)."""
    base = (
        original if isinstance(original, ILFDSet) else ILFDSet(original)
    ).split_all()
    return ILFDSet(f for f in saturated if f not in base)

"""Minimal covers of ILFD sets.

Section 5 notes the closure F+ of an ILFD set "is expensive to compute"
because it can be huge; the practical dual is to *shrink* F while keeping
F+ fixed, exactly as with FD minimal covers:

1. split consequents to single conditions (decomposition rule),
2. drop extraneous antecedent conditions (a condition is extraneous when
   the reduced ILFD is still implied by F),
3. drop redundant ILFDs (implied by the others).

The result is equivalent to the input (same closure) and minimal in the
sense that no further condition or ILFD can be removed.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.ilfd.axioms import implies, is_trivial
from repro.ilfd.ilfd import ILFD, ILFDSet


def reduce_antecedent(ilfd: ILFD, ilfds: ILFDSet | Iterable[ILFD]) -> ILFD:
    """Remove extraneous antecedent conditions of *ilfd* w.r.t. F.

    A condition is extraneous when F still implies the ILFD without it.
    Conditions are tried in sorted order so the result is deterministic.
    """
    if not isinstance(ilfds, ILFDSet):
        ilfds = ILFDSet(ilfds)
    current = ilfd
    for cond in sorted(ilfd.antecedent):
        remaining = current.antecedent - {cond}
        if not remaining:
            break
        candidate = ILFD(remaining, current.consequent, name=current.name)
        if implies(ilfds, candidate):
            current = candidate
    return current


def remove_redundant(ilfds: ILFDSet | Iterable[ILFD]) -> ILFDSet:
    """Drop ILFDs implied by the rest of the set (and trivial ones)."""
    working = list(ilfds if isinstance(ilfds, ILFDSet) else ILFDSet(ilfds))
    working = [f for f in working if not is_trivial(f)]
    changed = True
    while changed:
        changed = False
        for ilfd in list(working):
            rest = ILFDSet(f for f in working if f != ilfd)
            if implies(rest, ilfd):
                working.remove(ilfd)
                changed = True
                break
    return ILFDSet(working)


def minimal_cover(ilfds: ILFDSet | Iterable[ILFD]) -> ILFDSet:
    """A minimal cover: split, antecedent-reduced, non-redundant.

    The returned set has exactly the same closure as the input (checked by
    the property tests) and cannot lose any member or antecedent condition
    without changing it.
    """
    base = ilfds if isinstance(ilfds, ILFDSet) else ILFDSet(ilfds)
    split = base.split_all()
    reduced: List[ILFD] = []
    for ilfd in split:
        slim = reduce_antecedent(ilfd, split)
        if slim not in reduced:
            reduced.append(slim)
    return remove_redundant(ILFDSet(reduced))

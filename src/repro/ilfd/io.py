"""Reading and writing ILFD knowledge bases as text.

The DBA-facing surface: ILFDs live in plain text files, one rule per
line, in the same syntax the CLI accepts inline::

    # speciality determines cuisine
    speciality=Mughalai -> cuisine=Indian
    name=TwinCities & street=Co.B2 -> speciality=Hunan

``#``-comments and blank lines are ignored; conjunctions use ``&`` (or
``∧``); values are strings.  A named rule can be given as
``I4: speciality=Mughalai -> cuisine=Indian``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Union

from repro.ilfd.conditions import parse_condition
from repro.ilfd.errors import MalformedILFDError
from repro.ilfd.ilfd import ILFD, ILFDSet

PathLike = Union[str, Path]


def parse_ilfd_line(text: str) -> ILFD:
    """Parse one ``[name:] a=x & b=y -> c=z`` line."""
    body = text.strip()
    name = ""
    if ":" in body.split("->")[0] and "=" not in body.split(":", 1)[0]:
        name, _, body = body.partition(":")
        name = name.strip()
        body = body.strip()
    if "->" not in body:
        raise MalformedILFDError(f"ILFD line {text!r} must contain '->'")
    left, _, right = body.partition("->")
    antecedent = [
        parse_condition(part)
        for part in left.replace("∧", "&").split("&")
        if part.strip()
    ]
    consequent = [
        parse_condition(part)
        for part in right.replace("∧", "&").split("&")
        if part.strip()
    ]
    return ILFD(antecedent, consequent, name=name)


def loads_ilfds(text: str) -> ILFDSet:
    """Parse a knowledge-base document into an ILFDSet."""
    out: List[ILFD] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            out.append(parse_ilfd_line(line))
        except MalformedILFDError as exc:
            raise MalformedILFDError(f"line {lineno}: {exc}") from exc
    return ILFDSet(out)


def dumps_ilfds(ilfds: ILFDSet | Iterable[ILFD]) -> str:
    """Serialise an ILFD set to the knowledge-base text format."""
    lines: List[str] = []
    for ilfd in ilfds:
        antecedent = " & ".join(
            f"{c.attribute}={c.value}" for c in sorted(ilfd.antecedent)
        )
        consequent = " & ".join(
            f"{c.attribute}={c.value}" for c in sorted(ilfd.consequent)
        )
        prefix = f"{ilfd.name}: " if ilfd.name else ""
        lines.append(f"{prefix}{antecedent} -> {consequent}")
    return "\n".join(lines) + ("\n" if lines else "")


def read_ilfds(path: PathLike) -> ILFDSet:
    """Load a knowledge base from a file."""
    return loads_ilfds(Path(path).read_text())


def write_ilfds(ilfds: ILFDSet | Iterable[ILFD], path: PathLike) -> None:
    """Write a knowledge base to a file."""
    Path(path).write_text(dumps_ilfds(ilfds))

"""Instance-level functional dependencies (ILFDs).

ILFDs are the paper's central piece of semantic knowledge (Section 4.1):
constraints of the form ``(A1=a1) ∧ … ∧ (An=an) → (B=b)`` on the tuples of
a relation modelling a real-world entity set.  They are used to *derive*
missing extended-key attribute values so that extended-key equivalence can
match tuples from relations sharing no common candidate key.

This subpackage implements the full ILFD theory of Section 5:

- :mod:`repro.ilfd.conditions` -- the propositional symbols ``(A = a)``,
- :mod:`repro.ilfd.ilfd` -- ILFDs and ILFD sets, satisfaction / violation,
- :mod:`repro.ilfd.closure` -- the closure ``X+_F`` of a symbol set with
  provenance (the FD-style linear closure algorithm of Section 5.2),
- :mod:`repro.ilfd.axioms` -- Armstrong's axioms for ILFDs (reflexivity,
  augmentation, transitivity), the derived union / pseudo-transitivity /
  decomposition rules (Lemma 2), implication ``F ⊨ f`` and proof extraction
  (Theorem 1),
- :mod:`repro.ilfd.tables` -- ILFD tables ``IM(x̄, y)`` stored as relations
  (Table 8),
- :mod:`repro.ilfd.derivation` -- the derivation engine applying ILFDs to
  tuples, with the prototype's first-match-wins ("cut") policy and an
  exhaustive fixpoint-chase policy,
- :mod:`repro.ilfd.violations` -- checking relations against ILFD sets,
- :mod:`repro.ilfd.fd_bridge` -- classical FDs and Proposition 2
  (a complete ILFD family implies an FD),
- :mod:`repro.ilfd.mincover` -- minimal covers of ILFD sets.
"""

from repro.ilfd.conditions import Condition, conjunction, parse_condition
from repro.ilfd.errors import (
    DerivationConflictError,
    ILFDError,
    MalformedILFDError,
)
from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.ilfd.closure import ClosureResult, closure, is_attribute_consistent
from repro.ilfd.axioms import (
    ProofStep,
    Sequent,
    augmentation,
    decompose,
    equivalent,
    implies,
    is_trivial,
    prove,
    pseudo_transitivity,
    reflexivity,
    transitivity,
    union_rule,
)
from repro.ilfd.tables import ILFDTable
from repro.ilfd.derivation import (
    DerivationPolicy,
    DerivationResult,
    DerivationEngine,
)
from repro.ilfd.violations import Violation, check_relation, satisfies
from repro.ilfd.fd_bridge import (
    FD,
    FDSet,
    attribute_closure,
    fd_holds_in,
    ilfd_family_implies_fd,
    ilfds_complete_for_fd,
)
from repro.ilfd.mincover import minimal_cover, reduce_antecedent, remove_redundant
from repro.ilfd.saturation import derived_only, saturate
from repro.ilfd.io import (
    dumps_ilfds,
    loads_ilfds,
    parse_ilfd_line,
    read_ilfds,
    write_ilfds,
)

__all__ = [
    "Condition",
    "ClosureResult",
    "DerivationConflictError",
    "DerivationEngine",
    "DerivationPolicy",
    "DerivationResult",
    "FD",
    "FDSet",
    "ILFD",
    "ILFDError",
    "ILFDSet",
    "ILFDTable",
    "MalformedILFDError",
    "ProofStep",
    "Sequent",
    "Violation",
    "attribute_closure",
    "augmentation",
    "check_relation",
    "closure",
    "conjunction",
    "decompose",
    "derived_only",
    "dumps_ilfds",
    "equivalent",
    "fd_holds_in",
    "ilfd_family_implies_fd",
    "ilfds_complete_for_fd",
    "implies",
    "is_attribute_consistent",
    "is_trivial",
    "loads_ilfds",
    "minimal_cover",
    "parse_condition",
    "parse_ilfd_line",
    "prove",
    "pseudo_transitivity",
    "read_ilfds",
    "reduce_antecedent",
    "reflexivity",
    "saturate",
    "remove_redundant",
    "satisfies",
    "transitivity",
    "union_rule",
    "write_ilfds",
]

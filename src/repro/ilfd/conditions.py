"""Propositional symbols ``(A = a)``.

Section 5 reduces ILFD reasoning to propositional logic: "Each ``(Ai=ai)``
or ``(B=b)`` can be treated as a propositional symbol."  A
:class:`Condition` is such a symbol — an attribute/value equality — and a
*conjunction* is a frozenset of conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Mapping

from repro.ilfd.errors import MalformedILFDError
from repro.relational.nulls import is_null


@dataclass(frozen=True, order=True)
class Condition:
    """The propositional symbol ``attribute = value``.

    Conditions are totally ordered (by attribute then rendered value) so
    rule output is deterministic.
    """

    attribute: str
    value: Any

    def __post_init__(self) -> None:
        if not self.attribute or not isinstance(self.attribute, str):
            raise MalformedILFDError(
                f"condition attribute must be a non-empty string, got {self.attribute!r}"
            )
        if is_null(self.value):
            raise MalformedILFDError(
                f"condition on {self.attribute!r} cannot assert NULL; "
                "ILFDs range over real-world attribute values"
            )

    def holds_in(self, row: Mapping[str, Any]) -> bool:
        """True iff *row* binds this attribute to exactly this value.

        A NULL (or absent) attribute does not satisfy any condition.
        """
        try:
            actual = row[self.attribute]
        except Exception:
            return False
        return not is_null(actual) and actual == self.value

    def contradicts(self, row: Mapping[str, Any]) -> bool:
        """True iff *row* binds this attribute to a different non-NULL value."""
        try:
            actual = row[self.attribute]
        except Exception:
            return False
        return not is_null(actual) and actual != self.value

    def __str__(self) -> str:
        return f"({self.attribute}={self.value!r})"


def conjunction(conditions: Iterable[Condition] | Mapping[str, Any]) -> FrozenSet[Condition]:
    """Normalise *conditions* into a frozenset, rejecting contradictions.

    Accepts either an iterable of :class:`Condition` or a mapping
    ``{attribute: value}``.  Two different values for the same attribute in
    one conjunction make it unsatisfiable, which is always a specification
    mistake — we reject it.
    """
    if isinstance(conditions, Mapping):
        conditions = [Condition(attr, value) for attr, value in conditions.items()]
    result = frozenset(conditions)
    by_attr: Dict[str, Any] = {}
    for cond in sorted(result):
        if cond.attribute in by_attr and by_attr[cond.attribute] != cond.value:
            raise MalformedILFDError(
                f"contradictory conjunction: {cond.attribute} = "
                f"{by_attr[cond.attribute]!r} and {cond.value!r}"
            )
        by_attr[cond.attribute] = cond.value
    return result


def conditions_hold_in(conditions: FrozenSet[Condition], row: Mapping[str, Any]) -> bool:
    """True iff every condition in the conjunction holds in *row*."""
    return all(cond.holds_in(row) for cond in conditions)


def attributes_of(conditions: Iterable[Condition]) -> FrozenSet[str]:
    """The set of attributes a conjunction mentions."""
    return frozenset(cond.attribute for cond in conditions)


def as_assignment(conditions: Iterable[Condition]) -> Dict[str, Any]:
    """Render a (consistent) conjunction as an {attribute: value} dict."""
    out: Dict[str, Any] = {}
    for cond in conditions:
        if cond.attribute in out and out[cond.attribute] != cond.value:
            raise MalformedILFDError(
                f"conjunction is contradictory on {cond.attribute!r}"
            )
        out[cond.attribute] = cond.value
    return out


def parse_condition(text: str) -> Condition:
    """Parse ``"attribute=value"`` into a string-valued Condition.

    A convenience for tests, examples, and the CLI; values stay strings.
    """
    if "=" not in text:
        raise MalformedILFDError(f"cannot parse condition {text!r}; expected 'attr=value'")
    attribute, _, value = text.partition("=")
    attribute = attribute.strip()
    value = value.strip()
    if not attribute or not value:
        raise MalformedILFDError(f"cannot parse condition {text!r}; empty side")
    return Condition(attribute, value)

"""Federated operation: incremental identification and virtual views.

The paper's conclusion: "In processing a federated database query, entity
identification has to be performed whenever the information about
real-world entities exists in different databases.  Our ongoing research
is developing mechanisms to do so."  And earlier (Section 2): "Instance
integration may have to be performed whenever updating is done on the
participating databases."

This subpackage builds those mechanisms:

- :mod:`repro.federation.incremental` -- :class:`IncrementalIdentifier`
  maintains the matching table under tuple insertions/deletions on either
  source and under newly supplied ILFDs, touching only the affected
  tuples; its state is always equal to a from-scratch batch run (a
  property the test suite enforces), and knowledge additions are
  monotone per Section 3.3.
- :mod:`repro.federation.view` -- :class:`VirtualIntegratedView`, the
  virtual-integration surface: a lazily materialised, cache-invalidated
  T_RS supporting select/project without the sources being discarded
  (the paper's "virtual integration" mode).  Attached source loaders
  are refreshed through the identifier's retry policy; a source that
  keeps failing degrades to last-known-good serving
  (:class:`SourceHealth`) instead of taking the view down.
"""

from repro.federation.incremental import Delta, IncrementalIdentifier
from repro.federation.view import SourceHealth, VirtualIntegratedView

__all__ = [
    "Delta",
    "IncrementalIdentifier",
    "SourceHealth",
    "VirtualIntegratedView",
]

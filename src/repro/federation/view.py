"""The virtual integration surface.

"A virtually integrated database is created on top of the component
databases … while the components retain their identities and usage"
(Section 1), and "the actual processing only takes place during the query
time" (Section 2).  :class:`VirtualIntegratedView` is that surface: it
holds an :class:`~repro.federation.incremental.IncrementalIdentifier`,
materialises T_RS lazily, invalidates the materialisation whenever the
underlying sources or knowledge change, and answers select/project
queries against the (merged or prefixed) integrated table.

Because the components "retain their identities and usage", they can
also fail independently — a federated source may be unreachable exactly
when a query arrives.  The view therefore degrades rather than crashes:
:meth:`attach_sources` registers per-side loaders, :meth:`refresh`
pulls each side through the identifier's retry policy, and a side whose
loader keeps failing is simply left at its last-known-good rows, marked
``stale`` in :class:`SourceHealth`.  Queries keep being answered from
the surviving state (the uniqueness/consistency constraints still hold
— the failed refresh mutated nothing), with ``resilience.stale_served``
counting every answer given while degraded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence

from repro.core.integration import IntegratedTable, integrate
from repro.federation.incremental import Delta, IncrementalIdentifier
from repro.relational.algebra import project as project_op
from repro.relational.algebra import select as select_op
from repro.relational.relation import Relation
from repro.relational.row import Row
from repro.resilience.errors import SourceLoadError

SourceLoader = Callable[[], Relation]


@dataclass
class SourceHealth:
    """Liveness record for one federated source.

    ``stale`` means the side is being served from last-known-good rows:
    its loader has failed at least once since the rows were captured.
    ``failures`` counts consecutive failed refreshes; any success resets
    the record to healthy.
    """

    side: str
    attached: bool = False
    healthy: bool = True
    stale: bool = False
    failures: int = 0
    last_error: str = ""

    def summary(self) -> str:
        """One line for status output."""
        if not self.attached:
            return f"{self.side.upper()}: no loader attached"
        if self.healthy and not self.stale:
            return f"{self.side.upper()}: healthy"
        return (
            f"{self.side.upper()}: STALE after {self.failures} failed "
            f"refresh(es) — {self.last_error or 'unknown error'}"
        )


class VirtualIntegratedView:
    """Query-time integration over live sources.

    Parameters
    ----------
    identifier:
        The incremental identifier owning the sources and the knowledge.
    """

    def __init__(self, identifier: IncrementalIdentifier) -> None:
        self._identifier = identifier
        self._cached: Optional[IntegratedTable] = None
        self._cached_version = -1
        self._loaders: Dict[str, Optional[SourceLoader]] = {"r": None, "s": None}
        self._health: Dict[str, SourceHealth] = {
            "r": SourceHealth("r"),
            "s": SourceHealth("s"),
        }

    @property
    def identifier(self) -> IncrementalIdentifier:
        """The underlying incremental identifier."""
        return self._identifier

    # ------------------------------------------------------------------
    # Degradation-aware source management
    # ------------------------------------------------------------------
    def attach_sources(
        self,
        r_loader: Optional[SourceLoader] = None,
        s_loader: Optional[SourceLoader] = None,
    ) -> None:
        """Register per-side loaders for :meth:`refresh` to pull from.

        A loader is any zero-argument callable returning the side's
        current relation.  Either side may be omitted (that side is then
        only updated through the identifier directly).
        """
        if r_loader is not None:
            self._loaders["r"] = r_loader
            self._health["r"].attached = True
        if s_loader is not None:
            self._loaders["s"] = s_loader
            self._health["s"].attached = True

    def refresh(self) -> Delta:
        """Pull every attached source, degrading on failure.

        Each side is fetched through the identifier's retry policy and,
        on success, applied with
        :meth:`~repro.federation.incremental.IncrementalIdentifier.replace_source`
        (key-level diff: unchanged rows keep their settled matches).  A
        side whose loader still fails after retries is **skipped**: its
        last-known-good rows — and the matches derived from them — keep
        being served, its :class:`SourceHealth` turns stale, and the
        refresh carries on with the other side.  Returns the combined
        match delta of the sides that did refresh.
        """
        added = []
        removed = []
        degraded = False
        tracer = self._identifier.tracer
        for side in ("r", "s"):
            loader = self._loaders[side]
            if loader is None:
                continue
            health = self._health[side]
            try:
                relation = self._identifier.fetch_source(side, loader)
            except SourceLoadError as exc:
                health.healthy = False
                health.stale = True
                health.failures += 1
                health.last_error = str(exc.__cause__ or exc)
                degraded = True
                continue
            delta = self._identifier.replace_source(side, relation)
            added.extend(delta.added)
            removed.extend(delta.removed)
            health.healthy = True
            health.stale = False
            health.failures = 0
            health.last_error = ""
        if degraded and tracer.enabled:
            tracer.metrics.inc("resilience.degraded_refreshes")
        return Delta(added=tuple(sorted(added)), removed=tuple(sorted(removed)))

    @property
    def degraded(self) -> bool:
        """True iff any attached source is being served stale."""
        return any(h.stale for h in self._health.values())

    def source_health(self) -> Dict[str, SourceHealth]:
        """A copy of both sides' health records."""
        return {
            side: SourceHealth(**vars(health))
            for side, health in self._health.items()
        }

    def is_fresh(self) -> bool:
        """True iff the cached T_RS reflects the current source state."""
        return (
            self._cached is not None
            and self._cached_version == self._identifier.version
        )

    def table(self) -> IntegratedTable:
        """T_RS, materialised on demand and cached until the next update.

        The matching table is read back from the identifier's store —
        the durably persisted MT_RS, which write-through keeps identical
        to the live in-memory state — so the view exercises exactly what
        a checkpoint would save and a resume would reload.

        When a source is degraded this serves the last-known-good state
        for that side (the failed refresh mutated nothing, so the
        uniqueness/consistency guarantees of the served table are the
        ones that held at capture time), counting the answer under
        ``resilience.stale_served``.
        """
        tracer = self._identifier.tracer
        if self.degraded and tracer.enabled:
            tracer.metrics.inc("resilience.stale_served")
        if not self.is_fresh():
            matching = self._identifier.store_matching_table()
            r, s = self._extended_relations()
            self._cached = integrate(r, s, matching)
            self._cached_version = self._identifier.version
        assert self._cached is not None
        return self._cached

    def _extended_relations(self):
        from repro.ilfd.derivation import DerivationEngine

        r, s = self._identifier.relations()
        engine = DerivationEngine(self._identifier.ilfds)
        targets = list(self._identifier.extended_key.attributes)
        return (
            engine.extend_relation(r, targets),
            engine.extend_relation(s, targets),
        )

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def select(self, predicate: Callable[[Row], bool], *, merged: bool = True) -> Relation:
        """Rows of T_RS satisfying *predicate*.

        With ``merged=True`` (default) the predicate sees the coalesced
        single-column-per-attribute view; otherwise the prefixed
        ``r_…``/``s_…`` layout.
        """
        base = self.table().merged_view() if merged else self.table().relation
        return select_op(base, predicate, name="σ(T_RS)")

    def project(self, attributes: Sequence[str], *, merged: bool = True) -> Relation:
        """Projection of T_RS onto *attributes*."""
        base = self.table().merged_view() if merged else self.table().relation
        return project_op(base, list(attributes), name="Π(T_RS)")

    def where(self, *, merged: bool = True, **equalities: Any) -> Relation:
        """Convenience equality filter: ``view.where(cuisine="Indian")``."""

        def predicate(row: Row) -> bool:
            return all(row[attr] == value for attr, value in equalities.items())

        return self.select(predicate, merged=merged)

    def __len__(self) -> int:
        return len(self.table())

"""The virtual integration surface.

"A virtually integrated database is created on top of the component
databases … while the components retain their identities and usage"
(Section 1), and "the actual processing only takes place during the query
time" (Section 2).  :class:`VirtualIntegratedView` is that surface: it
holds an :class:`~repro.federation.incremental.IncrementalIdentifier`,
materialises T_RS lazily, invalidates the materialisation whenever the
underlying sources or knowledge change, and answers select/project
queries against the (merged or prefixed) integrated table.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.core.integration import IntegratedTable, integrate
from repro.federation.incremental import IncrementalIdentifier
from repro.relational.algebra import project as project_op
from repro.relational.algebra import select as select_op
from repro.relational.relation import Relation
from repro.relational.row import Row


class VirtualIntegratedView:
    """Query-time integration over live sources.

    Parameters
    ----------
    identifier:
        The incremental identifier owning the sources and the knowledge.
    """

    def __init__(self, identifier: IncrementalIdentifier) -> None:
        self._identifier = identifier
        self._cached: Optional[IntegratedTable] = None
        self._cached_version = -1

    @property
    def identifier(self) -> IncrementalIdentifier:
        """The underlying incremental identifier."""
        return self._identifier

    def is_fresh(self) -> bool:
        """True iff the cached T_RS reflects the current source state."""
        return (
            self._cached is not None
            and self._cached_version == self._identifier.version
        )

    def table(self) -> IntegratedTable:
        """T_RS, materialised on demand and cached until the next update.

        The matching table is read back from the identifier's store —
        the durably persisted MT_RS, which write-through keeps identical
        to the live in-memory state — so the view exercises exactly what
        a checkpoint would save and a resume would reload.
        """
        if not self.is_fresh():
            matching = self._identifier.store_matching_table()
            r, s = self._extended_relations()
            self._cached = integrate(r, s, matching)
            self._cached_version = self._identifier.version
        assert self._cached is not None
        return self._cached

    def _extended_relations(self):
        from repro.ilfd.derivation import DerivationEngine

        r, s = self._identifier.relations()
        engine = DerivationEngine(self._identifier.ilfds)
        targets = list(self._identifier.extended_key.attributes)
        return (
            engine.extend_relation(r, targets),
            engine.extend_relation(s, targets),
        )

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def select(self, predicate: Callable[[Row], bool], *, merged: bool = True) -> Relation:
        """Rows of T_RS satisfying *predicate*.

        With ``merged=True`` (default) the predicate sees the coalesced
        single-column-per-attribute view; otherwise the prefixed
        ``r_…``/``s_…`` layout.
        """
        base = self.table().merged_view() if merged else self.table().relation
        return select_op(base, predicate, name="σ(T_RS)")

    def project(self, attributes: Sequence[str], *, merged: bool = True) -> Relation:
        """Projection of T_RS onto *attributes*."""
        base = self.table().merged_view() if merged else self.table().relation
        return project_op(base, list(attributes), name="Π(T_RS)")

    def where(self, *, merged: bool = True, **equalities: Any) -> Relation:
        """Convenience equality filter: ``view.where(cuisine="Indian")``."""

        def predicate(row: Row) -> bool:
            return all(row[attr] == value for attr, value in equalities.items())

        return self.select(predicate, merged=merged)

    def __len__(self) -> int:
        return len(self.table())

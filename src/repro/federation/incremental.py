"""Incremental entity identification under source updates.

Because ILFD derivation is *row-local* (an ILFD fires on one tuple's
values; checking violations "involves only one tuple"), inserting or
deleting a tuple can only add or remove matches involving that tuple, and
supplying new ILFDs can only fill attribute values that were NULL.  The
:class:`IncrementalIdentifier` exploits exactly this:

- it keeps each source tuple's *extended* row plus a hash index from
  complete (fully non-NULL) extended-key values to tuple keys,
- an insert derives one row and probes the opposite index,
- a delete removes the row's index entries and its matches,
- `add_ilfds` re-derives only the rows that still have NULL extended-key
  attributes (appending to the ILFD order, so FIRST_MATCH commitments
  already made are never revised — which is what makes knowledge addition
  monotone, Section 3.3).

The state after any operation sequence equals a from-scratch batch run
over the current sources — enforced by property-based tests.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.blocking.base import Blocker, BlockingContext, CandidatePairs
from repro.blocking.executor import ParallelPairExecutor
from repro.blocking.strategies import ExtendedKeyHashBlocker
from repro.core.errors import CoreError
from repro.core.extended_key import ExtendedKey
from repro.core.matching_table import (
    KeyValues,
    MatchEntry,
    MatchingTable,
    key_values,
)
from repro.core.soundness import SoundnessReport, verify_soundness
from repro.ilfd.derivation import DerivationEngine, DerivationPolicy
from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.observability.tracer import NO_OP_TRACER, Tracer
from repro.resilience.errors import InjectedFault, SourceLoadError
from repro.resilience.faults import (
    NO_OP_INJECTOR,
    SITE_SOURCE_LOAD_R,
    SITE_SOURCE_LOAD_S,
    FaultInjector,
)
from repro.resilience.retry import RetryPolicy
from repro.relational.nulls import NULL, is_null
from repro.relational.relation import Relation
from repro.relational.row import Row
from repro.relational.schema import Schema
from repro.store.base import MatchStore
from repro.store.memory import MemoryStore

__all__ = ["Pair", "Delta", "IncrementalIdentifier"]

Pair = Tuple[KeyValues, KeyValues]


@dataclass(frozen=True)
class Delta:
    """The matching-table change produced by one update."""

    added: Tuple[Pair, ...] = ()
    removed: Tuple[Pair, ...] = ()

    def is_empty(self) -> bool:
        """True iff the update changed no matches."""
        return not self.added and not self.removed


class _Side:
    """Per-relation incremental state."""

    __slots__ = ("name", "schema", "key_attrs", "raw", "extended", "index")

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema
        key = schema.primary_key
        self.key_attrs: Tuple[str, ...] = tuple(
            n for n in schema.names if n in key
        )
        self.raw: Dict[KeyValues, Row] = {}
        self.extended: Dict[KeyValues, Row] = {}
        self.index: Dict[Tuple[Any, ...], Set[KeyValues]] = defaultdict(set)


class IncrementalIdentifier:
    """Maintains MT_RS under inserts, deletes, and new ILFDs.

    Parameters mirror :class:`~repro.core.identifier.EntityIdentifier`,
    except the sources start out empty (seed them with
    :meth:`insert_r` / :meth:`insert_s` or :meth:`load`).

    *store* is the persistence backend every mutation writes through to
    (rows, matches, journal).  It defaults to a fresh
    :class:`~repro.store.MemoryStore`, so the journal is always
    available; pass a :class:`~repro.store.SqliteStore` for durability,
    or use :meth:`checkpoint` / :meth:`resume` to snapshot and reload
    whole sessions.
    """

    def __init__(
        self,
        r_schema: Schema,
        s_schema: Schema,
        extended_key: ExtendedKey | Sequence[str],
        *,
        ilfds: ILFDSet | Iterable[ILFD] = (),
        policy: DerivationPolicy = DerivationPolicy.FIRST_MATCH,
        tracer: Optional[Tracer] = None,
        store: Optional[MatchStore] = None,
        retry_policy: Optional[RetryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        if not isinstance(extended_key, ExtendedKey):
            extended_key = ExtendedKey(list(extended_key))
        self._tracer = tracer if tracer is not None else NO_OP_TRACER
        self._key = extended_key
        self._policy = policy
        self._ilfds = ilfds if isinstance(ilfds, ILFDSet) else ILFDSet(ilfds)
        self._engine = DerivationEngine(
            self._ilfds, policy=policy, tracer=self._tracer
        )
        self._r = _Side("r", r_schema)
        self._s = _Side("s", s_schema)
        self._matches: Set[Pair] = set()
        self.version = 0
        self._identity_rule_name = extended_key.identity_rule().name
        self._retry = retry_policy
        self._injector = (
            fault_injector if fault_injector is not None else NO_OP_INJECTOR
        )
        self._store = store if store is not None else MemoryStore(tracer=tracer)
        self._store.set_key_attributes(self._r.key_attrs, self._s.key_attrs)
        self._store.set_extended_key_attributes(extended_key.attributes)

    def _bump_version(self) -> None:
        """Advance the delta cursor, keeping the store's copy current.

        Persisting the cursor on every bump is what lets a resumed
        checkpoint be updated and resumed *again* from the same file
        without an explicit re-checkpoint.
        """
        self.version += 1
        self._store.set_meta("version", str(self.version))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def extended_key(self) -> ExtendedKey:
        """The extended key in use."""
        return self._key

    @property
    def ilfds(self) -> ILFDSet:
        """The current (growing) ILFD set."""
        return self._ilfds

    @property
    def policy(self) -> DerivationPolicy:
        """The ILFD derivation policy in use."""
        return self._policy

    @property
    def store(self) -> MatchStore:
        """The persistence backend all mutations write through to."""
        return self._store

    @property
    def tracer(self) -> Tracer:
        """The tracer all spans and metrics flow through."""
        return self._tracer

    def match_pairs(self) -> Set[Pair]:
        """A copy of the current matched-pair set."""
        return set(self._matches)

    def matching_table(self) -> MatchingTable:
        """The current MT_RS (rows carry the extended values)."""
        table = MatchingTable(
            r_key_attributes=self._r.key_attrs,
            s_key_attributes=self._s.key_attrs,
        )
        for r_key, s_key in sorted(self._matches):
            table.add(
                MatchEntry(
                    self._r.extended[r_key],
                    self._s.extended[s_key],
                    r_key,
                    s_key,
                )
            )
        return table

    def store_matching_table(self) -> MatchingTable:
        """MT_RS materialised from the store (must mirror the live state)."""
        return self._store.matching_table()

    def verify(self) -> SoundnessReport:
        """Soundness (uniqueness-constraint) check on the current state."""
        return verify_soundness(self.matching_table())

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def checkpoint(self, path: str) -> None:
        """Snapshot the whole session into a SQLite checkpoint at *path*.

        The checkpoint carries both sources (raw and extended), the
        matched-pair set, the derivation journal, the knowledge (extended
        key, ILFDs, policy), and the delta cursor (``version``) — enough
        for :meth:`resume` to continue applying deltas in a new process
        without re-evaluating settled pairs.
        """
        from repro.store.checkpoint import checkpoint_incremental

        checkpoint_incremental(
            self, path, tracer=self._tracer, fault_injector=self._injector
        ).close()

    @classmethod
    def resume(
        cls,
        path: str,
        *,
        tracer: Optional[Tracer] = None,
        verify: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> "IncrementalIdentifier":
        """Reload a :meth:`checkpoint` and continue the session.

        The resumed identifier writes through to the opened checkpoint
        store (further updates persist into the same file).  With
        ``verify=True`` the journal is replayed against the stored tables
        and the uniqueness/consistency constraints audited before the
        state is trusted.
        """
        from repro.store.checkpoint import resume_incremental

        return resume_incremental(
            path,
            tracer=tracer,
            verify=verify,
            retry_policy=retry_policy,
            fault_injector=fault_injector,
        )

    def relations(self) -> Tuple[Relation, Relation]:
        """The current raw sources, as relations (for batch cross-checks)."""
        r = Relation(
            self._r.schema,
            [dict(row) for row in self._r.raw.values()],
            name="R",
            enforce_keys=False,
        )
        s = Relation(
            self._s.schema,
            [dict(row) for row in self._s.raw.values()],
            name="S",
            enforce_keys=False,
        )
        return r, s

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def load(
        self,
        r: Relation,
        s: Relation,
        *,
        blocker: Optional[Blocker] = None,
        executor: Optional[ParallelPairExecutor] = None,
    ) -> Delta:
        """Bulk-insert both sources; returns the combined delta.

        Without a blocker, rows are inserted one at a time, each probing
        the opposite index (the exact incremental path).  With a blocker,
        all rows are admitted first and the new matches are computed in
        one blocked batch (:meth:`rescan`) — same resulting state and
        delta, one candidate-generation pass instead of 2·n probes, and
        parallel rule evaluation when an executor with workers is given.
        """
        added: List[Pair] = []
        with self._tracer.span(
            "federation.load", r_rows=len(r), s_rows=len(s)
        ) as span:
            if blocker is None and executor is None:
                for row in r:
                    added.extend(self.insert_r(row).added)
                for row in s:
                    added.extend(self.insert_s(row).added)
            else:
                for row in r:
                    self._admit(self._r, row)
                for row in s:
                    self._admit(self._s, row)
                current = self.rescan(blocker, executor=executor)
                new_pairs = sorted(current - self._matches)
                added.extend(new_pairs)
                self._matches |= current
                if new_pairs:
                    with self._store.transaction():
                        for r_key, s_key in new_pairs:
                            self._store.record_match(
                                r_key,
                                s_key,
                                self._r.extended[r_key],
                                self._s.extended[s_key],
                                rule=self._identity_rule_name,
                            )
                if self._tracer.enabled:
                    self._tracer.metrics.inc("federation.bulk_loads")
            span.set("matches_added", len(added))
        return Delta(added=tuple(added))

    # ------------------------------------------------------------------
    # Fault-tolerant source access
    # ------------------------------------------------------------------
    def fetch_source(self, side: str, loader: Callable[[], Relation]) -> Relation:
        """Fetch one source relation through the retry policy.

        *loader* is any zero-argument callable producing the side's
        current :class:`~repro.relational.relation.Relation` — a file
        read, a remote query, a generator.  Each attempt first consults
        the fault injector at the side's ``federation.load_source.*``
        site, so chaos tests can make loads fail deterministically.
        Transient failures (:class:`OSError`, :class:`ConnectionError`,
        injected faults) are retried per the policy; a final failure is
        wrapped in :class:`~repro.resilience.errors.SourceLoadError`
        carrying the ``side``, which
        :class:`~repro.federation.view.VirtualIntegratedView` catches to
        degrade instead of crash.
        """
        if side not in ("r", "s"):
            raise CoreError(f"side must be 'r' or 's', got {side!r}")
        site = SITE_SOURCE_LOAD_R if side == "r" else SITE_SOURCE_LOAD_S

        def attempt() -> Relation:
            self._injector.fire(site)
            return loader()

        try:
            if self._retry is not None and self._retry.max_attempts > 1:
                return self._retry.call(
                    attempt,
                    operation=site,
                    retry_on=(InjectedFault, OSError, ConnectionError),
                    tracer=self._tracer,
                )
            return attempt()
        except Exception as exc:
            if self._tracer.enabled:
                self._tracer.metrics.inc("resilience.source_failures")
            raise SourceLoadError(
                f"source {side.upper()} failed to load: {exc}", side=side
            ) from exc

    def load_sources(
        self,
        r_loader: Callable[[], Relation],
        s_loader: Callable[[], Relation],
        *,
        blocker: Optional[Blocker] = None,
        executor: Optional[ParallelPairExecutor] = None,
    ) -> Delta:
        """Fetch both sources (retried) and bulk-load them.

        Both fetches happen before any mutation, so a load that fails
        even after retries leaves the identifier untouched — the caller
        sees a :class:`~repro.resilience.errors.SourceLoadError` and the
        previous state survives intact.
        """
        r = self.fetch_source("r", r_loader)
        s = self.fetch_source("s", s_loader)
        return self.load(r, s, blocker=blocker, executor=executor)

    def replace_source(self, side: str, relation: Relation) -> Delta:
        """Swap one side's rows for *relation*'s, by key diff.

        Rows whose keys vanished are deleted, new keys inserted, and
        changed rows (same key, different content) replaced — so match
        deltas are exactly those the individual updates would produce,
        and unchanged rows keep their settled matches untouched.  This
        is the refresh primitive the virtual view uses per source.
        """
        state = self._r if side == "r" else self._s if side == "s" else None
        if state is None:
            raise CoreError(f"side must be 'r' or 's', got {side!r}")
        added: List[Pair] = []
        removed: List[Pair] = []
        incoming: Dict[KeyValues, Dict[str, Any]] = {}
        for row in relation:
            values = {
                name: NULL if row.get(name, NULL) is None else row.get(name, NULL)
                for name in state.schema.names
            }
            incoming[key_values(Row(values), state.key_attrs)] = values
        delete = self.delete_r if side == "r" else self.delete_s
        insert = self.insert_r if side == "r" else self.insert_s
        with self._tracer.span(
            "federation.replace_source", side=side, rows=len(incoming)
        ) as span:
            for key in sorted(set(state.raw) - set(incoming)):
                removed.extend(delete(key).removed)
            changed = {
                key
                for key in set(state.raw) & set(incoming)
                if dict(state.raw[key]) != incoming[key]
            }
            for key in sorted(changed):
                removed.extend(delete(key).removed)
            for key in sorted((set(incoming) - set(state.raw)) | changed):
                added.extend(insert(incoming[key]).added)
            span.set("matches_added", len(added))
            span.set("matches_removed", len(removed))
        return Delta(added=tuple(sorted(added)), removed=tuple(sorted(removed)))

    # ------------------------------------------------------------------
    # Blocked batch views
    # ------------------------------------------------------------------
    def candidate_pairs(self, blocker: Optional[Blocker] = None) -> CandidatePairs:
        """Candidate pairs over the *current* extended rows.

        The incremental index is itself extended-key blocking one row at
        a time; this exposes the same state to any batch
        :class:`~repro.blocking.Blocker` (defaults to the hash blocker)
        for sweeps, audits, and cross-checks.
        """
        if blocker is None:
            blocker = ExtendedKeyHashBlocker()
        context = BlockingContext.of(self._key.attributes, self._ilfds)
        return blocker.block(
            list(self._r.extended.values()),
            list(self._s.extended.values()),
            context,
            tracer=self._tracer,
        )

    def rescan(
        self,
        blocker: Optional[Blocker] = None,
        *,
        executor: Optional[ParallelPairExecutor] = None,
    ) -> Set[Pair]:
        """Recompute the match-pair set from scratch via blocking.

        Classifies the blocker's candidates with the extended-key
        identity rule; every supplied blocker's candidate set contains
        all exact-equality pairs, so the result equals the incrementally
        maintained :meth:`match_pairs` — the batch cross-check the
        equivalence property tests exercise, without the cross product.
        """
        r_keys = list(self._r.extended.keys())
        s_keys = list(self._s.extended.keys())
        candidates = self.candidate_pairs(blocker)
        if executor is None:
            executor = ParallelPairExecutor(1, tracer=self._tracer)
        evaluation = executor.evaluate(
            candidates,
            list(self._r.extended.values()),
            list(self._s.extended.values()),
            (self._key.identity_rule(),),
            (),
        )
        return {(r_keys[i], s_keys[j]) for i, j in evaluation.matches}

    def insert_r(self, row: Mapping[str, Any]) -> Delta:
        """Insert one R tuple; returns the new matches it created."""
        return self._insert(self._r, self._s, row, r_side=True)

    def insert_s(self, row: Mapping[str, Any]) -> Delta:
        """Insert one S tuple; returns the new matches it created."""
        return self._insert(self._s, self._r, row, r_side=False)

    def delete_r(self, key: Mapping[str, Any] | KeyValues) -> Delta:
        """Delete an R tuple by key; returns the matches removed."""
        return self._delete(self._r, key, r_side=True)

    def delete_s(self, key: Mapping[str, Any] | KeyValues) -> Delta:
        """Delete an S tuple by key; returns the matches removed."""
        return self._delete(self._s, key, r_side=False)

    def add_ilfds(self, ilfds: Iterable[ILFD]) -> Delta:
        """Supply new knowledge; only NULL-bearing rows are re-derived.

        New ILFDs are appended *after* the existing ones, so FIRST_MATCH
        derivations already committed never change — additions are
        monotone: the returned delta contains no removals.
        """
        new = [f for f in ilfds if f not in self._ilfds]
        if not new:
            return Delta()
        self._ilfds = self._ilfds.extend(new)
        self._engine = DerivationEngine(
            self._ilfds, policy=self._policy, tracer=self._tracer
        )
        self._bump_version()
        targets = list(self._key.attributes)
        added: List[Pair] = []
        rederived_count = 0
        with self._tracer.span(
            "federation.add_ilfds", new_ilfds=len(new)
        ) as span:
            for side, other, r_side in (
                (self._r, self._s, True),
                (self._s, self._r, False),
            ):
                for key in list(side.extended):
                    row = side.extended[key]
                    if not row.has_nulls(targets):
                        continue  # complete rows cannot gain values
                    result = self._engine.extend_row(side.raw[key], targets)
                    rederived = result.row
                    if rederived == row:
                        continue
                    rederived_count += 1
                    side.extended[key] = rederived
                    self._store.put_row(side.name, key, side.raw[key], rederived)
                    new_values = {
                        attr: value
                        for attr, value in result.derived.items()
                        if is_null(row.get(attr, NULL))
                    }
                    if new_values:
                        self._store.record_derivation(
                            side.name,
                            key,
                            rule=", ".join(
                                f.name or repr(f) for f in result.fired
                            ),
                            derived=new_values,
                        )
                    complete = self._complete_values(rederived)
                    if complete is None:
                        continue
                    side.index[complete].add(key)
                    added.extend(
                        self._record_matches(key, complete, other, r_side)
                    )
            span.set("rows_rederived", rederived_count)
            span.set("matches_added", len(added))
        if self._tracer.enabled:
            metrics = self._tracer.metrics
            metrics.inc("federation.ilfd_updates")
            metrics.inc("federation.rows_rederived", rederived_count)
            metrics.observe("federation.delta_added", len(added))
        return Delta(added=tuple(added))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _complete_values(self, row: Row) -> Optional[Tuple[Any, ...]]:
        values = row.values_for(self._key.attributes)
        if any(is_null(v) for v in values):
            return None
        return values

    def _admit(
        self, side: _Side, raw: Mapping[str, Any]
    ) -> Tuple[KeyValues, Optional[Tuple[Any, ...]]]:
        """Normalise, derive, store, and index one tuple (no probing)."""
        values: Dict[str, Any] = {}
        for name in side.schema.names:
            value = raw[name] if name in raw else NULL
            values[name] = NULL if value is None else value
        normalised = Row(values)
        key = key_values(normalised, side.key_attrs)
        if key in side.raw:
            raise CoreError(f"duplicate key {key!r} on insert")
        result = self._engine.extend_row(normalised, list(self._key.attributes))
        extended = result.row
        side.raw[key] = normalised
        side.extended[key] = extended
        self._bump_version()
        self._store.put_row(side.name, key, normalised, extended)
        if result.fired:
            self._store.record_derivation(
                side.name,
                key,
                rule=", ".join(f.name or repr(f) for f in result.fired),
                derived=result.derived,
            )
        complete = self._complete_values(extended)
        if complete is not None:
            side.index[complete].add(key)
        return key, complete

    def _insert(
        self, side: _Side, other: _Side, raw: Mapping[str, Any], *, r_side: bool
    ) -> Delta:
        key, complete = self._admit(side, raw)
        if complete is None:
            added: List[Pair] = []
        else:
            added = self._record_matches(key, complete, other, r_side)
        if self._tracer.enabled:
            metrics = self._tracer.metrics
            metrics.inc("federation.inserts")
            metrics.observe("federation.delta_added", len(added))
        return Delta(added=tuple(added))

    def _record_matches(
        self,
        key: KeyValues,
        complete: Tuple[Any, ...],
        other: _Side,
        r_side: bool,
    ) -> List[Pair]:
        added: List[Pair] = []
        for partner in sorted(other.index.get(complete, ())):
            pair = (key, partner) if r_side else (partner, key)
            if pair not in self._matches:
                self._matches.add(pair)
                added.append(pair)
                self._store.record_match(
                    pair[0],
                    pair[1],
                    self._r.extended[pair[0]],
                    self._s.extended[pair[1]],
                    rule=self._identity_rule_name,
                )
        return added

    def _delete(
        self, side: _Side, key: Mapping[str, Any] | KeyValues, *, r_side: bool
    ) -> Delta:
        if isinstance(key, Mapping):
            key = tuple(sorted(key.items()))
        if key not in side.raw:
            raise CoreError(f"no tuple with key {key!r}")
        extended = side.extended.pop(key)
        side.raw.pop(key)
        self._bump_version()
        self._store.delete_row(side.name, key)
        complete = self._complete_values(extended)
        if complete is not None:
            side.index[complete].discard(key)
            if not side.index[complete]:
                del side.index[complete]
        removed = [
            pair
            for pair in self._matches
            if (pair[0] if r_side else pair[1]) == key
        ]
        for pair in removed:
            self._matches.discard(pair)
            self._store.remove_match(
                pair[0], pair[1], reason=f"{side.name.upper()} tuple deleted"
            )
        if self._tracer.enabled:
            metrics = self._tracer.metrics
            metrics.inc("federation.deletes")
            metrics.observe("federation.delta_removed", len(removed))
        return Delta(removed=tuple(sorted(removed)))

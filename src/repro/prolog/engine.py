"""SLD resolution with cut and negation as failure.

The engine implements the operational semantics the paper relies on
(Section 6): top-down, depth-first search over clauses in program order,
with the cut committing to the current clause — which is what makes the
prototype's ILFD rules "prevent other ILFDs from being used once the
former ILFD has successfully derived the attribute value".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.prolog.errors import PrologError
from repro.prolog.parser import parse_program, parse_query
from repro.prolog.terms import (
    Atom,
    Struct,
    Term,
    Var,
    make_list,
    term_key,
    variables_in,
)

Subst = Dict[Var, Term]

_CUT = Atom("!")
_TRUE = Atom("true")
_FAIL = Atom("fail")


def walk(term: Term, subst: Subst) -> Term:
    """Resolve the top-level binding of *term*."""
    while isinstance(term, Var) and term in subst:
        term = subst[term]
    return term


def resolve(term: Term, subst: Subst) -> Term:
    """Fully substitute bindings throughout *term*."""
    term = walk(term, subst)
    if isinstance(term, Struct):
        return Struct(term.functor, tuple(resolve(arg, subst) for arg in term.args))
    return term


def unify(left: Term, right: Term, subst: Subst) -> Optional[Subst]:
    """Unify two terms, returning an extended substitution or None."""
    stack = [(left, right)]
    out = subst
    copied = False
    while stack:
        a, b = stack.pop()
        a = walk(a, out)
        b = walk(b, out)
        if a == b:
            continue
        if isinstance(a, Var):
            if not copied:
                out = dict(out)
                copied = True
            out[a] = b
        elif isinstance(b, Var):
            if not copied:
                out = dict(out)
                copied = True
            out[b] = a
        elif isinstance(a, Struct) and isinstance(b, Struct):
            if a.functor != b.functor or len(a.args) != len(b.args):
                return None
            stack.extend(zip(a.args, b.args))
        else:
            return None
    return out


@dataclass(frozen=True)
class Clause:
    """A program clause ``head :- body``. Facts have an empty body."""

    head: Term
    body: Tuple[Term, ...] = ()

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- " + ", ".join(map(str, self.body)) + "."


class Database:
    """Clauses indexed by predicate indicator, in assertion order."""

    def __init__(self) -> None:
        self._clauses: Dict[Tuple[str, int], List[Clause]] = {}

    @staticmethod
    def _indicator(head: Term) -> Tuple[str, int]:
        if isinstance(head, Atom):
            return (head.name, 0)
        if isinstance(head, Struct):
            return head.indicator
        raise PrologError(f"invalid clause head {head!r}")

    def assertz(self, clause: Clause) -> None:
        """Append a clause (end of its predicate's clause list)."""
        self._clauses.setdefault(self._indicator(clause.head), []).append(clause)

    def retract_all(self, functor: str, arity: int) -> None:
        """Remove every clause of the predicate (``abolish``)."""
        self._clauses.pop((functor, arity), None)

    def consult(self, text: str) -> None:
        """Parse program text and assert its clauses in order."""
        for head, body in parse_program(text):
            self.assertz(Clause(head, tuple(body)))

    def clauses(self, functor: str, arity: int) -> Sequence[Clause]:
        """Clauses of the predicate, in program order."""
        return self._clauses.get((functor, arity), ())

    def defined(self, functor: str, arity: int) -> bool:
        """True iff the predicate has at least one clause."""
        return (functor, arity) in self._clauses

    def predicates(self) -> List[Tuple[str, int]]:
        """All defined predicate indicators."""
        return list(self._clauses)


class _Frame:
    """Cut barrier for one predicate invocation."""

    __slots__ = ("cut",)

    def __init__(self) -> None:
        self.cut = False


class PrologEngine:
    """Query evaluator over a :class:`Database`.

    Parameters
    ----------
    database:
        The program.
    max_steps:
        Reduction budget; exceeded means a runaway query (likely left
        recursion) and raises :class:`~repro.prolog.errors.PrologError`.
    """

    def __init__(self, database: Database, *, max_steps: int = 5_000_000) -> None:
        self.database = database
        self.max_steps = max_steps
        self._rename_counter = 0
        self._steps = 0
        self.output: List[str] = []

    def take_output(self) -> str:
        """Drain the text emitted by ``print``/``nl`` since the last call."""
        text = "".join(self.output)
        self.output.clear()
        return text

    # ------------------------------------------------------------------
    # Public querying API
    # ------------------------------------------------------------------
    def solve(self, goals: Sequence[Term], subst: Optional[Subst] = None) -> Iterator[Subst]:
        """All solutions of the conjunction, as substitutions."""
        self._steps = 0
        frame = _Frame()
        try:
            yield from self._solve_goals(tuple(goals), dict(subst or {}), frame)
        except RecursionError as exc:
            raise PrologError(
                "recursion limit exceeded; query appears to diverge "
                "(left-recursive program?)"
            ) from exc

    def query(self, text: str) -> List[Dict[str, Term]]:
        """Solve a textual query; returns bindings for its named variables."""
        goals = parse_query(text)
        names: List[Var] = []
        for goal in goals:
            for var in variables_in(goal):
                if not var.name.startswith("_") and var not in names:
                    names.append(var)
        out: List[Dict[str, Term]] = []
        for subst in self.solve(goals):
            out.append({var.name: resolve(var, subst) for var in names})
        return out

    def succeeds(self, text: str) -> bool:
        """True iff the textual query has at least one solution."""
        for _ in self.solve(parse_query(text)):
            return True
        return False

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise PrologError(
                f"step budget exceeded ({self.max_steps}); "
                "query appears to diverge"
            )

    def _rename(self, clause: Clause) -> Clause:
        # Every variable gets a globally fresh index: two source variables
        # that share a name but differ in index (e.g. the parser's
        # anonymous _G variables) must stay distinct after renaming.
        mapping: Dict[Var, Var] = {}

        def ren(term: Term) -> Term:
            if isinstance(term, Var):
                fresh = mapping.get(term)
                if fresh is None:
                    self._rename_counter += 1
                    fresh = Var(term.name, self._rename_counter)
                    mapping[term] = fresh
                return fresh
            if isinstance(term, Struct):
                return Struct(term.functor, tuple(ren(arg) for arg in term.args))
            return term

        return Clause(ren(clause.head), tuple(ren(goal) for goal in clause.body))

    def _solve_goals(
        self, goals: Tuple[Term, ...], subst: Subst, frame: _Frame
    ) -> Iterator[Subst]:
        if not goals:
            yield subst
            return
        first, rest = goals[0], goals[1:]
        first = walk(first, subst)
        self._tick()
        if isinstance(first, Struct) and first.functor == "," and len(first.args) == 2:
            yield from self._solve_goals(
                (first.args[0], first.args[1]) + rest, subst, frame
            )
            return
        if first == _CUT:
            yield from self._solve_goals(rest, subst, frame)
            frame.cut = True
            return
        for solution in self._solve_call(first, subst):
            yield from self._solve_goals(rest, solution, frame)
            if frame.cut:
                return

    def _solve_call(self, goal: Term, subst: Subst) -> Iterator[Subst]:
        if isinstance(goal, Var):
            raise PrologError("unbound goal (call/1 of a variable)")
        if goal == _TRUE:
            yield subst
            return
        if goal == _FAIL:
            return
        if goal == Atom("nl"):
            self.output.append("\n")
            yield subst
            return
        if isinstance(goal, Struct):
            handler = self._BUILTINS.get(goal.indicator)
            if handler is not None:
                yield from handler(self, goal, subst)
                return
        functor, arity = (
            (goal.name, 0) if isinstance(goal, Atom) else goal.indicator
        )
        clauses = self.database.clauses(functor, arity)
        frame = _Frame()
        for clause in clauses:
            renamed = self._rename(clause)
            unified = unify(goal, renamed.head, subst)
            if unified is None:
                continue
            yield from self._solve_goals(renamed.body, unified, frame)
            if frame.cut:
                return

    # ------------------------------------------------------------------
    # Builtins
    # ------------------------------------------------------------------
    def _builtin_unify(self, goal: Struct, subst: Subst) -> Iterator[Subst]:
        unified = unify(goal.args[0], goal.args[1], subst)
        if unified is not None:
            yield unified

    def _builtin_not(self, goal: Struct, subst: Subst) -> Iterator[Subst]:
        inner = goal.args[0]
        frame = _Frame()
        for _ in self._solve_goals((inner,), subst, frame):
            return
        yield subst

    def _collect(self, template: Term, inner: Term, subst: Subst) -> List[Term]:
        frame = _Frame()
        return [
            resolve(template, solution)
            for solution in self._solve_goals((inner,), subst, frame)
        ]

    def _builtin_bagof(self, goal: Struct, subst: Subst) -> Iterator[Subst]:
        template, inner, target = goal.args
        items = self._collect(template, inner, subst)
        if not items:
            return
        unified = unify(target, make_list(items), subst)
        if unified is not None:
            yield unified

    def _builtin_setof(self, goal: Struct, subst: Subst) -> Iterator[Subst]:
        template, inner, target = goal.args
        items = self._collect(template, inner, subst)
        if not items:
            return
        unique: Dict[str, Term] = {}
        for item in items:
            unique.setdefault(term_key(item), item)
        ordered = [unique[key] for key in sorted(unique)]
        unified = unify(target, make_list(ordered), subst)
        if unified is not None:
            yield unified

    def _builtin_print(self, goal: Struct, subst: Subst) -> Iterator[Subst]:
        term = resolve(goal.args[0], subst)
        if isinstance(term, Atom):
            self.output.append(term.name)
        else:
            self.output.append(str(term))
        yield subst

    def _builtin_nl(self, goal: Struct, subst: Subst) -> Iterator[Subst]:
        self.output.append("\n")
        yield subst

    def _builtin_name(self, goal: Struct, subst: Subst) -> Iterator[Subst]:
        """SB-Prolog's name/2, reduced to the Appendix's usage.

        The prototype only ever calls ``name(X, 'some message')`` to bind
        X to a message atom before printing it, so name/2 here unifies
        its first argument with the second when the second is an atom.
        """
        target = resolve(goal.args[1], subst)
        if not isinstance(target, Atom):
            return
        unified = unify(goal.args[0], target, subst)
        if unified is not None:
            yield unified

    def _builtin_findall(self, goal: Struct, subst: Subst) -> Iterator[Subst]:
        """Standard findall/3: like bagof but yields [] when no solution."""
        template, inner, target = goal.args
        items = self._collect(template, inner, subst)
        unified = unify(target, make_list(items), subst)
        if unified is not None:
            yield unified

    def _builtin_assertz(self, goal: Struct, subst: Subst) -> Iterator[Subst]:
        """assertz/1 for ground facts (the prototype's dynamic assertions)."""
        fact = resolve(goal.args[0], subst)
        if isinstance(fact, Var):
            raise PrologError("assertz/1 of an unbound variable")
        self.database.assertz(Clause(fact))
        yield subst

    _BUILTINS = {
        ("=", 2): _builtin_unify,
        ("not", 1): _builtin_not,
        ("bagof", 3): _builtin_bagof,
        ("setof", 3): _builtin_setof,
        ("findall", 3): _builtin_findall,
        ("assertz", 1): _builtin_assertz,
        ("print", 1): _builtin_print,
        ("name", 2): _builtin_name,
    }

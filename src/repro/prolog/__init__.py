"""A mini-Prolog engine and the paper's prototype, ported faithfully.

Section 6 describes a Prolog implementation (SB-Prolog 3.0) of the
entity-identification technique; the Appendix lists the full program.
SB-Prolog is 1988 software we cannot run, so — per the substitution rule —
this subpackage implements a small Prolog engine from scratch covering
exactly the constructs the Appendix uses:

- facts and rules with conjunctive bodies,
- the cut (``!``) with standard commit semantics (each ILFD rule ends in
  a cut so the first applicable ILFD wins),
- negation as failure (``not``),
- unification-based ``=``, ``setof/3``, ``bagof/3``,
- dynamic assertion of clauses (the prototype's ``setup_extkey``
  regenerates the ``matchtable`` rule at run time).

:mod:`repro.prolog.prototype` then embeds the Appendix program (modulo
OCR repair) and exposes the prototype's commands — ``setup_extkey``,
``verify``, ``print_matchtable``, ``print_integ_table`` — as Python
methods, plus a generic loader that builds the same fact/rule encoding
for *any* pair of relations and ILFD set.
"""

from repro.prolog.terms import (
    Atom,
    Struct,
    Term,
    Var,
    atom,
    from_prolog_list,
    make_list,
)
from repro.prolog.errors import PrologError, PrologParseError
from repro.prolog.parser import parse_program, parse_query, parse_term
from repro.prolog.engine import Clause, Database, PrologEngine
from repro.prolog.prototype import (
    PrototypeSystem,
    restaurant_prototype,
)
from repro.prolog.repl import PrototypeRepl

__all__ = [
    "Atom",
    "Clause",
    "Database",
    "PrologEngine",
    "PrologError",
    "PrologParseError",
    "PrototypeRepl",
    "PrototypeSystem",
    "Struct",
    "Term",
    "Var",
    "atom",
    "from_prolog_list",
    "make_list",
    "parse_program",
    "parse_query",
    "parse_term",
    "restaurant_prototype",
]

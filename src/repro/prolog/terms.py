"""Prolog terms: atoms, variables, and compound structures.

Lists use the conventional encoding ``'.'(Head, Tail)`` terminated by the
atom ``[]``.  Integers are represented as atoms of their decimal text —
the Appendix program never does arithmetic (its ``length/2`` builds
``0+1+1…`` structures and compares them by unification), so numeric atoms
suffice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

NIL_NAME = "[]"
CONS_NAME = "."


@dataclass(frozen=True)
class Atom:
    """A constant symbol."""

    name: str

    def __str__(self) -> str:
        if self.name == NIL_NAME:
            return self.name
        plain = self.name and all(
            ch.isalnum() or ch == "_" for ch in self.name
        ) and (self.name[0].islower() or self.name.isdigit())
        if plain:
            return self.name
        return f"'{self.name}'"


@dataclass(frozen=True)
class Var:
    """A logic variable.  ``index`` disambiguates renamed instances."""

    name: str
    index: int = 0

    def __str__(self) -> str:
        if self.index:
            return f"{self.name}_{self.index}"
        return self.name


@dataclass(frozen=True)
class Struct:
    """A compound term ``functor(arg1, …, argn)``."""

    functor: str
    args: Tuple["Term", ...]

    def __str__(self) -> str:
        if self.functor == CONS_NAME and len(self.args) == 2:
            return _render_list(self)
        if self.functor in ("+", "-", "=") and len(self.args) == 2:
            return f"{self.args[0]}{self.functor}{self.args[1]}"
        inner = ",".join(str(arg) for arg in self.args)
        return f"{self.functor}({inner})"

    @property
    def indicator(self) -> Tuple[str, int]:
        """The predicate indicator (functor, arity)."""
        return (self.functor, len(self.args))


Term = Union[Atom, Var, Struct]

NIL = Atom(NIL_NAME)
CUT = Atom("!")
TRUE = Atom("true")


def atom(name: str) -> Atom:
    """Build an atom."""
    return Atom(name)


def struct(functor: str, *args: Term) -> Struct:
    """Build a compound term."""
    return Struct(functor, tuple(args))


def make_list(items: Iterable[Term], tail: Term = NIL) -> Term:
    """Build a Prolog list term from Python items."""
    result: Term = tail
    for item in reversed(list(items)):
        result = Struct(CONS_NAME, (item, result))
    return result


def from_prolog_list(term: Term) -> Optional[List[Term]]:
    """Decode a proper Prolog list into a Python list, else None."""
    items: List[Term] = []
    while True:
        if term == NIL:
            return items
        if isinstance(term, Struct) and term.functor == CONS_NAME and len(term.args) == 2:
            items.append(term.args[0])
            term = term.args[1]
            continue
        return None


def _render_list(term: Struct) -> str:
    items: List[str] = []
    current: Term = term
    while isinstance(current, Struct) and current.functor == CONS_NAME and len(current.args) == 2:
        items.append(str(current.args[0]))
        current = current.args[1]
    if current == NIL:
        return "[" + ",".join(items) + "]"
    return "[" + ",".join(items) + "|" + str(current) + "]"


def term_key(term: Term) -> str:
    """A total-order key for terms (used by ``setof`` sorting)."""
    return str(term)


def variables_in(term: Term) -> List[Var]:
    """All variables of a term, in first-occurrence order."""
    out: List[Var] = []
    seen: set = set()

    def walk(t: Term) -> None:
        if isinstance(t, Var):
            if t not in seen:
                seen.add(t)
                out.append(t)
        elif isinstance(t, Struct):
            for arg in t.args:
                walk(arg)

    walk(term)
    return out

"""A small Prolog reader covering the Appendix program's syntax.

Supported: facts and rules (``:-``), conjunctive bodies (``,``), atoms
(lowercase identifiers and ``'quoted'`` atoms), variables (Uppercase or
``_``), integers (read as numeric atoms), compound terms, lists
(``[a,b|T]``), the cut ``!``, prefix ``not``, parenthesised goals, and the
infix operators ``=`` and ``+`` (both right-associative, ``+`` binding
tighter, matching the ``N+1`` usage in the Appendix's ``length/2``).
Comments: ``% line`` and ``/* block */``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.prolog.errors import PrologParseError
from repro.prolog.terms import Atom, Struct, Term, Var, make_list

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<line_comment>%[^\n]*)
  | (?P<neck>:-)
  | (?P<quoted>'(?:[^'\\]|\\.)*')
  | (?P<name>[a-z][A-Za-z0-9_]*)
  | (?P<var>[_A-Z][A-Za-z0-9_]*)
  | (?P<number>\d+)
  | (?P<punct>[()\[\],.|!=+])
    """,
    re.VERBOSE | re.DOTALL,
)

_ANON_COUNTER = [0]


class _Tokens:
    """Token cursor over program text."""

    def __init__(self, text: str) -> None:
        self._tokens: List[Tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise PrologParseError(
                    f"unexpected character {text[pos]!r} at offset {pos}"
                )
            pos = match.end()
            kind = match.lastgroup or ""
            if kind in ("ws", "block_comment", "line_comment"):
                continue
            self._tokens.append((kind, match.group()))
        self._index = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise PrologParseError("unexpected end of input")
        self._index += 1
        return token

    def expect(self, value: str) -> None:
        kind, text = self.next()
        if text != value:
            raise PrologParseError(f"expected {value!r}, got {text!r}")

    def at(self, value: str) -> bool:
        token = self.peek()
        return token is not None and token[1] == value

    def exhausted(self) -> bool:
        return self.peek() is None


def _fresh_anon() -> Var:
    _ANON_COUNTER[0] += 1
    return Var("_G", _ANON_COUNTER[0])


def _parse_primary(tokens: _Tokens) -> Term:
    kind, text = tokens.next()
    if kind == "quoted":
        body = text[1:-1].replace("\\'", "'").replace("\\\\", "\\")
        return Atom(body)
    if kind == "number":
        return Atom(text)
    if kind == "var":
        if text == "_":
            return _fresh_anon()
        return Var(text)
    if kind == "name":
        if text == "not":
            operand = _parse_term(tokens)
            return Struct("not", (operand,))
        if tokens.at("("):
            tokens.expect("(")
            args = [_parse_term(tokens)]
            while tokens.at(","):
                tokens.expect(",")
                args.append(_parse_term(tokens))
            tokens.expect(")")
            return Struct(text, tuple(args))
        return Atom(text)
    if text == "!":
        return Atom("!")
    if text == "(":
        inner = _parse_conjunction(tokens)
        tokens.expect(")")
        return inner
    if text == "[":
        if tokens.at("]"):
            tokens.expect("]")
            return Atom("[]")
        items = [_parse_term(tokens)]
        while tokens.at(","):
            tokens.expect(",")
            items.append(_parse_term(tokens))
        tail: Term = Atom("[]")
        if tokens.at("|"):
            tokens.expect("|")
            tail = _parse_term(tokens)
        tokens.expect("]")
        return make_list(items, tail)
    raise PrologParseError(f"unexpected token {text!r}")


def _parse_sum(tokens: _Tokens) -> Term:
    left = _parse_primary(tokens)
    while tokens.at("+"):
        tokens.expect("+")
        right = _parse_primary(tokens)
        left = Struct("+", (left, right))
    return left


def _parse_term(tokens: _Tokens) -> Term:
    left = _parse_sum(tokens)
    if tokens.at("="):
        tokens.expect("=")
        right = _parse_sum(tokens)
        return Struct("=", (left, right))
    return left


def _parse_conjunction(tokens: _Tokens) -> Term:
    goals = [_parse_term(tokens)]
    while tokens.at(","):
        tokens.expect(",")
        goals.append(_parse_term(tokens))
    if len(goals) == 1:
        return goals[0]
    result = goals[-1]
    for goal in reversed(goals[:-1]):
        result = Struct(",", (goal, result))
    return result


def parse_term(text: str) -> Term:
    """Parse a single term (no trailing period)."""
    tokens = _Tokens(text)
    term = _parse_term(tokens)
    if not tokens.exhausted():
        raise PrologParseError(f"trailing input after term in {text!r}")
    return term


def parse_query(text: str) -> List[Term]:
    """Parse a comma-separated goal list (optionally period-terminated)."""
    text = text.strip()
    if text.endswith("."):
        text = text[:-1]
    tokens = _Tokens(text)
    goals = [_parse_term(tokens)]
    while tokens.at(","):
        tokens.expect(",")
        goals.append(_parse_term(tokens))
    if not tokens.exhausted():
        raise PrologParseError(f"trailing input after query in {text!r}")
    return goals


def parse_program(text: str) -> List[Tuple[Term, List[Term]]]:
    """Parse a program into (head, body-goals) clauses."""
    tokens = _Tokens(text)
    clauses: List[Tuple[Term, List[Term]]] = []
    while not tokens.exhausted():
        head = _parse_term(tokens)
        body: List[Term] = []
        if tokens.at(":-"):
            tokens.expect(":-")
            goal = _parse_conjunction(tokens)
            body = _flatten_conjunction(goal)
        tokens.expect(".")
        clauses.append((head, body))
    return clauses


def _flatten_conjunction(goal: Term) -> List[Term]:
    if isinstance(goal, Struct) and goal.functor == "," and len(goal.args) == 2:
        return _flatten_conjunction(goal.args[0]) + _flatten_conjunction(goal.args[1])
    return [goal]

"""A Section-6-style interactive session driver.

The paper shows its prototype being driven from the SB-Prolog top level
(``| ?- setup_extkey.`` …).  :class:`PrototypeRepl` provides that
interaction surface over the ported prototype: commands are read from a
string or stream, responses accumulate as the transcript the paper
prints.  Used by the prototype example and testable without a TTY.

Commands::

    setup_extkey a, b, c     choose the extended key (then auto-verify)
    candidates               list the candidate attributes
    print_matchtable         the matching table
    print_integ_table        the integrated table
    verify                   re-run the soundness check
    query <goal>.            any Prolog goal against the knowledge base
    help                     this text
    halt                     end the session
"""

from __future__ import annotations

from typing import Iterable, List

from repro.prolog.errors import PrologError
from repro.prolog.prototype import PrototypeSystem

_HELP = """commands:
  setup_extkey <attr, attr, ...>
  candidates
  print_matchtable
  print_integ_table
  verify
  query <goal>.
  help
  halt"""


class PrototypeRepl:
    """Drive a :class:`~repro.prolog.prototype.PrototypeSystem` by text."""

    def __init__(self, system: PrototypeSystem) -> None:
        self.system = system
        self.halted = False

    def execute(self, line: str) -> str:
        """Execute one command line; returns the printed response."""
        text = line.strip().rstrip(".")
        if not text:
            return ""
        command, _, argument = text.partition(" ")
        command = command.lower()
        try:
            if command == "halt":
                self.halted = True
                return "yes"
            if command == "help":
                return _HELP
            if command == "candidates":
                pairs = ", ".join(
                    f"[{i}] {name}"
                    for i, name in enumerate(self.system.candidate_attributes())
                )
                return pairs
            if command == "setup_extkey":
                keys = [part.strip() for part in argument.split(",") if part.strip()]
                if not keys:
                    return "Please input the keys: (none given)"
                return self.system.setup_extkey(keys)
            if command == "verify":
                return self.system.verify()
            if command == "print_matchtable":
                return self.system.print_matchtable()
            if command == "print_integ_table":
                return self.system.print_integ_table()
            if command == "query":
                goal = argument.strip()
                if not goal:
                    return "query what?"
                results = self.system.engine.query(goal)
                if not results:
                    return "no"
                lines: List[str] = []
                for binding in results:
                    if binding:
                        lines.append(
                            ", ".join(f"{k} = {v}" for k, v in binding.items())
                        )
                return "\n".join(lines) if lines else "yes"
            return f"unknown command {command!r}; try 'help'"
        except PrologError as exc:
            return f"error: {exc}"

    def run(self, commands: Iterable[str]) -> str:
        """Execute commands until ``halt``; returns the full transcript."""
        transcript: List[str] = []
        for line in commands:
            if self.halted:
                break
            transcript.append(f"| ?- {line.strip()}")
            response = self.execute(line)
            if response:
                transcript.append(response)
        return "\n".join(transcript)

"""The Appendix program, as program text.

This is a cleaned transcription of "APPENDIX A: A PROLOG IMPLEMENTATION
OF THE PROPOSED ENTITY-IDENTIFICATION TECHNIQUE" — the complete listing
the paper prints (facts for Tables 5's R and S, the ILFD rules I1–I8
with cuts, NULL defaults asserted after the rules, the extended-relation
views rr/ss, the integrated relation rs, ``non_null_eq``, the structural
``length/2``, ``if_then_else/3``, the ``correct`` soundness check, and
the acknowledge/warning messages).  OCR damage in the source scan
(``non A-null`` for ``not A=null``, broken variable names, missing
commas) is repaired; the printing utilities (``print_al``/``print_ar``
column formatters) are intentionally *not* transcribed — formatting is
done host-side exactly as the paper's own ``getkey`` helper lived outside
Prolog — and the dynamically generated ``matchtable`` rule is installed
by :func:`consult_appendix_program` for the Section-6 extended key.

:func:`appendix_engine` returns a ready engine; the test suite checks it
agrees with both the generated prototype and the native pipeline.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.prolog.engine import Database, PrologEngine

APPENDIX_PROGRAM = r"""
/*
   Entity Identification Example -- (Restaurant)
*/

/* Table R(name, cuisine, street) */

r_name(r1, twincities).
r_cui(r1, chinese).
r_str(r1, co_B2).

r_name(r2, twincities).
r_cui(r2, indian).
r_str(r2, co_B3).

r_name(r3, itsgreek).
r_cui(r3, greek).
r_str(r3, front_ave).

r_name(r4, anjuman).
r_cui(r4, indian).
r_str(r4, le_salle_ave).

r_name(r5, villagewok).
r_cui(r5, chinese).
r_str(r5, wash_ave).

/* Table S(name, speciality, county) */

s_name(s1, twincities).
s_spec(s1, hunan).
s_cty(s1, roseville).

s_name(s2, twincities).
s_spec(s2, sichuan).
s_cty(s2, hennepin).

s_name(s3, itsgreek).
s_spec(s3, gyros).
s_cty(s3, ramsey).

s_name(s4, anjuman).
s_spec(s4, mughalai).
s_cty(s4, minneapolis).

/* ILFDs */

s_cui(Sid, chinese) :- s_spec(Sid, hunan), !.
s_cui(Sid, chinese) :- s_spec(Sid, sichuan), !.
s_cui(Sid, greek) :- s_spec(Sid, gyros), !.
s_cui(Sid, indian) :- s_spec(Sid, mughalai), !.

r_spec(Rid, hunan) :-
    r_name(Rid, twincities), r_str(Rid, co_B2), !.
r_spec(Rid, mughalai) :-
    r_name(Rid, anjuman), r_str(Rid, le_salle_ave), !.
r_cty(Rid, ramsey) :- r_str(Rid, front_ave), !.
r_spec(Rid, gyros) :-
    r_name(Rid, itsgreek), r_cty(Rid, ramsey), !.

r_spec(_Rid, null).
s_cui(_Sid, null).

/* Extended Relations */

rr(Name, Cui, Spec, Str) :- r_name(Rid, Name), r_cui(Rid, Cui),
                            r_spec(Rid, Spec),
                            r_str(Rid, Str).
ss(Name, Cui, Spec, Cty) :- s_name(Sid, Name),
                            s_spec(Sid, Spec),
                            s_cty(Sid, Cty),
                            s_cui(Sid, Cui).

/* Integrated Relation */

rs(RName, RCui, RSpec, SName, SCui, SSpec, RStr, SCty) :-
    matchtable(RName, RCui, SName, SSpec),
    rr(RName, RCui, RSpec, RStr),
    ss(SName, SCui, SSpec, SCty).
rs(RName, RCui, RSpec, null, null, null, RStr, null) :-
    rr(RName, RCui, RSpec, RStr),
    not matchtable(RName, RCui, _, _).
rs(null, null, null, SName, SCui, SSpec, null, SCty) :-
    ss(SName, SCui, SSpec, SCty),
    not matchtable(_, _, SName, SSpec).

/* Verification of Extended Key */

length([], 0).
length([_X|Xs], N+1) :- length(Xs, N).

if_then_else(P, Q, _R) :- P, !, Q.
if_then_else(_P, _Q, R) :- R.

non_null_eq(A, B) :- not A=null, not B=null, A=B.

matched_R_keys(A, B) :- matchtable(A, B, _C, _D).
matched_S_keys(C, D) :- matchtable(_A, _B, C, D).

correct :- bagof([A,B], matched_R_keys(A,B), M1),
           setof([C,D], matched_R_keys(C,D), M2),
           bagof([E,F], matched_S_keys(E,F), M3),
           setof([G,H], matched_S_keys(G,H), M4),
           length(M1, N1), length(M2, N2),
           length(M3, N3), length(M4, N4),
           N1=N2, N3=N4.

acknowledge :- name(X, 'Message: The extended key is verified.'),
               print(X), nl.
warning :- name(X, 'Message: The extended key causes unsound matching result.'),
           print(X), nl.

verify :- if_then_else(correct, acknowledge, warning).
"""

SOUND_MATCHTABLE_RULE = """
matchtable(R_name, R_cui, S_name, S_spec) :-
    r_name(R, R_name), s_name(S, S_name),
    r_spec(R, R_spec), s_spec(S, S_spec),
    r_cui(R, R_cui), s_cui(S, S_cui),
    non_null_eq(R_name, S_name),
    non_null_eq(R_spec, S_spec),
    non_null_eq(R_cui, S_cui).
"""
"""The rule the prototype generates for the extended key {Name, Spec, Cui}."""

NAME_ONLY_MATCHTABLE_RULE = """
matchtable(R_name, R_cui, S_name, S_spec) :-
    r_name(R, R_name), s_name(S, S_name),
    r_spec(R, R_spec), s_spec(S, S_spec),
    r_cui(R, R_cui), s_cui(S, S_cui),
    non_null_eq(R_name, S_name).
"""
"""The rule for the unsound extended key {Name} (the Section-6 warning case)."""


def consult_appendix_program(
    matchtable_rule: str = SOUND_MATCHTABLE_RULE,
) -> Database:
    """Build the Appendix database with the given matchtable rule."""
    database = Database()
    database.consult(APPENDIX_PROGRAM)
    database.consult(matchtable_rule)
    return database


def appendix_engine(
    matchtable_rule: str = SOUND_MATCHTABLE_RULE,
) -> PrologEngine:
    """A ready engine over the Appendix program."""
    return PrologEngine(consult_appendix_program(matchtable_rule))


def setup_extkey(engine: PrologEngine, matchtable_rule: str) -> str:
    """Swap the matchtable rule and run ``verify`` (the Section-6 loop).

    Returns the message ``verify`` printed.
    """
    engine.database.retract_all("matchtable", 4)
    engine.database.consult(matchtable_rule)
    assert engine.succeeds("verify")
    return engine.take_output().strip()


def matchtable_rows(engine: PrologEngine) -> List[Tuple[str, str, str, str]]:
    """All matchtable solutions, sorted (the prototype's setof order)."""
    rows = {
        (str(b["A"]), str(b["B"]), str(b["C"]), str(b["D"]))
        for b in engine.query("matchtable(A, B, C, D)")
    }
    return sorted(rows)


def integrated_rows(engine: PrologEngine) -> List[Tuple[str, ...]]:
    """All rs/8 solutions, sorted — the Section-6 integrated table."""
    names = ["RName", "RCui", "RSpec", "SName", "SCui", "SSpec", "RStr", "SCty"]
    rows = {
        tuple(str(b[n]) for n in names)
        for b in engine.query(
            "rs(RName, RCui, RSpec, SName, SCui, SSpec, RStr, SCty)"
        )
    }
    return sorted(rows)

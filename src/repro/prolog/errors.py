"""Exceptions for the mini-Prolog engine."""


class PrologError(Exception):
    """Base class for engine errors (unknown builtins, bad calls, ...)."""


class PrologParseError(PrologError):
    """The program text could not be parsed."""
